//! SML source → ... → Bform → typecheck, both modes.

use til_bform::{from_lmli, typecheck_bform};
use til_lmli::{from_lambda, LmliOptions};

fn bform_ok(src: &str) {
    for (name, opts) in [
        ("til", LmliOptions::til()),
        ("baseline", LmliOptions::baseline()),
    ] {
        let mut e = til_elab::elaborate_source(src).expect("elaborate");
        let m = from_lambda(&e.program, &opts, &mut e.vars)
            .unwrap_or_else(|d| panic!("[{name}] to lmli: {d}"));
        let b = from_lmli(&m, &mut e.vars).unwrap_or_else(|d| panic!("[{name}] to bform: {d}"));
        typecheck_bform(&b).unwrap_or_else(|d| panic!("[{name}] bform typecheck: {d}"));
    }
}

#[test]
fn prelude_linearizes() {
    bform_ok("");
}

#[test]
fn paper_dot_product() {
    bform_ok(
        "val n = 8
         val A = Array2.array (n, n, 0)
         val B = Array2.array (n, n, 0)
         fun dot (i, j, bound) =
           let fun go (cnt, sum) =
                 if cnt < bound
                 then go (cnt + 1, sum + sub2 (A, i, cnt) * sub2 (B, cnt, j))
                 else sum
           in go (0, 0) end
         val r = dot (0, 0, n)",
    );
}

#[test]
fn closures_and_exceptions() {
    bform_ok(
        "exception E of int
         fun f g x = (g x) handle E n => n | Overflow => ~1
         val r = f (fn y => if y > 3 then raise E y else y) 10",
    );
}

#[test]
fn typecase_survives_linearization() {
    bform_ok(
        "fun swap (a, i, j) =
           let val t = Array.sub (a, i)
           in Array.update (a, i, Array.sub (a, j)); Array.update (a, j, t) end
         val ia = Array.array (3, 0)
         val fa = Array.array (3, 0.0)
         val _ = swap (ia, 0, 1)
         val _ = swap (fa, 1, 2)",
    );
}

#[test]
fn datatypes_and_strings() {
    bform_ok(
        "datatype tok = Id of string | Num of int | LParen | RParen
         fun show (Id s) = s
           | show (Num n) = Int.toString n
           | show LParen = \"(\"
           | show RParen = \")\"
         val s = show (Id \"x\") ^ show (Num 3) ^ show LParen",
    );
}
