//! The instruction set of the simulated RISC machine.
//!
//! This is the repo's stand-in for the paper's DEC ALPHA (see
//! DESIGN.md's substitution table): a 64-bit load/store register
//! machine with 32 general registers. Unlike the ALPHA, floats share
//! the integer register file as IEEE-754 bit patterns — a substitution
//! that only affects constant factors, not the comparisons the paper
//! makes. Code addresses are instruction indices; memory is
//! byte-addressed with 8-byte-aligned accesses.

use std::fmt;

/// A register number (0..32).
pub type Reg = u8;

/// Well-known registers (the machine's calling convention).
pub mod regs {
    use super::Reg;

    /// First argument / result register; arguments use r0..r15.
    pub const A0: Reg = 0;
    /// Number of argument registers.
    pub const NUM_ARGS: usize = 16;
    /// First callee-save register (r16..r23).
    pub const S0: Reg = 16;
    /// Number of callee-save registers.
    pub const NUM_SAVED: usize = 8;
    /// Allocation (heap) pointer.
    pub const HP: Reg = 24;
    /// Heap limit.
    pub const HL: Reg = 25;
    /// Return address.
    pub const RA: Reg = 26;
    /// Exception-handler chain pointer.
    pub const EXN: Reg = 27;
    /// Assembler scratch.
    pub const TMP: Reg = 28;
    /// Second scratch.
    pub const TMP2: Reg = 29;
    /// Stack pointer (grows down).
    pub const SP: Reg = 30;
    /// Always zero.
    pub const ZERO: Reg = 31;

    /// Registers the register allocator may use.
    pub const ALLOCATABLE: std::ops::Range<u8> = 0..24;
}

/// An operand: register or immediate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Register operand.
    R(Reg),
    /// Immediate operand (sign-extended into 64 bits).
    I(i64),
}

/// Binary integer ALU operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Alu {
    /// Wrapping add.
    Add,
    /// Add that traps to the overflow handler on signed overflow
    /// (ALPHA `addlv` + `trapb`).
    AddV,
    /// Wrapping subtract.
    Sub,
    /// Trapping subtract.
    SubV,
    /// Wrapping multiply.
    Mul,
    /// Trapping multiply.
    MulV,
    /// Euclidean division; traps to the div handler on zero divisor.
    Div,
    /// Euclidean remainder; traps on zero divisor.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Set-if-equal (0/1).
    CmpEq,
    /// Set-if-not-equal.
    CmpNe,
    /// Set-if-less (signed).
    CmpLt,
    /// Set-if-less-or-equal (signed).
    CmpLe,
}

/// Binary float operations (registers hold f64 bit patterns).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Falu {
    /// Add.
    Add,
    /// Subtract.
    Sub,
    /// Multiply.
    Mul,
    /// Divide.
    Div,
    /// Set-if-equal (integer 0/1 result).
    CmpEq,
    /// Set-if-not-equal.
    CmpNe,
    /// Set-if-less.
    CmpLt,
    /// Set-if-less-or-equal.
    CmpLe,
}

/// Runtime services reached by `RtCall` — the boundary between
/// generated code and the runtime system crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RtFn {
    /// Garbage collection; the requested byte count is in `TMP`.
    Gc,
    /// Print the string whose pointer is in r0.
    PrintStr,
    /// r0 = fresh string of int in r0.
    IntToStr,
    /// r0 = fresh string of the float bits in r0.
    FloatToStr,
    /// r0 = three-way comparison of strings r0, r1.
    StrCmp,
    /// r0 = 0/1 equality of strings r0, r1.
    StrEq,
    /// r0 = fresh concatenation of strings r0, r1.
    StrConcat,
    /// r0 = character code at index r1 of string r0 (raises Subscript).
    StrSub,
    /// r0 = fresh 1-character string of char code r0.
    StrFromChar,
    /// r0 = polymorphic structural equality of r1 and r2 at the type
    /// representation in r0.
    PolyEq,
    /// f-bits in r0 := sqrt(r0) (raises Domain on negative).
    Sqrt,
    /// sin.
    Sin,
    /// cos.
    Cos,
    /// atan.
    Atan,
    /// e^x.
    Exp,
    /// ln (raises Domain).
    Ln,
    /// floor to int (raises Overflow).
    Floor,
    /// truncate to int (raises Overflow).
    Trunc,
}

/// A code label (resolved to an instruction index by the linker).
pub type CodeAddr = u32;

/// One machine instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum Instr {
    /// `dst = a <alu> b`.
    Alu {
        /// Operation.
        op: Alu,
        /// Destination.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Op,
    },
    /// `dst = a <falu> b` on float bit patterns.
    Falu {
        /// Operation.
        op: Falu,
        /// Destination.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Int → float conversion (`dst = (f64)(i64)a` as bits).
    Itof {
        /// Destination.
        dst: Reg,
        /// Source.
        a: Reg,
    },
    /// `dst = mem[base + off]`.
    Ld {
        /// Destination.
        dst: Reg,
        /// Base register.
        base: Reg,
        /// Byte offset.
        off: i32,
    },
    /// `mem[base + off] = src`.
    St {
        /// Source.
        src: Reg,
        /// Base register.
        base: Reg,
        /// Byte offset.
        off: i32,
    },
    /// `dst = op`.
    Mov {
        /// Destination.
        dst: Reg,
        /// Source operand.
        src: Op,
    },
    /// `dst = code address of label` (for closures and return stubs).
    Lea {
        /// Destination.
        dst: Reg,
        /// Target label.
        target: CodeAddr,
    },
    /// Unconditional branch.
    Br(CodeAddr),
    /// Branch if `r == 0`.
    Beqz(Reg, CodeAddr),
    /// Branch if `r != 0`.
    Bnez(Reg, CodeAddr),
    /// Call: `RA = pc + 1; pc = target`.
    Jsr(CodeAddr),
    /// Indirect call through a register.
    JsrR(Reg),
    /// Indirect jump (returns, raises).
    Jmp(Reg),
    /// Call into the runtime system.
    RtCall(RtFn),
    /// Stop execution; r0 is the exit value.
    Halt,
}

impl Instr {
    /// Number of opcode classes — one per `Instr` variant. Dense so the
    /// profiler's histogram is a flat array indexed by
    /// [`opcode`](Instr::opcode).
    pub const NUM_OPCODES: usize = 15;

    /// A dense opcode index in `0..NUM_OPCODES`.
    pub fn opcode(&self) -> usize {
        match self {
            Instr::Alu { .. } => 0,
            Instr::Falu { .. } => 1,
            Instr::Itof { .. } => 2,
            Instr::Ld { .. } => 3,
            Instr::St { .. } => 4,
            Instr::Mov { .. } => 5,
            Instr::Lea { .. } => 6,
            Instr::Br(_) => 7,
            Instr::Beqz(..) => 8,
            Instr::Bnez(..) => 9,
            Instr::Jsr(_) => 10,
            Instr::JsrR(_) => 11,
            Instr::Jmp(_) => 12,
            Instr::RtCall(_) => 13,
            Instr::Halt => 14,
        }
    }

    /// The mnemonic for an opcode index from [`Instr::opcode`].
    pub fn opcode_name(op: usize) -> &'static str {
        [
            "alu", "falu", "itof", "ld", "st", "mov", "lea", "br", "beqz", "bnez", "jsr", "jsrr",
            "jmp", "rtcall", "halt",
        ][op]
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Alu { op, dst, a, b } => write!(f, "{op:?} r{dst}, r{a}, {b:?}"),
            Instr::Falu { op, dst, a, b } => write!(f, "f{op:?} r{dst}, r{a}, r{b}"),
            Instr::Itof { dst, a } => write!(f, "itof r{dst}, r{a}"),
            Instr::Ld { dst, base, off } => write!(f, "ld r{dst}, {off}(r{base})"),
            Instr::St { src, base, off } => write!(f, "st r{src}, {off}(r{base})"),
            Instr::Mov { dst, src } => write!(f, "mov r{dst}, {src:?}"),
            Instr::Lea { dst, target } => write!(f, "lea r{dst}, L{target}"),
            Instr::Br(t) => write!(f, "br L{t}"),
            Instr::Beqz(r, t) => write!(f, "beqz r{r}, L{t}"),
            Instr::Bnez(r, t) => write!(f, "bnez r{r}, L{t}"),
            Instr::Jsr(t) => write!(f, "jsr L{t}"),
            Instr::JsrR(r) => write!(f, "jsr (r{r})"),
            Instr::Jmp(r) => write!(f, "jmp (r{r})"),
            Instr::RtCall(rf) => write!(f, "rtcall {rf:?}"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

/// Heap object headers (shared with the runtime crate).
pub mod header {
    /// Object kinds (low 3 bits of the header word).
    pub const KIND_RECORD: u64 = 0;
    /// Untraced word array (ints).
    pub const KIND_INTARRAY: u64 = 1;
    /// Untraced float array.
    pub const KIND_FLOATARRAY: u64 = 2;
    /// Traced pointer array.
    pub const KIND_PTRARRAY: u64 = 3;
    /// Byte string (length in bytes).
    pub const KIND_STRING: u64 = 4;
    /// Forwarding pointer (during collection).
    pub const KIND_FWD: u64 = 5;

    /// Builds a header word: kind, length (elements/bytes), and for
    /// records a 32-bit pointer mask (bit i set = field i traced).
    pub fn make(kind: u64, len: u64, mask: u32) -> u64 {
        debug_assert!(len < (1 << 29));
        kind | (len << 3) | ((mask as u64) << 32)
    }

    /// Extracts the kind.
    pub fn kind(h: u64) -> u64 {
        h & 7
    }

    /// Extracts the length.
    pub fn len(h: u64) -> u64 {
        (h >> 3) & ((1 << 29) - 1)
    }

    /// Extracts the record pointer mask.
    pub fn mask(h: u64) -> u32 {
        (h >> 32) as u32
    }

    /// Exception-packet marker: bit 63 of a record header (pointer-mask
    /// bit 31, which field masks never reach — packets have at most two
    /// fields). Lets the census and the allocation profiler tell packet
    /// construction apart from ordinary records without a tag word.
    pub const EXN_BIT: u64 = 1 << 63;

    /// Is this record header an exception packet's?
    pub fn is_exn(h: u64) -> bool {
        h & EXN_BIT != 0 && kind(h) == KIND_RECORD
    }

    /// Builds a forwarding header to `addr`.
    pub fn fwd(addr: u64) -> u64 {
        KIND_FWD | (addr << 3)
    }

    /// Extracts a forwarding address.
    pub fn fwd_addr(h: u64) -> u64 {
        h >> 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let h = header::make(header::KIND_RECORD, 5, 0b10110);
        assert_eq!(header::kind(h), header::KIND_RECORD);
        assert_eq!(header::len(h), 5);
        assert_eq!(header::mask(h), 0b10110);
    }

    #[test]
    fn forwarding_round_trips() {
        let h = header::fwd(0x12345678);
        assert_eq!(header::kind(h), header::KIND_FWD);
        assert_eq!(header::fwd_addr(h), 0x12345678);
    }

    #[test]
    fn display_is_readable() {
        let i = Instr::Alu {
            op: Alu::AddV,
            dst: 3,
            a: 4,
            b: Op::I(1),
        };
        assert_eq!(format!("{i}"), "AddV r3, r4, I(1)");
    }
}
