//! The execution profiler: per-opcode retired-instruction histograms
//! and per-function attribution of instructions, allocation, and traps.
//!
//! The profiler is strictly an *observer*: it reads the instruction
//! stream and the heap pointer, and never touches [`Stats`] or any
//! machine state, so a profiled run retires exactly the same
//! instructions, allocates exactly the same bytes, and reports exactly
//! the same counters as an unprofiled one (`tests/observability.rs`
//! asserts `Stats` equality with profiling on and off). Because the VM
//! itself is deterministic, every profile is a pure function of the
//! program — byte-identical across runs, machines, and job counts.
//!
//! [`Stats`]: crate::machine::Stats
//!
//! Attribution is driven by a [`FuncRange`] map that the linker emits
//! alongside the GC tables: each compiled function's half-open
//! instruction-index range, sorted by start. Program counters below the
//! first function (the entry/trap stubs the linker lays down before any
//! function body) fall into an implicit `"(stubs)"` bucket.

use crate::isa::Instr;
use std::collections::BTreeMap;

/// Pseudo-site for runtime-service allocation inside `RtCall`s (string
/// construction, …): there is no interpreted allocation pc to blame.
pub const RT_SITE: u32 = u32::MAX;

/// Pseudo-site for heap words whose allocation the profiler never saw
/// (e.g. the final pre-sample instruction's bump, whose HP delta is
/// only observed on the *next* retire). Kept distinct so census
/// site breakdowns stay exhaustive instead of silently dropping words.
pub const UNMAPPED_SITE: u32 = u32::MAX - 1;

/// Is `TIL_PROFILE` set to a truthy value (anything but `0`/empty)?
pub fn env_enabled() -> bool {
    match std::env::var("TIL_PROFILE") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// One function's half-open code range `[start, end)`, in instruction
/// indices. Produced by the linker in emission order (so ranges are
/// sorted and non-overlapping).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuncRange {
    /// Deterministic function name (`"main"` for the entry function).
    pub name: String,
    /// First instruction index.
    pub start: u32,
    /// One past the last instruction index.
    pub end: u32,
}

/// Per-function execution totals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FuncProfile {
    /// Function name (or `"(stubs)"` for linker stub code).
    pub name: String,
    /// Instructions retired while the pc was inside this function.
    pub instrs: u64,
    /// Heap bytes allocated by this function's instructions.
    pub alloc_bytes: u64,
    /// Hardware traps (overflow, div, subscript, …) raised here.
    pub traps: u64,
}

#[derive(Clone, Copy, Default)]
struct Counts {
    instrs: u64,
    alloc_bytes: u64,
    traps: u64,
}

/// One live heap interval in the side map: `[start, end)` was bumped
/// by `site`, and the object(s) inside have survived `survivals`
/// collections so far. Keyed by `start` in [`Profiler::heap_map`].
#[derive(Clone, Copy, Debug)]
struct HeapEntry {
    end: u64,
    site: u32,
    survivals: u32,
}

/// Per-site running totals (keyed by site pc in [`Profiler::sites`]).
#[derive(Clone, Debug, Default)]
struct SiteCounts {
    alloc_bytes: u64,
    /// `survived_words[k]` = words that survived at least `k + 1`
    /// collections (each object adds its words to bucket `k` the
    /// moment its `k + 1`-th forwarding copy happens).
    survived_words: Vec<u64>,
}

/// One allocation site's lifetime statistics, as reported by
/// [`Profiler::site_profiles`]. A *site* is the pc of the HP-bump
/// instruction that allocated (resolved to `fun+offset` via the
/// function-range map), or one of the [`RT_SITE`]/[`UNMAPPED_SITE`]
/// pseudo-sites.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteProfile {
    /// The allocation pc ([`RT_SITE`]/[`UNMAPPED_SITE`] for the
    /// pseudo-sites).
    pub pc: u32,
    /// Human name: `fun+offset`, `(rt)`, `(stubs)+pc`, or
    /// `(unmapped)`.
    pub name: String,
    /// Total words this site allocated over the whole run.
    pub alloc_words: u64,
    /// `survived_words[k]` = words surviving at least `k + 1`
    /// collections (empty when nothing from this site was ever
    /// copied).
    pub survived_words: Vec<u64>,
    /// Words from this site still resident when the run ended.
    pub live_at_exit_words: u64,
}

/// The profiler itself: attach one to a `Machine` (boxed, so the
/// machine stays cheap to move) and it observes every retired
/// instruction.
pub struct Profiler {
    /// Sorted function ranges; index `ranges.len()` is the implicit
    /// stub bucket.
    ranges: Vec<FuncRange>,
    counts: Vec<Counts>,
    opcodes: [u64; Instr::NUM_OPCODES],
    /// Bucket of the most recently retired instruction — both a lookup
    /// cache (straight-line code stays in one function) and the
    /// attribution target for allocation observed on the *next* retire.
    cur: usize,
    /// Heap pointer after the previous retire; `u64::MAX` until the
    /// first instruction (and after a collection resets the HP).
    last_hp: u64,
    /// Heap bytes allocated by runtime services inside `RtCall`s
    /// (string construction, …) — a distinct bucket so the interpreted
    /// caller is never charged for the runtime's allocation.
    rt_alloc_bytes: u64,
    /// Sorted pcs of exception-packet allocation bumps (from the
    /// linker): the HP delta observed right after one of these retires
    /// is packet construction, charged to the `"(rt)"` bucket like the
    /// other runtime services instead of the raising function.
    exn_pcs: Vec<u32>,
    /// pc of the most recently retired instruction (`u32::MAX` before
    /// the first retire) — the instruction whose allocation the next
    /// retire's HP delta reports.
    last_pc: u32,
    /// The heap side map: live interval start → entry. Every observed
    /// HP bump inserts one interval; [`gc_forward`](Profiler::gc_forward)
    /// re-inserts the to-space copy; [`gc_flip`](Profiler::gc_flip)
    /// purges the dying semispace. Strictly observational.
    heap_map: BTreeMap<u64, HeapEntry>,
    /// Per-site totals, keyed by allocation pc.
    sites: BTreeMap<u32, SiteCounts>,
}

impl Profiler {
    /// A profiler over the linker's function-range map. `ranges` must
    /// be sorted by `start` with non-overlapping, non-empty ranges (the
    /// linker emits them that way).
    pub fn new(ranges: Vec<FuncRange>) -> Profiler {
        let n = ranges.len();
        Profiler {
            ranges,
            counts: vec![Counts::default(); n + 1],
            opcodes: [0; Instr::NUM_OPCODES],
            cur: n,
            last_hp: u64::MAX,
            rt_alloc_bytes: 0,
            exn_pcs: Vec::new(),
            last_pc: u32::MAX,
            heap_map: BTreeMap::new(),
            sites: BTreeMap::new(),
        }
    }

    /// Registers the linker's sorted exception-packet allocation pcs
    /// (the HP-bump instruction completing each packet).
    pub fn with_exn_allocs(mut self, pcs: Vec<u32>) -> Profiler {
        debug_assert!(pcs.windows(2).all(|w| w[0] < w[1]), "exn pcs sorted");
        self.exn_pcs = pcs;
        self
    }

    /// Maps a pc to its bucket: a range index, or `ranges.len()` for
    /// stub code outside every function.
    fn locate(&self, pc: usize) -> usize {
        let pc = pc as u32;
        if let Some(r) = self.ranges.get(self.cur) {
            if r.start <= pc && pc < r.end {
                return self.cur;
            }
        }
        let idx = self.ranges.partition_point(|r| r.start <= pc);
        match idx.checked_sub(1) {
            Some(i) if pc < self.ranges[i].end => i,
            _ => self.ranges.len(),
        }
    }

    /// Observes one retired instruction: `pc` is the instruction's own
    /// index, `hp` the heap pointer as it issues (i.e. after the
    /// *previous* instruction finished executing). Allocation
    /// moves only the HP, so the HP delta between consecutive retires
    /// is open-coded allocation attributed to the previously-current
    /// function. Runtime-service allocation inside an `RtCall` is
    /// re-based into the `rt` bucket via
    /// [`note_rt_call`](Profiler::note_rt_call) before the next retire,
    /// so it is never mischarged to the interpreted caller. The
    /// collector re-bases the delta via [`note_rt`](Profiler::note_rt)
    /// when it flips semispaces, so a flip never shows up as
    /// allocation; a backwards HP move without a re-base is likewise
    /// treated as a reset.
    pub fn retire(&mut self, pc: usize, instr: &Instr, hp: u64) {
        if self.last_hp != u64::MAX && hp > self.last_hp {
            let delta = hp - self.last_hp;
            // Exception-packet construction (the previous instruction
            // was a registered packet bump) is runtime work, like the
            // string services: charge the rt bucket, not the raiser.
            if self.exn_pcs.binary_search(&self.last_pc).is_ok() {
                self.rt_alloc_bytes += delta;
            } else {
                self.counts[self.cur].alloc_bytes += delta;
            }
            // Either way the bump pc is the allocation *site* (exn
            // packets keep their own pc, so packets raised from
            // different functions stay distinguishable).
            self.record_site_alloc(self.last_pc, self.last_hp, hp);
        }
        self.last_hp = hp;
        let cur = self.locate(pc);
        self.counts[cur].instrs += 1;
        self.opcodes[instr.opcode()] += 1;
        self.cur = cur;
        self.last_pc = pc as u32;
    }

    /// Observes a hardware trap raised by the current instruction.
    pub fn trap(&mut self) {
        self.counts[self.cur].traps += 1;
    }

    /// Re-bases the HP-delta baseline. The collector calls this after a
    /// semispace flip so the flip's HP move (in either direction) is
    /// never mistaken for allocation.
    pub fn note_rt(&mut self, hp: u64) {
        self.last_hp = hp;
    }

    /// Charges heap growth since the last baseline to the runtime
    /// (`"(rt)"`) bucket and re-bases. The machine calls this after
    /// every `RtCall` returns: any HP delta at that point is runtime
    /// allocation (string services), not the interpreted caller's —
    /// a collection inside the call already re-based via
    /// [`note_rt`](Profiler::note_rt), so only post-collection service
    /// allocation lands here.
    pub fn note_rt_call(&mut self, hp: u64) {
        if self.last_hp != u64::MAX && hp > self.last_hp {
            self.rt_alloc_bytes += hp - self.last_hp;
            self.record_site_alloc(RT_SITE, self.last_hp, hp);
        }
        self.last_hp = hp;
    }

    /// Records a fresh allocation interval `[lo, hi)` for `site` in
    /// the heap side map and charges its bytes to the site's total.
    fn record_site_alloc(&mut self, site: u32, lo: u64, hi: u64) {
        self.heap_map.insert(
            lo,
            HeapEntry {
                end: hi,
                site,
                survivals: 0,
            },
        );
        self.sites.entry(site).or_default().alloc_bytes += hi - lo;
    }

    /// The collector reports one object copy `old → new` of `bytes`
    /// bytes (called from the single forwarding chokepoint, so it
    /// covers stop-the-world evacuation, incremental slices, and the
    /// write barrier's re-forwarding alike). The object keeps its
    /// site identity, its survival count ticks, and its words land in
    /// the site's survival histogram.
    pub fn gc_forward(&mut self, old: u64, new: u64, bytes: u64) {
        let (site, survivals) = match self.heap_map.range(..=old).next_back() {
            Some((_, e)) if old < e.end => (e.site, e.survivals),
            _ => (UNMAPPED_SITE, 0),
        };
        self.heap_map.insert(
            new,
            HeapEntry {
                end: new + bytes,
                site,
                survivals: survivals + 1,
            },
        );
        let s = self.sites.entry(site).or_default();
        let k = survivals as usize;
        if s.survived_words.len() <= k {
            s.survived_words.resize(k + 1, 0);
        }
        s.survived_words[k] += bytes / 8;
    }

    /// The collector reports a semispace flip: every interval still
    /// keyed inside the dying from-space `[lo, hi)` is garbage (live
    /// objects were re-inserted at their to-space addresses by
    /// [`gc_forward`](Profiler::gc_forward)) and is dropped.
    pub fn gc_flip(&mut self, lo: u64, hi: u64) {
        let dead: Vec<u64> = self.heap_map.range(lo..hi).map(|(&k, _)| k).collect();
        for k in dead {
            self.heap_map.remove(&k);
        }
    }

    /// Maps a heap address to the site that allocated it
    /// ([`UNMAPPED_SITE`] when the profiler never saw the bump).
    pub fn site_of(&self, addr: u64) -> u32 {
        match self.heap_map.range(..=addr).next_back() {
            Some((_, e)) if addr < e.end => e.site,
            _ => UNMAPPED_SITE,
        }
    }

    /// Human name for a site pc: `fun+offset` for compiled code,
    /// `(stubs)+pc` for linker stubs, `(rt)`/`(unmapped)` for the
    /// pseudo-sites.
    pub fn site_name(&self, site: u32) -> String {
        match site {
            RT_SITE => "(rt)".into(),
            UNMAPPED_SITE => "(unmapped)".into(),
            pc => {
                let idx = self.ranges.partition_point(|r| r.start <= pc);
                match idx.checked_sub(1) {
                    Some(i) if pc < self.ranges[i].end => {
                        format!("{}+{}", self.ranges[i].name, pc - self.ranges[i].start)
                    }
                    _ => format!("(stubs)+{pc}"),
                }
            }
        }
    }

    /// Per-site lifetime statistics, sorted by site pc (pseudo-sites
    /// last). `live_at_exit_words` sums the intervals still resident
    /// in the side map, so it is only meaningful once the run ended.
    pub fn site_profiles(&self) -> Vec<SiteProfile> {
        let mut live: BTreeMap<u32, u64> = BTreeMap::new();
        for (&lo, e) in &self.heap_map {
            *live.entry(e.site).or_default() += (e.end - lo) / 8;
        }
        self.sites
            .iter()
            .map(|(&pc, c)| SiteProfile {
                pc,
                name: self.site_name(pc),
                alloc_words: c.alloc_bytes / 8,
                survived_words: c.survived_words.clone(),
                live_at_exit_words: live.get(&pc).copied().unwrap_or(0),
            })
            .collect()
    }

    /// The per-opcode histogram: `(mnemonic, retired)` for every opcode
    /// with a nonzero count, in fixed opcode order.
    pub fn opcode_histogram(&self) -> Vec<(&'static str, u64)> {
        self.opcodes
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(op, &n)| (Instr::opcode_name(op), n))
            .collect()
    }

    /// Per-function profiles in code order, with a trailing
    /// `"(stubs)"` bucket when any stub instruction retired and a
    /// trailing `"(rt)"` bucket when runtime services allocated.
    pub fn function_profiles(&self) -> Vec<FuncProfile> {
        let mut out: Vec<FuncProfile> = self
            .ranges
            .iter()
            .zip(&self.counts)
            .map(|(r, c)| FuncProfile {
                name: r.name.clone(),
                instrs: c.instrs,
                alloc_bytes: c.alloc_bytes,
                traps: c.traps,
            })
            .collect();
        let stubs = self.counts[self.ranges.len()];
        if stubs.instrs > 0 || stubs.alloc_bytes > 0 || stubs.traps > 0 {
            out.push(FuncProfile {
                name: "(stubs)".into(),
                instrs: stubs.instrs,
                alloc_bytes: stubs.alloc_bytes,
                traps: stubs.traps,
            });
        }
        if self.rt_alloc_bytes > 0 {
            out.push(FuncProfile {
                name: "(rt)".into(),
                alloc_bytes: self.rt_alloc_bytes,
                ..FuncProfile::default()
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Op;

    fn ranges() -> Vec<FuncRange> {
        vec![
            FuncRange {
                name: "main".into(),
                start: 10,
                end: 20,
            },
            FuncRange {
                name: "f_1".into(),
                start: 20,
                end: 35,
            },
        ]
    }

    #[test]
    fn locates_functions_and_stubs() {
        let p = Profiler::new(ranges());
        assert_eq!(p.locate(3), 2); // stub bucket
        assert_eq!(p.locate(10), 0);
        assert_eq!(p.locate(19), 0);
        assert_eq!(p.locate(20), 1);
        assert_eq!(p.locate(34), 1);
        assert_eq!(p.locate(35), 2);
    }

    #[test]
    fn attributes_instrs_and_allocation() {
        let mut p = Profiler::new(ranges());
        let mov = Instr::Mov {
            dst: 1,
            src: Op::I(0),
        };
        p.retire(10, &mov, 1000); // main, establishes hp baseline
        p.retire(11, &mov, 1016); // main allocated 16 bytes at pc 10
        p.retire(20, &mov, 1016); // f_1
        p.retire(21, &mov, 800); // hp moved backwards: GC flip, no charge
        p.retire(22, &mov, 824); // f_1 allocated 24 bytes
        let funs = p.function_profiles();
        assert_eq!(funs[0].name, "main");
        assert_eq!(funs[0].instrs, 2);
        assert_eq!(funs[0].alloc_bytes, 16);
        assert_eq!(funs[1].name, "f_1");
        assert_eq!(funs[1].instrs, 3);
        assert_eq!(funs[1].alloc_bytes, 24);
        assert_eq!(funs.len(), 2); // no stub instructions retired
        assert_eq!(p.opcode_histogram(), vec![("mov", 5)]);
    }

    #[test]
    fn rt_call_allocation_lands_in_the_rt_bucket() {
        let mut p = Profiler::new(ranges());
        let mov = Instr::Mov {
            dst: 1,
            src: Op::I(0),
        };
        p.retire(10, &mov, 1000); // main, establishes hp baseline
        // An RtCall at pc 11 whose string service allocated 32 bytes:
        // the machine re-bases right after the call returns...
        p.retire(11, &mov, 1000);
        p.note_rt_call(1032);
        // ...so the next retire charges main nothing.
        p.retire(12, &mov, 1032);
        let funs = p.function_profiles();
        assert_eq!(funs[0].name, "main");
        assert_eq!(funs[0].alloc_bytes, 0);
        assert_eq!(funs.last().map(|f| f.name.as_str()), Some("(rt)"));
        assert_eq!(funs.last().map(|f| f.alloc_bytes), Some(32));
    }

    #[test]
    fn exn_packet_allocation_lands_in_the_rt_bucket() {
        let mut p = Profiler::new(ranges()).with_exn_allocs(vec![11]);
        let mov = Instr::Mov {
            dst: 1,
            src: Op::I(0),
        };
        p.retire(10, &mov, 1000); // main, establishes hp baseline
        p.retire(11, &mov, 1000); // the packet's HP bump retires
        p.retire(12, &mov, 1024); // its 24-byte packet charges rt
        p.retire(13, &mov, 1040); // ordinary allocation still charges main
        let funs = p.function_profiles();
        assert_eq!(funs[0].name, "main");
        assert_eq!(funs[0].alloc_bytes, 16);
        assert_eq!(funs.last().map(|f| f.name.as_str()), Some("(rt)"));
        assert_eq!(funs.last().map(|f| f.alloc_bytes), Some(24));
    }

    #[test]
    fn sites_track_allocation_survival_and_exit_residency() {
        let mut p = Profiler::new(ranges());
        let mov = Instr::Mov {
            dst: 1,
            src: Op::I(0),
        };
        p.retire(10, &mov, 1000); // baseline
        p.retire(11, &mov, 1016); // site pc 10: 16 bytes
        p.retire(20, &mov, 1016);
        p.retire(21, &mov, 1040); // site pc 20: 24 bytes
        assert_eq!(p.site_of(1000), 10);
        assert_eq!(p.site_of(1015), 10);
        assert_eq!(p.site_of(1016), 20);
        assert_eq!(p.site_of(2000), UNMAPPED_SITE);
        // A collection copies the pc-10 object to 5000, the pc-20
        // object dies; the collector reports the copy and the flip.
        p.gc_forward(1000, 5000, 16);
        p.gc_flip(0, 4096);
        p.note_rt(5016);
        assert_eq!(p.site_of(5000), 10);
        assert_eq!(p.site_of(1016), UNMAPPED_SITE); // purged
        // Second collection: it survives again.
        p.gc_forward(5000, 1000, 16);
        p.gc_flip(4096, 8192);
        p.note_rt(1016);
        let sites = p.site_profiles();
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].pc, 10);
        assert_eq!(sites[0].name, "main+0");
        assert_eq!(sites[0].alloc_words, 2);
        assert_eq!(sites[0].survived_words, vec![2, 2]);
        assert_eq!(sites[0].live_at_exit_words, 2);
        assert_eq!(sites[1].pc, 20);
        assert_eq!(sites[1].name, "f_1+0");
        assert_eq!(sites[1].alloc_words, 3);
        assert_eq!(sites[1].survived_words, Vec::<u64>::new());
        assert_eq!(sites[1].live_at_exit_words, 0);
    }

    #[test]
    fn rt_allocation_gets_the_rt_pseudo_site() {
        let mut p = Profiler::new(ranges());
        let mov = Instr::Mov {
            dst: 1,
            src: Op::I(0),
        };
        p.retire(10, &mov, 1000);
        p.retire(11, &mov, 1000);
        p.note_rt_call(1032);
        assert_eq!(p.site_of(1000), RT_SITE);
        let sites = p.site_profiles();
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].name, "(rt)");
        assert_eq!(sites[0].alloc_words, 4);
        assert_eq!(sites[0].live_at_exit_words, 4);
    }

    #[test]
    fn traps_charge_the_current_function() {
        let mut p = Profiler::new(ranges());
        let mov = Instr::Mov {
            dst: 1,
            src: Op::I(0),
        };
        p.retire(12, &mov, 0);
        p.trap();
        assert_eq!(p.function_profiles()[0].traps, 1);
    }
}
