//! The execution profiler: per-opcode retired-instruction histograms
//! and per-function attribution of instructions, allocation, and traps.
//!
//! The profiler is strictly an *observer*: it reads the instruction
//! stream and the heap pointer, and never touches [`Stats`] or any
//! machine state, so a profiled run retires exactly the same
//! instructions, allocates exactly the same bytes, and reports exactly
//! the same counters as an unprofiled one (`tests/observability.rs`
//! asserts `Stats` equality with profiling on and off). Because the VM
//! itself is deterministic, every profile is a pure function of the
//! program — byte-identical across runs, machines, and job counts.
//!
//! [`Stats`]: crate::machine::Stats
//!
//! Attribution is driven by a [`FuncRange`] map that the linker emits
//! alongside the GC tables: each compiled function's half-open
//! instruction-index range, sorted by start. Program counters below the
//! first function (the entry/trap stubs the linker lays down before any
//! function body) fall into an implicit `"(stubs)"` bucket.

use crate::isa::Instr;

/// Is `TIL_PROFILE` set to a truthy value (anything but `0`/empty)?
pub fn env_enabled() -> bool {
    match std::env::var("TIL_PROFILE") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// One function's half-open code range `[start, end)`, in instruction
/// indices. Produced by the linker in emission order (so ranges are
/// sorted and non-overlapping).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuncRange {
    /// Deterministic function name (`"main"` for the entry function).
    pub name: String,
    /// First instruction index.
    pub start: u32,
    /// One past the last instruction index.
    pub end: u32,
}

/// Per-function execution totals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FuncProfile {
    /// Function name (or `"(stubs)"` for linker stub code).
    pub name: String,
    /// Instructions retired while the pc was inside this function.
    pub instrs: u64,
    /// Heap bytes allocated by this function's instructions.
    pub alloc_bytes: u64,
    /// Hardware traps (overflow, div, subscript, …) raised here.
    pub traps: u64,
}

#[derive(Clone, Copy, Default)]
struct Counts {
    instrs: u64,
    alloc_bytes: u64,
    traps: u64,
}

/// The profiler itself: attach one to a `Machine` (boxed, so the
/// machine stays cheap to move) and it observes every retired
/// instruction.
pub struct Profiler {
    /// Sorted function ranges; index `ranges.len()` is the implicit
    /// stub bucket.
    ranges: Vec<FuncRange>,
    counts: Vec<Counts>,
    opcodes: [u64; Instr::NUM_OPCODES],
    /// Bucket of the most recently retired instruction — both a lookup
    /// cache (straight-line code stays in one function) and the
    /// attribution target for allocation observed on the *next* retire.
    cur: usize,
    /// Heap pointer after the previous retire; `u64::MAX` until the
    /// first instruction (and after a collection resets the HP).
    last_hp: u64,
    /// Heap bytes allocated by runtime services inside `RtCall`s
    /// (string construction, …) — a distinct bucket so the interpreted
    /// caller is never charged for the runtime's allocation.
    rt_alloc_bytes: u64,
    /// Sorted pcs of exception-packet allocation bumps (from the
    /// linker): the HP delta observed right after one of these retires
    /// is packet construction, charged to the `"(rt)"` bucket like the
    /// other runtime services instead of the raising function.
    exn_pcs: Vec<u32>,
    /// pc of the most recently retired instruction (`u32::MAX` before
    /// the first retire) — the instruction whose allocation the next
    /// retire's HP delta reports.
    last_pc: u32,
}

impl Profiler {
    /// A profiler over the linker's function-range map. `ranges` must
    /// be sorted by `start` with non-overlapping, non-empty ranges (the
    /// linker emits them that way).
    pub fn new(ranges: Vec<FuncRange>) -> Profiler {
        let n = ranges.len();
        Profiler {
            ranges,
            counts: vec![Counts::default(); n + 1],
            opcodes: [0; Instr::NUM_OPCODES],
            cur: n,
            last_hp: u64::MAX,
            rt_alloc_bytes: 0,
            exn_pcs: Vec::new(),
            last_pc: u32::MAX,
        }
    }

    /// Registers the linker's sorted exception-packet allocation pcs
    /// (the HP-bump instruction completing each packet).
    pub fn with_exn_allocs(mut self, pcs: Vec<u32>) -> Profiler {
        debug_assert!(pcs.windows(2).all(|w| w[0] < w[1]), "exn pcs sorted");
        self.exn_pcs = pcs;
        self
    }

    /// Maps a pc to its bucket: a range index, or `ranges.len()` for
    /// stub code outside every function.
    fn locate(&self, pc: usize) -> usize {
        let pc = pc as u32;
        if let Some(r) = self.ranges.get(self.cur) {
            if r.start <= pc && pc < r.end {
                return self.cur;
            }
        }
        let idx = self.ranges.partition_point(|r| r.start <= pc);
        match idx.checked_sub(1) {
            Some(i) if pc < self.ranges[i].end => i,
            _ => self.ranges.len(),
        }
    }

    /// Observes one retired instruction: `pc` is the instruction's own
    /// index, `hp` the heap pointer as it issues (i.e. after the
    /// *previous* instruction finished executing). Allocation
    /// moves only the HP, so the HP delta between consecutive retires
    /// is open-coded allocation attributed to the previously-current
    /// function. Runtime-service allocation inside an `RtCall` is
    /// re-based into the `rt` bucket via
    /// [`note_rt_call`](Profiler::note_rt_call) before the next retire,
    /// so it is never mischarged to the interpreted caller. The
    /// collector re-bases the delta via [`note_rt`](Profiler::note_rt)
    /// when it flips semispaces, so a flip never shows up as
    /// allocation; a backwards HP move without a re-base is likewise
    /// treated as a reset.
    pub fn retire(&mut self, pc: usize, instr: &Instr, hp: u64) {
        if self.last_hp != u64::MAX && hp > self.last_hp {
            let delta = hp - self.last_hp;
            // Exception-packet construction (the previous instruction
            // was a registered packet bump) is runtime work, like the
            // string services: charge the rt bucket, not the raiser.
            if self.exn_pcs.binary_search(&self.last_pc).is_ok() {
                self.rt_alloc_bytes += delta;
            } else {
                self.counts[self.cur].alloc_bytes += delta;
            }
        }
        self.last_hp = hp;
        let cur = self.locate(pc);
        self.counts[cur].instrs += 1;
        self.opcodes[instr.opcode()] += 1;
        self.cur = cur;
        self.last_pc = pc as u32;
    }

    /// Observes a hardware trap raised by the current instruction.
    pub fn trap(&mut self) {
        self.counts[self.cur].traps += 1;
    }

    /// Re-bases the HP-delta baseline. The collector calls this after a
    /// semispace flip so the flip's HP move (in either direction) is
    /// never mistaken for allocation.
    pub fn note_rt(&mut self, hp: u64) {
        self.last_hp = hp;
    }

    /// Charges heap growth since the last baseline to the runtime
    /// (`"(rt)"`) bucket and re-bases. The machine calls this after
    /// every `RtCall` returns: any HP delta at that point is runtime
    /// allocation (string services), not the interpreted caller's —
    /// a collection inside the call already re-based via
    /// [`note_rt`](Profiler::note_rt), so only post-collection service
    /// allocation lands here.
    pub fn note_rt_call(&mut self, hp: u64) {
        if self.last_hp != u64::MAX && hp > self.last_hp {
            self.rt_alloc_bytes += hp - self.last_hp;
        }
        self.last_hp = hp;
    }

    /// The per-opcode histogram: `(mnemonic, retired)` for every opcode
    /// with a nonzero count, in fixed opcode order.
    pub fn opcode_histogram(&self) -> Vec<(&'static str, u64)> {
        self.opcodes
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(op, &n)| (Instr::opcode_name(op), n))
            .collect()
    }

    /// Per-function profiles in code order, with a trailing
    /// `"(stubs)"` bucket when any stub instruction retired and a
    /// trailing `"(rt)"` bucket when runtime services allocated.
    pub fn function_profiles(&self) -> Vec<FuncProfile> {
        let mut out: Vec<FuncProfile> = self
            .ranges
            .iter()
            .zip(&self.counts)
            .map(|(r, c)| FuncProfile {
                name: r.name.clone(),
                instrs: c.instrs,
                alloc_bytes: c.alloc_bytes,
                traps: c.traps,
            })
            .collect();
        let stubs = self.counts[self.ranges.len()];
        if stubs.instrs > 0 || stubs.alloc_bytes > 0 || stubs.traps > 0 {
            out.push(FuncProfile {
                name: "(stubs)".into(),
                instrs: stubs.instrs,
                alloc_bytes: stubs.alloc_bytes,
                traps: stubs.traps,
            });
        }
        if self.rt_alloc_bytes > 0 {
            out.push(FuncProfile {
                name: "(rt)".into(),
                alloc_bytes: self.rt_alloc_bytes,
                ..FuncProfile::default()
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Op;

    fn ranges() -> Vec<FuncRange> {
        vec![
            FuncRange {
                name: "main".into(),
                start: 10,
                end: 20,
            },
            FuncRange {
                name: "f_1".into(),
                start: 20,
                end: 35,
            },
        ]
    }

    #[test]
    fn locates_functions_and_stubs() {
        let p = Profiler::new(ranges());
        assert_eq!(p.locate(3), 2); // stub bucket
        assert_eq!(p.locate(10), 0);
        assert_eq!(p.locate(19), 0);
        assert_eq!(p.locate(20), 1);
        assert_eq!(p.locate(34), 1);
        assert_eq!(p.locate(35), 2);
    }

    #[test]
    fn attributes_instrs_and_allocation() {
        let mut p = Profiler::new(ranges());
        let mov = Instr::Mov {
            dst: 1,
            src: Op::I(0),
        };
        p.retire(10, &mov, 1000); // main, establishes hp baseline
        p.retire(11, &mov, 1016); // main allocated 16 bytes at pc 10
        p.retire(20, &mov, 1016); // f_1
        p.retire(21, &mov, 800); // hp moved backwards: GC flip, no charge
        p.retire(22, &mov, 824); // f_1 allocated 24 bytes
        let funs = p.function_profiles();
        assert_eq!(funs[0].name, "main");
        assert_eq!(funs[0].instrs, 2);
        assert_eq!(funs[0].alloc_bytes, 16);
        assert_eq!(funs[1].name, "f_1");
        assert_eq!(funs[1].instrs, 3);
        assert_eq!(funs[1].alloc_bytes, 24);
        assert_eq!(funs.len(), 2); // no stub instructions retired
        assert_eq!(p.opcode_histogram(), vec![("mov", 5)]);
    }

    #[test]
    fn rt_call_allocation_lands_in_the_rt_bucket() {
        let mut p = Profiler::new(ranges());
        let mov = Instr::Mov {
            dst: 1,
            src: Op::I(0),
        };
        p.retire(10, &mov, 1000); // main, establishes hp baseline
        // An RtCall at pc 11 whose string service allocated 32 bytes:
        // the machine re-bases right after the call returns...
        p.retire(11, &mov, 1000);
        p.note_rt_call(1032);
        // ...so the next retire charges main nothing.
        p.retire(12, &mov, 1032);
        let funs = p.function_profiles();
        assert_eq!(funs[0].name, "main");
        assert_eq!(funs[0].alloc_bytes, 0);
        assert_eq!(funs.last().map(|f| f.name.as_str()), Some("(rt)"));
        assert_eq!(funs.last().map(|f| f.alloc_bytes), Some(32));
    }

    #[test]
    fn exn_packet_allocation_lands_in_the_rt_bucket() {
        let mut p = Profiler::new(ranges()).with_exn_allocs(vec![11]);
        let mov = Instr::Mov {
            dst: 1,
            src: Op::I(0),
        };
        p.retire(10, &mov, 1000); // main, establishes hp baseline
        p.retire(11, &mov, 1000); // the packet's HP bump retires
        p.retire(12, &mov, 1024); // its 24-byte packet charges rt
        p.retire(13, &mov, 1040); // ordinary allocation still charges main
        let funs = p.function_profiles();
        assert_eq!(funs[0].name, "main");
        assert_eq!(funs[0].alloc_bytes, 16);
        assert_eq!(funs.last().map(|f| f.name.as_str()), Some("(rt)"));
        assert_eq!(funs.last().map(|f| f.alloc_bytes), Some(24));
    }

    #[test]
    fn traps_charge_the_current_function() {
        let mut p = Profiler::new(ranges());
        let mov = Instr::Mov {
            dst: 1,
            src: Op::I(0),
        };
        p.retire(12, &mov, 0);
        p.trap();
        assert_eq!(p.function_profiles()[0].traps, 1);
    }
}
