//! The virtual machine: memory, registers, and the execution loop,
//! with the deterministic performance counters that replace the
//! paper's wall-clock and `getrusage` measurements.

use crate::isa::{header, regs, Alu, CodeAddr, Falu, Instr, Op, RtFn};
use std::fmt;

/// Code addresses, when held in registers or memory, are odd-encoded
/// (`2·index + 1`) so that neither collector can mistake them for heap
/// pointers. Direct branch/call targets in instructions stay plain.
pub fn code_value(idx: CodeAddr) -> u64 {
    ((idx as u64) << 1) | 1
}

/// Decodes an odd-encoded code value back to an instruction index.
pub fn code_index(v: u64) -> u32 {
    (v >> 1) as u32
}

/// A machine-level execution error (these indicate compiler bugs or
/// resource exhaustion, never ordinary ML exceptions, which compile to
/// in-language control flow).
#[derive(Debug, Clone)]
pub enum VmError {
    /// Unaligned or out-of-range memory access.
    BadAccess {
        /// The offending byte address.
        addr: u64,
        /// Program counter.
        pc: usize,
    },
    /// Jump outside the code segment.
    BadJump {
        /// Target.
        target: u64,
        /// Program counter.
        pc: usize,
    },
    /// The instruction budget was exhausted.
    OutOfFuel,
    /// Stack overflow.
    StackOverflow,
    /// The heap cannot satisfy an allocation even after collection.
    OutOfMemory,
    /// A trap fired with no handler configured.
    UnhandledTrap(Trap),
    /// The runtime system reported an error.
    Runtime(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::BadAccess { addr, pc } => {
                write!(f, "bad memory access at {addr:#x} (pc {pc})")
            }
            VmError::BadJump { target, pc } => write!(f, "bad jump to {target} (pc {pc})"),
            VmError::OutOfFuel => write!(f, "instruction budget exhausted"),
            VmError::StackOverflow => write!(f, "stack overflow"),
            VmError::OutOfMemory => write!(f, "out of memory"),
            VmError::UnhandledTrap(t) => write!(f, "unhandled trap {t:?}"),
            VmError::Runtime(s) => write!(f, "runtime error: {s}"),
        }
    }
}

impl std::error::Error for VmError {}

/// Hardware traps raised by instructions or runtime services; each
/// jumps to a compiled stub that raises the corresponding ML exception.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Trap {
    /// Integer overflow (`AddV`/`SubV`/`MulV`, conversions).
    Overflow,
    /// Division by zero.
    Div,
    /// String/array subscript from a runtime service.
    Subscript,
    /// Math domain error.
    Domain,
    /// `chr` out of range.
    Chr,
    /// Bad aggregate size.
    Size,
}

/// Deterministic performance counters. `PartialEq`/`Eq` back the
/// profiling-transparency guarantee: a profiled run's `Stats` must
/// compare equal to an unprofiled run's.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Instructions retired.
    pub instrs: u64,
    /// Extra instruction-equivalents charged by runtime services
    /// (string operations, collector work).
    pub rt_cost: u64,
    /// Total bytes allocated (mutator).
    pub allocated_bytes: u64,
    /// Number of collections.
    pub gc_count: u64,
    /// Words copied by the collector.
    pub gc_copied_words: u64,
    /// High-water mark of live words (sampled at collections and once
    /// more at program exit — a program whose high-water is its final
    /// live set would otherwise under-report).
    pub max_live_words: u64,
    /// Resident heap words at program exit (live data surviving the
    /// last collection plus everything allocated since).
    pub final_heap_words: u64,
    /// High-water mark of stack words.
    pub max_stack_words: u64,
}

impl Stats {
    /// The "execution time" metric: instructions retired plus runtime
    /// work expressed in instruction equivalents.
    pub fn time(&self) -> u64 {
        self.instrs + self.rt_cost
    }
}

/// The memory layout of a loaded program.
#[derive(Clone, Debug)]
pub struct Layout {
    /// End of the globals/static segment (bytes).
    pub globals_end: u64,
    /// Start of the heap (bytes).
    pub heap_base: u64,
    /// Size of one semispace (bytes).
    pub semi_bytes: u64,
    /// Lowest legal stack address (bytes).
    pub stack_limit: u64,
    /// Initial stack pointer (bytes, top of memory).
    pub stack_top: u64,
}

impl Layout {
    /// Total memory size in words.
    pub fn total_words(&self) -> usize {
        (self.stack_top / 8) as usize
    }

    /// End of the whole heap area.
    pub fn heap_end(&self) -> u64 {
        self.heap_base + 2 * self.semi_bytes
    }
}

/// The interface the machine uses to reach the runtime system (GC,
/// strings, math, polymorphic equality). Implemented by `til-runtime`.
pub trait Runtime {
    /// Handles one runtime call. On success the machine continues at
    /// the next instruction; `Ok(Some(trap))` redirects to a trap stub.
    fn rt_call(&mut self, f: RtFn, m: &mut Machine) -> Result<Option<Trap>, VmError>;

    /// Store barrier hook, called before every `St` lands with the
    /// base-register value (the mutated object for field stores), the
    /// effective address, and the value; returns the value to store.
    /// The default is the identity — a runtime with an open incremental
    /// collection cycle uses this to keep the copy invariants.
    fn pre_store(
        &mut self,
        _m: &mut Machine,
        _base: u64,
        _addr: u64,
        val: u64,
    ) -> Result<u64, VmError> {
        Ok(val)
    }

    /// Periodic hook, called from the machine's low-frequency check
    /// (every 1024 retired instructions). The default does nothing; the
    /// runtime uses it for observational work such as the zero-GC
    /// mid-run heap census. Implementations must not change `Stats`.
    fn periodic(&mut self, _m: &mut Machine) -> Result<(), VmError> {
        Ok(())
    }
}

/// The machine state.
pub struct Machine {
    /// General registers (floats live here as bit patterns).
    pub regs: [u64; 32],
    /// Word-indexed memory (byte address / 8).
    pub mem: Vec<u64>,
    /// Code segment.
    pub code: Vec<Instr>,
    /// Program counter.
    pub pc: usize,
    /// Trap stub addresses.
    pub traps: std::collections::HashMap<Trap, CodeAddr>,
    /// Counters.
    pub stats: Stats,
    /// Memory layout.
    pub layout: Layout,
    /// Output written by `PrintStr` (also echoed to stdout when
    /// `echo` is set).
    pub output: String,
    /// Echo program output to stdout.
    pub echo: bool,
    /// Optional execution profiler (observes every retired
    /// instruction; never affects `stats` or execution). Boxed so the
    /// unprofiled machine stays one pointer wider, not a histogram
    /// wider.
    pub profiler: Option<Box<crate::profile::Profiler>>,
    halted: bool,
}

impl Machine {
    /// Creates a machine with the given code and layout; memory is
    /// zeroed, `SP` starts at the top, `HP` at the heap base, `HL` at
    /// the end of from-space.
    pub fn new(code: Vec<Instr>, layout: Layout) -> Machine {
        let mut m = Machine {
            regs: [0; 32],
            mem: vec![0; layout.total_words()],
            code,
            pc: 0,
            traps: Default::default(),
            stats: Stats::default(),
            layout: layout.clone(),
            output: String::new(),
            echo: false,
            profiler: None,
            halted: false,
        };
        m.regs[regs::SP as usize] = layout.stack_top;
        m.regs[regs::HP as usize] = layout.heap_base;
        m.regs[regs::HL as usize] = layout.heap_base + layout.semi_bytes;
        m
    }

    /// Reads the word at byte address `addr`.
    pub fn rd(&self, addr: u64) -> Result<u64, VmError> {
        let idx = (addr / 8) as usize;
        if !addr.is_multiple_of(8) || idx >= self.mem.len() {
            return Err(VmError::BadAccess { addr, pc: self.pc });
        }
        Ok(self.mem[idx])
    }

    /// Writes the word at byte address `addr`.
    pub fn wr(&mut self, addr: u64, v: u64) -> Result<(), VmError> {
        let idx = (addr / 8) as usize;
        if !addr.is_multiple_of(8) || idx >= self.mem.len() {
            return Err(VmError::BadAccess { addr, pc: self.pc });
        }
        self.mem[idx] = v;
        Ok(())
    }

    /// Reads a register as a float.
    pub fn f(&self, r: u8) -> f64 {
        f64::from_bits(self.regs[r as usize])
    }

    /// Writes a float into a register.
    pub fn set_f(&mut self, r: u8, v: f64) {
        self.regs[r as usize] = v.to_bits();
    }

    /// Reads the UTF-8 string object at byte address `addr`.
    pub fn read_string(&self, addr: u64) -> Result<String, VmError> {
        let h = self.rd(addr)?;
        if header::kind(h) != header::KIND_STRING {
            return Err(VmError::Runtime(format!(
                "expected string header at {addr:#x}"
            )));
        }
        let len = header::len(h) as usize;
        let mut bytes = Vec::with_capacity(len);
        for i in 0..len {
            let w = self.rd(addr + 8 + (i as u64 / 8) * 8)?;
            bytes.push(((w >> ((i % 8) * 8)) & 0xff) as u8);
        }
        String::from_utf8(bytes).map_err(|_| VmError::Runtime("invalid utf8".into()))
    }

    fn op(&self, o: Op) -> u64 {
        match o {
            Op::R(r) => self.regs[r as usize],
            Op::I(i) => i as u64,
        }
    }

    fn trap(&mut self, t: Trap) -> Result<(), VmError> {
        if let Some(p) = self.profiler.as_deref_mut() {
            p.trap();
        }
        match self.traps.get(&t) {
            Some(addr) => {
                self.pc = *addr as usize;
                Ok(())
            }
            None => Err(VmError::UnhandledTrap(t)),
        }
    }

    fn jump(&mut self, target: u64) -> Result<(), VmError> {
        if (target as usize) < self.code.len() {
            self.pc = target as usize;
            Ok(())
        } else {
            Err(VmError::BadJump {
                target,
                pc: self.pc,
            })
        }
    }

    /// Decodes an odd-encoded code value (see [`code_value`]).
    fn jump_value(&mut self, v: u64) -> Result<(), VmError> {
        if v & 1 == 1 {
            self.jump(v >> 1)
        } else {
            Err(VmError::BadJump {
                target: v,
                pc: self.pc,
            })
        }
    }

    /// Runs until `Halt`, an error, or `fuel` instructions.
    pub fn run(&mut self, rt: &mut dyn Runtime, fuel: u64) -> Result<u64, VmError> {
        let mut budget = fuel;
        while !self.halted {
            if budget == 0 {
                return Err(VmError::OutOfFuel);
            }
            budget -= 1;
            self.stats.instrs += 1;
            // Periodic stack checks keep the common path cheap.
            if self.stats.instrs.is_multiple_of(1024) {
                let sp = self.regs[regs::SP as usize];
                if sp < self.layout.stack_limit {
                    return Err(VmError::StackOverflow);
                }
                let used = (self.layout.stack_top - sp) / 8;
                if used > self.stats.max_stack_words {
                    self.stats.max_stack_words = used;
                }
                rt.periodic(self)?;
            }
            let i = self
                .code
                .get(self.pc)
                .cloned()
                .ok_or(VmError::BadJump {
                    target: self.pc as u64,
                    pc: self.pc,
                })?;
            self.pc += 1;
            if let Some(p) = self.profiler.as_deref_mut() {
                p.retire(self.pc - 1, &i, self.regs[regs::HP as usize]);
            }
            match i {
                Instr::Alu { op, dst, a, b } => {
                    let x = self.regs[a as usize] as i64;
                    let y = self.op(b) as i64;
                    let v: i64 = match op {
                        Alu::Add => x.wrapping_add(y),
                        Alu::Sub => x.wrapping_sub(y),
                        Alu::Mul => x.wrapping_mul(y),
                        Alu::AddV => match x.checked_add(y) {
                            Some(v) => v,
                            None => {
                                self.trap(Trap::Overflow)?;
                                continue;
                            }
                        },
                        Alu::SubV => match x.checked_sub(y) {
                            Some(v) => v,
                            None => {
                                self.trap(Trap::Overflow)?;
                                continue;
                            }
                        },
                        Alu::MulV => match x.checked_mul(y) {
                            Some(v) => v,
                            None => {
                                self.trap(Trap::Overflow)?;
                                continue;
                            }
                        },
                        Alu::Div => {
                            if y == 0 || (x == i64::MIN && y == -1) {
                                self.trap(Trap::Div)?;
                                continue;
                            }
                            x.div_euclid(y)
                        }
                        Alu::Rem => {
                            if y == 0 || (x == i64::MIN && y == -1) {
                                self.trap(Trap::Div)?;
                                continue;
                            }
                            x.rem_euclid(y)
                        }
                        Alu::And => x & y,
                        Alu::Or => x | y,
                        Alu::Xor => x ^ y,
                        Alu::Sll => ((x as u64) << (y as u64 & 63)) as i64,
                        Alu::Srl => ((x as u64) >> (y as u64 & 63)) as i64,
                        Alu::Sra => x >> (y as u64 & 63),
                        Alu::CmpEq => (x == y) as i64,
                        Alu::CmpNe => (x != y) as i64,
                        Alu::CmpLt => (x < y) as i64,
                        Alu::CmpLe => (x <= y) as i64,
                    };
                    if dst != regs::ZERO {
                        self.regs[dst as usize] = v as u64;
                    }
                }
                Instr::Falu { op, dst, a, b } => {
                    let x = self.f(a);
                    let y = self.f(b);
                    match op {
                        Falu::Add => self.set_f(dst, x + y),
                        Falu::Sub => self.set_f(dst, x - y),
                        Falu::Mul => self.set_f(dst, x * y),
                        Falu::Div => self.set_f(dst, x / y),
                        Falu::CmpEq => self.regs[dst as usize] = (x == y) as u64,
                        Falu::CmpNe => self.regs[dst as usize] = (x != y) as u64,
                        Falu::CmpLt => self.regs[dst as usize] = (x < y) as u64,
                        Falu::CmpLe => self.regs[dst as usize] = (x <= y) as u64,
                    }
                }
                Instr::Itof { dst, a } => {
                    let v = self.regs[a as usize] as i64 as f64;
                    self.set_f(dst, v);
                }
                Instr::Ld { dst, base, off } => {
                    let addr = self.regs[base as usize].wrapping_add(off as i64 as u64);
                    let v = self.rd(addr)?;
                    if dst != regs::ZERO {
                        self.regs[dst as usize] = v;
                    }
                }
                Instr::St { src, base, off } => {
                    let base_v = self.regs[base as usize];
                    let addr = base_v.wrapping_add(off as i64 as u64);
                    let v = self.regs[src as usize];
                    let v = rt.pre_store(self, base_v, addr, v)?;
                    self.wr(addr, v)?;
                }
                Instr::Mov { dst, src } => {
                    let v = self.op(src);
                    if dst != regs::ZERO {
                        self.regs[dst as usize] = v;
                    }
                }
                Instr::Lea { dst, target } => {
                    self.regs[dst as usize] = code_value(target);
                }
                Instr::Br(t) => self.jump(t as u64)?,
                Instr::Beqz(r, t) => {
                    if self.regs[r as usize] == 0 {
                        self.jump(t as u64)?;
                    }
                }
                Instr::Bnez(r, t) => {
                    if self.regs[r as usize] != 0 {
                        self.jump(t as u64)?;
                    }
                }
                Instr::Jsr(t) => {
                    self.regs[regs::RA as usize] = code_value(self.pc as u32);
                    self.jump(t as u64)?;
                }
                Instr::JsrR(r) => {
                    let t = self.regs[r as usize];
                    self.regs[regs::RA as usize] = code_value(self.pc as u32);
                    self.jump_value(t)?;
                }
                Instr::Jmp(r) => {
                    let t = self.regs[r as usize];
                    self.jump_value(t)?;
                }
                Instr::RtCall(rf) => {
                    let trap = rt.rt_call(rf, self)?;
                    if let Some(p) = self.profiler.as_deref_mut() {
                        // Heap growth inside the runtime call (string
                        // services) is the runtime's allocation, not
                        // the interpreted caller's: charge it to the
                        // profiler's `rt` bucket and re-base so the
                        // next retired instruction starts clean.
                        p.note_rt_call(self.regs[regs::HP as usize]);
                    }
                    if let Some(trap) = trap {
                        self.trap(trap)?;
                    }
                }
                Instr::Halt => {
                    self.halted = true;
                }
            }
        }
        Ok(self.regs[regs::A0 as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::regs::*;

    struct NoRt;
    impl Runtime for NoRt {
        fn rt_call(&mut self, _f: RtFn, _m: &mut Machine) -> Result<Option<Trap>, VmError> {
            Err(VmError::Runtime("no runtime".into()))
        }
    }

    fn layout() -> Layout {
        Layout {
            globals_end: 1024,
            heap_base: 1024,
            semi_bytes: 4096,
            stack_limit: 1024 + 2 * 4096,
            stack_top: 64 * 1024,
        }
    }

    fn run(code: Vec<Instr>) -> Result<u64, VmError> {
        let mut m = Machine::new(code, layout());
        m.run(&mut NoRt, 10_000)
    }

    #[test]
    fn arithmetic_and_halt() {
        let v = run(vec![
            Instr::Mov { dst: 1, src: Op::I(20) },
            Instr::Alu { op: Alu::Add, dst: 0, a: 1, b: Op::I(22) },
            Instr::Halt,
        ])
        .unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn overflow_traps_without_handler() {
        let r = run(vec![
            Instr::Mov { dst: 1, src: Op::I(i64::MAX) },
            Instr::Alu { op: Alu::AddV, dst: 0, a: 1, b: Op::I(1) },
            Instr::Halt,
        ]);
        assert!(matches!(r, Err(VmError::UnhandledTrap(Trap::Overflow))));
    }

    #[test]
    fn overflow_jumps_to_handler() {
        let mut m = Machine::new(
            vec![
                Instr::Mov { dst: 1, src: Op::I(i64::MAX) },
                Instr::Alu { op: Alu::AddV, dst: 0, a: 1, b: Op::I(1) },
                Instr::Halt,
                Instr::Mov { dst: 0, src: Op::I(99) }, // trap stub
                Instr::Halt,
            ],
            layout(),
        );
        m.traps.insert(Trap::Overflow, 3);
        let v = m.run(&mut NoRt, 100).unwrap();
        assert_eq!(v, 99);
    }

    #[test]
    fn loads_and_stores() {
        let hb = layout().heap_base as i64;
        let v = run(vec![
            Instr::Mov { dst: 1, src: Op::I(hb) },
            Instr::Mov { dst: 2, src: Op::I(7) },
            Instr::St { src: 2, base: 1, off: 8 },
            Instr::Ld { dst: 0, base: 1, off: 8 },
            Instr::Halt,
        ])
        .unwrap();
        assert_eq!(v, 7);
    }

    #[test]
    fn unaligned_access_fails() {
        let r = run(vec![
            Instr::Mov { dst: 1, src: Op::I(1025) },
            Instr::Ld { dst: 0, base: 1, off: 0 },
            Instr::Halt,
        ]);
        assert!(matches!(r, Err(VmError::BadAccess { .. })));
    }

    #[test]
    fn call_and_return() {
        // main: jsr f; halt.  f: r0 = 5; ret.
        let v = run(vec![
            Instr::Jsr(2),
            Instr::Halt,
            Instr::Mov { dst: 0, src: Op::I(5) },
            Instr::Jmp(RA),
        ])
        .unwrap();
        assert_eq!(v, 5);
    }

    #[test]
    fn float_ops_share_registers() {
        let mut m = Machine::new(
            vec![
                Instr::Itof { dst: 1, a: 2 },
                Instr::Falu { op: Falu::Add, dst: 3, a: 1, b: 1 },
                Instr::Falu { op: Falu::CmpLt, dst: 0, a: 1, b: 3 },
                Instr::Halt,
            ],
            layout(),
        );
        m.regs[2] = 21;
        let v = m.run(&mut NoRt, 100).unwrap();
        assert_eq!(v, 1); // 21.0 < 42.0
        assert_eq!(m.f(3), 42.0);
    }

    #[test]
    fn fuel_exhaustion_reports() {
        let r = run(vec![Instr::Br(0)]);
        assert!(matches!(r, Err(VmError::OutOfFuel)));
    }

    #[test]
    fn zero_register_stays_zero() {
        let v = run(vec![
            Instr::Mov { dst: ZERO, src: Op::I(7) },
            Instr::Mov { dst: 0, src: Op::R(ZERO) },
            Instr::Halt,
        ])
        .unwrap();
        assert_eq!(v, 0);
    }
}
