//! The virtual machine substrate: an ALPHA-style 64-bit RISC target
//! (see DESIGN.md's substitution table) with deterministic performance
//! counters standing in for the paper's hardware measurements.

// Hot-path hygiene: the interpreter loop and its services must report
// every failure as a typed `VmError`, never abort the host process.
// (`clippy.toml` exempts test code.)
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

pub mod isa;
pub mod machine;
pub mod profile;

pub use isa::{header, regs, Alu, CodeAddr, Falu, Instr, Op, Reg, RtFn};
pub use machine::{code_index, code_value, Layout, Machine, Runtime, Stats, Trap, VmError};
pub use profile::{FuncProfile, FuncRange, Profiler, SiteProfile, RT_SITE, UNMAPPED_SITE};
