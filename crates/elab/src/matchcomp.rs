//! Pattern-match compilation.
//!
//! Implements the classic first-column decision-tree construction: a
//! matrix of typed patterns over a vector of occurrence variables is
//! turned into nested [`LSwitch`] trees (the paper's front end
//! "eliminates pattern matching" before Lambda, §3.1).

use crate::elab::Elab;
use til_common::{Diagnostic, Result, Symbol, Var};
use til_lambda::ty::LTy;
use til_lambda::{DataId, ExnId, LExp, LSwitch};

/// A typed pattern (produced by [`Elab::elab_pat`]).
#[derive(Clone, Debug)]
pub enum TPat {
    /// Matches anything, binds nothing.
    Wild,
    /// Matches anything, binds the occurrence to the variable.
    Var(Var),
    /// Integer/word/char constant (chars are their codes).
    Int(i64),
    /// String constant.
    Str(String),
    /// Datatype constructor.
    Con {
        /// The datatype.
        data: DataId,
        /// Instantiation.
        tyargs: Vec<LTy>,
        /// Constructor tag.
        tag: usize,
        /// Argument sub-pattern for carrying constructors.
        arg: Option<Box<TPat>>,
    },
    /// Exception constructor.
    Exn {
        /// The exception.
        id: ExnId,
        /// Argument sub-pattern.
        arg: Option<Box<TPat>>,
    },
    /// Record pattern with canonically ordered (possibly partial,
    /// for flexible patterns) fields; `ty` is the pattern's record
    /// type (resolved at compilation time for the full width).
    Record {
        /// Sub-patterns by label.
        fields: Vec<(Symbol, TPat)>,
        /// The record type (may be a flex-record uvar until resolved).
        ty: LTy,
    },
    /// Layered pattern `v as p`.
    As(Var, Box<TPat>),
}

impl TPat {
    fn is_irrefutable(&self) -> bool {
        matches!(self, TPat::Wild | TPat::Var(_))
    }
}

/// One row of the pattern matrix.
#[derive(Clone, Debug)]
pub struct Row {
    /// One pattern per occurrence.
    pub pats: Vec<TPat>,
    /// Accumulated `pattern-var := occurrence-var` bindings.
    pub binds: Vec<(Var, Var)>,
    /// The right-hand side.
    pub body: LExp,
}

impl Row {
    /// A fresh row with no accumulated bindings.
    pub fn new(pats: Vec<TPat>, body: LExp) -> Row {
        Row {
            pats,
            binds: Vec::new(),
            body,
        }
    }
}

/// Compiles a pattern matrix to a decision tree.
pub fn compile_match(
    elab: &mut Elab,
    occs: Vec<(Var, LTy)>,
    mut rows: Vec<Row>,
    default: LExp,
    result_ty: &LTy,
) -> Result<LExp> {
    // Strip layered patterns up front: `v as p` at occurrence o becomes
    // binding v := o plus pattern p.
    for row in &mut rows {
        for (i, pat) in row.pats.iter_mut().enumerate() {
            while let TPat::As(v, inner) = pat {
                row.binds.push((*v, occs[i].0));
                *pat = (**inner).clone();
            }
        }
    }
    compile(elab, &occs, rows, &default, result_ty)
}

fn compile(
    elab: &mut Elab,
    occs: &[(Var, LTy)],
    rows: Vec<Row>,
    default: &LExp,
    result_ty: &LTy,
) -> Result<LExp> {
    if rows.is_empty() {
        return Ok(default.clone());
    }
    debug_assert_eq!(rows[0].pats.len(), occs.len());
    let first_irrefutable = rows[0].pats.iter().all(TPat::is_irrefutable);
    // Fully irrefutable first row: emit its body with bindings.
    if first_irrefutable {
        let row = rows.into_iter().next().unwrap();
        let mut body = row.body;
        let mut lets: Vec<(Var, Var)> = row.binds;
        for (pat, (occ, _)) in row.pats.iter().zip(occs) {
            if let TPat::Var(v) = pat {
                lets.push((*v, *occ));
            }
        }
        for (v, occ) in lets.into_iter().rev() {
            body = LExp::Let {
                var: v,
                tyvars: vec![],
                rhs: Box::new(LExp::var(occ)),
                body: Box::new(body),
            };
        }
        return Ok(body);
    }
    // Pick the first refutable column of the first row.
    let col = rows[0]
        .pats
        .iter()
        .position(|p| !p.is_irrefutable())
        .expect("checked above");
    match rows[0].pats[col].clone() {
        TPat::Record { ty, .. } => compile_record(elab, occs, rows, col, ty, default, result_ty),
        TPat::Con { data, tyargs, .. } => {
            compile_data(elab, occs, rows, col, data, tyargs, default, result_ty)
        }
        TPat::Exn { .. } => compile_exn(elab, occs, rows, col, default, result_ty),
        TPat::Int(_) => compile_int(elab, occs, rows, col, default, result_ty),
        TPat::Str(_) => compile_str(elab, occs, rows, col, default, result_ty),
        TPat::Wild | TPat::Var(_) | TPat::As(..) => unreachable!(),
    }
}

/// Replaces column `col` in `occs` with `repl` (empty to delete it).
fn splice_occs(occs: &[(Var, LTy)], col: usize, repl: &[(Var, LTy)]) -> Vec<(Var, LTy)> {
    let mut out = Vec::with_capacity(occs.len() - 1 + repl.len());
    out.extend_from_slice(&occs[..col]);
    out.extend_from_slice(repl);
    out.extend_from_slice(&occs[col + 1..]);
    out
}

fn splice_pats(pats: &[TPat], col: usize, repl: Vec<TPat>) -> Vec<TPat> {
    let mut out = Vec::with_capacity(pats.len() - 1 + repl.len());
    out.extend_from_slice(&pats[..col]);
    out.extend(repl);
    out.extend_from_slice(&pats[col + 1..]);
    out
}

/// Strips `As` layers from a sub-pattern, accumulating bindings against
/// occurrence `occ`.
fn strip_as(mut pat: TPat, occ: Var, binds: &mut Vec<(Var, Var)>) -> TPat {
    while let TPat::As(v, inner) = pat {
        binds.push((v, occ));
        pat = *inner;
    }
    pat
}

#[allow(clippy::too_many_arguments)]
fn compile_record(
    elab: &mut Elab,
    occs: &[(Var, LTy)],
    rows: Vec<Row>,
    col: usize,
    _pat_ty: LTy,
    default: &LExp,
    result_ty: &LTy,
) -> Result<LExp> {
    let (occ_var, occ_ty) = occs[col].clone();
    let full = match elab.un.resolve(&occ_ty) {
        LTy::Record(fields) => fields,
        other => {
            return Err(Diagnostic::error_nospan(
                "elaborate",
                format!(
                    "flexible record pattern's type is not resolved to a record (got {}); add a type annotation",
                    other.display(&elab.denv)
                ),
            ))
        }
    };
    // Fresh occurrence per field.
    let field_occs: Vec<(Var, LTy)> = full
        .iter()
        .map(|(l, t)| (elab.vs.fresh_named(l.as_str()), t.clone()))
        .collect();
    let new_occs = splice_occs(occs, col, &field_occs);
    let mut new_rows = Vec::with_capacity(rows.len());
    for mut row in rows {
        let pat = std::mem::replace(&mut row.pats[col], TPat::Wild);
        let pat = strip_as(pat, occ_var, &mut row.binds);
        let sub = match pat {
            TPat::Record { fields, .. } => full
                .iter()
                .map(|(l, _)| {
                    fields
                        .iter()
                        .find(|(fl, _)| fl == l)
                        .map(|(_, p)| p.clone())
                        .unwrap_or(TPat::Wild)
                })
                .collect::<Vec<_>>(),
            TPat::Var(v) => {
                row.binds.push((v, occ_var));
                vec![TPat::Wild; full.len()]
            }
            TPat::Wild => vec![TPat::Wild; full.len()],
            other => {
                return Err(Diagnostic::ice(
                    "matchcomp",
                    format!("non-record pattern {other:?} in record column"),
                ))
            }
        };
        row.pats = splice_pats(&row.pats, col, sub);
        new_rows.push(row);
    }
    let mut out = compile(elab, &new_occs, new_rows, default, result_ty)?;
    // Bind the field occurrences by selection.
    for ((fv, _), (label, _)) in field_occs.iter().zip(&full).rev() {
        out = LExp::Let {
            var: *fv,
            tyvars: vec![],
            rhs: Box::new(LExp::Select {
                label: *label,
                arg: Box::new(LExp::var(occ_var)),
            }),
            body: Box::new(out),
        };
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn compile_data(
    elab: &mut Elab,
    occs: &[(Var, LTy)],
    rows: Vec<Row>,
    col: usize,
    data: DataId,
    tyargs: Vec<LTy>,
    default: &LExp,
    result_ty: &LTy,
) -> Result<LExp> {
    let (occ_var, _) = occs[col];
    let info = elab.denv.get(data).clone();
    // Distinct tags in test order.
    let mut heads: Vec<usize> = Vec::new();
    for row in &rows {
        if let TPat::Con { tag, .. } = &row.pats[col] {
            if !heads.contains(tag) {
                heads.push(*tag);
            }
        }
    }
    let mut arms = Vec::new();
    for &tag in &heads {
        let carried = info.con_arg_ty(tag, &tyargs);
        let binder = carried
            .as_ref()
            .map(|_| elab.vs.fresh_named(&format!("{}_arg", info.cons[tag].name)));
        let repl_occ: Vec<(Var, LTy)> = match (&binder, &carried) {
            (Some(b), Some(t)) => vec![(*b, t.clone())],
            _ => vec![],
        };
        let new_occs = splice_occs(occs, col, &repl_occ);
        let mut spec = Vec::new();
        for row in &rows {
            let mut row = row.clone();
            let pat = std::mem::replace(&mut row.pats[col], TPat::Wild);
            let pat = strip_as(pat, occ_var, &mut row.binds);
            match pat {
                TPat::Con { tag: t, arg, .. } if t == tag => {
                    let sub = match (arg, carried.is_some()) {
                        (Some(p), true) => vec![*p],
                        (None, false) => vec![],
                        _ => {
                            return Err(Diagnostic::ice(
                                "matchcomp",
                                "constructor arity mismatch in pattern matrix",
                            ))
                        }
                    };
                    row.pats = splice_pats(&row.pats, col, sub);
                    spec.push(row);
                }
                TPat::Con { .. } => {}
                TPat::Var(v) => {
                    row.binds.push((v, occ_var));
                    let sub = if carried.is_some() {
                        vec![TPat::Wild]
                    } else {
                        vec![]
                    };
                    row.pats = splice_pats(&row.pats, col, sub);
                    spec.push(row);
                }
                TPat::Wild => {
                    let sub = if carried.is_some() {
                        vec![TPat::Wild]
                    } else {
                        vec![]
                    };
                    row.pats = splice_pats(&row.pats, col, sub);
                    spec.push(row);
                }
                other => {
                    return Err(Diagnostic::ice(
                        "matchcomp",
                        format!("unexpected pattern {other:?} in data column"),
                    ))
                }
            }
        }
        let arm = compile(elab, &new_occs, spec, default, result_ty)?;
        arms.push((tag, binder, arm));
    }
    let all_covered = heads.len() == info.cons.len();
    let sw_default = if all_covered {
        None
    } else {
        let defaults: Vec<Row> = rows
            .iter()
            .filter(|r| r.pats[col].is_irrefutable() || matches!(r.pats[col], TPat::As(..)))
            .cloned()
            .collect();
        Some(compile(elab, occs, defaults, default, result_ty)?)
    };
    Ok(LExp::Switch(Box::new(LSwitch::Data {
        scrut: LExp::var(occ_var),
        data,
        tyargs,
        arms,
        default: sw_default,
        result_ty: result_ty.clone(),
    })))
}

fn compile_exn(
    elab: &mut Elab,
    occs: &[(Var, LTy)],
    rows: Vec<Row>,
    col: usize,
    default: &LExp,
    result_ty: &LTy,
) -> Result<LExp> {
    let (occ_var, _) = occs[col];
    let mut heads: Vec<ExnId> = Vec::new();
    for row in &rows {
        if let TPat::Exn { id, .. } = &row.pats[col] {
            if !heads.contains(id) {
                heads.push(*id);
            }
        }
    }
    let mut arms = Vec::new();
    for &id in &heads {
        let carried = elab.eenv.get(id).arg.clone();
        let binder = carried
            .as_ref()
            .map(|_| elab.vs.fresh_named("exn_arg"));
        let repl_occ: Vec<(Var, LTy)> = match (&binder, &carried) {
            (Some(b), Some(t)) => vec![(*b, t.clone())],
            _ => vec![],
        };
        let new_occs = splice_occs(occs, col, &repl_occ);
        let mut spec = Vec::new();
        for row in &rows {
            let mut row = row.clone();
            let pat = std::mem::replace(&mut row.pats[col], TPat::Wild);
            let pat = strip_as(pat, occ_var, &mut row.binds);
            match pat {
                TPat::Exn { id: i, arg } if i == id => {
                    let sub = match (arg, carried.is_some()) {
                        (Some(p), true) => vec![*p],
                        (None, false) => vec![],
                        _ => {
                            return Err(Diagnostic::ice(
                                "matchcomp",
                                "exception arity mismatch in pattern matrix",
                            ))
                        }
                    };
                    row.pats = splice_pats(&row.pats, col, sub);
                    spec.push(row);
                }
                TPat::Exn { .. } => {}
                TPat::Var(v) => {
                    row.binds.push((v, occ_var));
                    let sub = if carried.is_some() {
                        vec![TPat::Wild]
                    } else {
                        vec![]
                    };
                    row.pats = splice_pats(&row.pats, col, sub);
                    spec.push(row);
                }
                TPat::Wild => {
                    let sub = if carried.is_some() {
                        vec![TPat::Wild]
                    } else {
                        vec![]
                    };
                    row.pats = splice_pats(&row.pats, col, sub);
                    spec.push(row);
                }
                other => {
                    return Err(Diagnostic::ice(
                        "matchcomp",
                        format!("unexpected pattern {other:?} in exn column"),
                    ))
                }
            }
        }
        let arm = compile(elab, &new_occs, spec, default, result_ty)?;
        arms.push((id, binder, arm));
    }
    let defaults: Vec<Row> = rows
        .iter()
        .filter(|r| r.pats[col].is_irrefutable())
        .cloned()
        .collect();
    let sw_default = compile(elab, occs, defaults, default, result_ty)?;
    Ok(LExp::Switch(Box::new(LSwitch::Exn {
        scrut: LExp::var(occ_var),
        arms,
        default: sw_default,
        result_ty: result_ty.clone(),
    })))
}

fn compile_int(
    elab: &mut Elab,
    occs: &[(Var, LTy)],
    rows: Vec<Row>,
    col: usize,
    default: &LExp,
    result_ty: &LTy,
) -> Result<LExp> {
    let (occ_var, _) = occs[col];
    let mut heads: Vec<i64> = Vec::new();
    for row in &rows {
        if let TPat::Int(k) = &row.pats[col] {
            if !heads.contains(k) {
                heads.push(*k);
            }
        }
    }
    let new_occs = splice_occs(occs, col, &[]);
    let mut arms = Vec::new();
    for &k in &heads {
        let mut spec = Vec::new();
        for row in &rows {
            let mut row = row.clone();
            let pat = std::mem::replace(&mut row.pats[col], TPat::Wild);
            let pat = strip_as(pat, occ_var, &mut row.binds);
            match pat {
                TPat::Int(k2) if k2 == k => {
                    row.pats = splice_pats(&row.pats, col, vec![]);
                    spec.push(row);
                }
                TPat::Int(_) => {}
                TPat::Var(v) => {
                    row.binds.push((v, occ_var));
                    row.pats = splice_pats(&row.pats, col, vec![]);
                    spec.push(row);
                }
                TPat::Wild => {
                    row.pats = splice_pats(&row.pats, col, vec![]);
                    spec.push(row);
                }
                other => {
                    return Err(Diagnostic::ice(
                        "matchcomp",
                        format!("unexpected pattern {other:?} in int column"),
                    ))
                }
            }
        }
        arms.push((k, compile(elab, &new_occs, spec, default, result_ty)?));
    }
    let defaults: Vec<Row> = rows
        .iter()
        .filter(|r| r.pats[col].is_irrefutable())
        .cloned()
        .collect();
    let sw_default = compile(elab, occs, defaults, default, result_ty)?;
    Ok(LExp::Switch(Box::new(LSwitch::Int {
        scrut: LExp::var(occ_var),
        arms,
        default: sw_default,
        result_ty: result_ty.clone(),
    })))
}

fn compile_str(
    elab: &mut Elab,
    occs: &[(Var, LTy)],
    rows: Vec<Row>,
    col: usize,
    default: &LExp,
    result_ty: &LTy,
) -> Result<LExp> {
    let (occ_var, _) = occs[col];
    let mut heads: Vec<String> = Vec::new();
    for row in &rows {
        if let TPat::Str(s) = &row.pats[col] {
            if !heads.contains(s) {
                heads.push(s.clone());
            }
        }
    }
    let new_occs = splice_occs(occs, col, &[]);
    let mut arms = Vec::new();
    for k in &heads {
        let mut spec = Vec::new();
        for row in &rows {
            let mut row = row.clone();
            let pat = std::mem::replace(&mut row.pats[col], TPat::Wild);
            let pat = strip_as(pat, occ_var, &mut row.binds);
            match pat {
                TPat::Str(s) if s == *k => {
                    row.pats = splice_pats(&row.pats, col, vec![]);
                    spec.push(row);
                }
                TPat::Str(_) => {}
                TPat::Var(v) => {
                    row.binds.push((v, occ_var));
                    row.pats = splice_pats(&row.pats, col, vec![]);
                    spec.push(row);
                }
                TPat::Wild => {
                    row.pats = splice_pats(&row.pats, col, vec![]);
                    spec.push(row);
                }
                other => {
                    return Err(Diagnostic::ice(
                        "matchcomp",
                        format!("unexpected pattern {other:?} in string column"),
                    ))
                }
            }
        }
        arms.push((
            k.clone(),
            compile(elab, &new_occs, spec, default, result_ty)?,
        ));
    }
    let defaults: Vec<Row> = rows
        .iter()
        .filter(|r| r.pats[col].is_irrefutable())
        .cloned()
        .collect();
    let sw_default = compile(elab, occs, defaults, default, result_ty)?;
    Ok(LExp::Switch(Box::new(LSwitch::Str {
        scrut: LExp::var(occ_var),
        arms,
        default: sw_default,
        result_ty: result_ty.clone(),
    })))
}
