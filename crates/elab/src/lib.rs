//! The front end's elaborator: Hindley–Milner type inference, the
//! initial basis, pattern-match compilation, and translation of the
//! core-SML AST into the explicitly-typed Lambda IR (the paper's §3.1,
//! replacing its use of the ML Kit).
//!
//! Entry point: [`elaborate`] (typically over `[prelude, user]`
//! programs). The output has been fully zonked — no unification
//! variables or overloaded-operator placeholders remain — and passes
//! the Lambda typechecker.

pub mod basis;
pub mod elab;
pub mod matchcomp;
pub mod scope;
pub mod unify;
pub mod unit;
pub mod zonk;

pub use elab::{elaborate, Elab, Elaborated};
pub use unit::{elaborate_user, elaborate_user_fragment, prelude_unit, PreludeUnit, UserUnit};

/// The SML prelude prefixed onto every compilation unit (the paper's
/// "inline prelude", §5.2): list/string/array library, options, safe
/// array access with explicit bounds checks, and the 2-d arrays of §4.
pub const PRELUDE: &str = include_str!("prelude.sml");

/// Parses and elaborates the prelude followed by `src`.
pub fn elaborate_source(src: &str) -> til_common::Result<Elaborated> {
    let prelude = til_syntax::parse(PRELUDE)?;
    let user = til_syntax::parse(src)?;
    elaborate(&[&prelude, &user])
}
