//! The initial basis: builtin values and type constructors.
//!
//! Builtins are *not* ordinary bindings — each occurrence elaborates
//! directly to a primitive application (or an eta-expansion of one).
//! The overloaded operators (`+`, `<`, `~`, `abs`) elaborate to
//! placeholder primitives constrained by an overload class and are
//! resolved during zonking. Safe array operations and the list/string
//! library are *not* here: they are written in SML in the prelude
//! (see `til::PRELUDE`), which is what makes the paper's bounds-check
//! elimination experiments meaningful.

use til_lambda::prim::{ArithOp, CmpOp};
use til_lambda::Prim;

/// A builtin value known to the elaborator.
#[derive(Clone, Copy, Debug)]
pub enum Builtin {
    /// Overloaded `+`, `-`, `*` over int/real.
    Arith(ArithOp),
    /// Overloaded `<`, `<=`, `>`, `>=` over int/real/char/string.
    Cmp(CmpOp),
    /// Overloaded unary `~`.
    Neg,
    /// Overloaded `abs`.
    Abs,
    /// Polymorphic `=`.
    Eq,
    /// Polymorphic `<>`.
    Ne,
    /// A direct primitive; argument arity and types come from
    /// [`Prim::sig`].
    Prim(Prim),
}

/// The initial value basis: `(name, builtin)` pairs.
///
/// Dotted names (`Int.toString`) are ordinary identifiers in our
/// subset; the lexer folds them into single symbols.
pub fn initial_basis() -> Vec<(&'static str, Builtin)> {
    use Builtin::{Abs, Arith, Cmp, Eq, Ne, Neg};
    use Builtin::Prim as P;
    vec![
        ("+", Arith(ArithOp::Add)),
        ("-", Arith(ArithOp::Sub)),
        ("*", Arith(ArithOp::Mul)),
        ("/", P(Prim::RDiv)),
        ("div", P(Prim::IDiv)),
        ("mod", P(Prim::IMod)),
        ("~", Neg),
        ("abs", Abs),
        ("<", Cmp(CmpOp::Lt)),
        ("<=", Cmp(CmpOp::Le)),
        (">", Cmp(CmpOp::Gt)),
        (">=", Cmp(CmpOp::Ge)),
        ("=", Eq),
        ("<>", Ne),
        // Bitwise/word operations (our `word` is `int`).
        ("Word.andb", P(Prim::AndB)),
        ("Word.orb", P(Prim::OrB)),
        ("Word.xorb", P(Prim::XorB)),
        ("Word.notb", P(Prim::NotB)),
        ("Word.lshift", P(Prim::Lsl)),
        ("Word.rshift", P(Prim::Lsr)),
        ("andb", P(Prim::AndB)),
        ("orb", P(Prim::OrB)),
        ("xorb", P(Prim::XorB)),
        ("notb", P(Prim::NotB)),
        ("lsl", P(Prim::Lsl)),
        ("lsr", P(Prim::Lsr)),
        ("asr", P(Prim::Asr)),
        // Characters and strings.
        ("ord", P(Prim::COrd)),
        ("chr", P(Prim::CChr)),
        ("Char.ord", P(Prim::COrd)),
        ("Char.chr", P(Prim::CChr)),
        ("size", P(Prim::StrSize)),
        ("String.size", P(Prim::StrSize)),
        ("String.sub", P(Prim::StrSub)),
        ("^", P(Prim::StrConcat)),
        ("str", P(Prim::StrFromChar)),
        ("String.str", P(Prim::StrFromChar)),
        ("String.compare_raw", P(Prim::StrCmp)),
        ("Int.toString", P(Prim::IntToString)),
        ("Real.toString", P(Prim::RealToString)),
        // Real conversions and math.
        ("real", P(Prim::RealFromInt)),
        ("Real.fromInt", P(Prim::RealFromInt)),
        ("floor", P(Prim::Floor)),
        ("trunc", P(Prim::Trunc)),
        ("Math.sqrt", P(Prim::Sqrt)),
        ("sqrt", P(Prim::Sqrt)),
        ("Math.sin", P(Prim::Sin)),
        ("Math.cos", P(Prim::Cos)),
        ("Math.atan", P(Prim::Atan)),
        ("Math.exp", P(Prim::ExpR)),
        ("Math.ln", P(Prim::Ln)),
        // Output.
        ("print", P(Prim::Print)),
        // Arrays: only the unsafe/raw operations are primitive; the
        // prelude defines checked `Array.sub` / `Array.update` in SML.
        ("Array.array", P(Prim::ArrayNew)),
        ("Array.length", P(Prim::ArrayLength)),
        ("unsafe_sub", P(Prim::ArraySubU)),
        ("unsafe_update", P(Prim::ArrayUpdateU)),
        // References.
        ("ref", P(Prim::RefNew)),
        ("!", P(Prim::RefGet)),
        (":=", P(Prim::RefSet)),
    ]
}

/// Builtin type constructors: `(name, definition)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrimTyCon {
    /// `int` (also `word`).
    Int,
    /// `real`.
    Real,
    /// `char`.
    Char,
    /// `string`.
    Str,
    /// `unit`.
    Unit,
    /// `exn`.
    Exn,
    /// `'a array`.
    Array,
    /// `'a ref`.
    Ref,
}

/// The initial type basis.
pub fn initial_ty_basis() -> Vec<(&'static str, PrimTyCon)> {
    vec![
        ("int", PrimTyCon::Int),
        ("word", PrimTyCon::Int),
        ("real", PrimTyCon::Real),
        ("char", PrimTyCon::Char),
        ("string", PrimTyCon::Str),
        ("unit", PrimTyCon::Unit),
        ("exn", PrimTyCon::Exn),
        ("array", PrimTyCon::Array),
        ("ref", PrimTyCon::Ref),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_contains_core_operators() {
        let names: Vec<&str> = initial_basis().iter().map(|(n, _)| *n).collect();
        for n in ["+", "=", "::".trim_matches(':'), "print", "ref", ":="] {
            if n.is_empty() {
                continue;
            }
            assert!(
                names.contains(&n) || n == "" || n == ":",
                "missing builtin {n}"
            );
        }
        assert!(names.contains(&"Array.array"));
        assert!(!names.contains(&"Array.sub"), "Array.sub must live in the prelude");
    }
}
