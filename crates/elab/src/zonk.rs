//! Zonking: resolves every unification variable embedded in the
//! elaborated Lambda tree and rewrites overloaded-operator placeholders
//! into concrete primitives.

use crate::unify::Unifier;
use til_common::{Diagnostic, Result};
use til_lambda::prim::{ArithOp, CmpOp};
use til_lambda::ty::LTy;
use til_lambda::{LExp, LSwitch, Prim};

/// Zonks an expression in place.
pub fn zonk_exp(e: &mut LExp, un: &mut Unifier) -> Result<()> {
    rewrite(e, un)?;
    let mut first_err: Option<Diagnostic> = None;
    e.map_types(&mut |t| match un.zonk(t) {
        Ok(t2) => t2,
        Err(d) => {
            if first_err.is_none() {
                first_err = Some(d);
            }
            t.clone()
        }
    });
    match first_err {
        None => Ok(()),
        Some(d) => Err(d),
    }
}

fn rewrite(e: &mut LExp, un: &mut Unifier) -> Result<()> {
    // Children first.
    match e {
        LExp::Var { .. }
        | LExp::Int(_)
        | LExp::Real(_)
        | LExp::Char(_)
        | LExp::Str(_) => {}
        LExp::Fn { body, .. } => rewrite(body, un)?,
        LExp::App(a, b) => {
            rewrite(a, un)?;
            rewrite(b, un)?;
        }
        LExp::Fix { funs, body, .. } => {
            for f in funs {
                rewrite(&mut f.body, un)?;
            }
            rewrite(body, un)?;
        }
        LExp::Let { rhs, body, .. } => {
            rewrite(rhs, un)?;
            rewrite(body, un)?;
        }
        LExp::Record(fields) => {
            for (_, fe) in fields {
                rewrite(fe, un)?;
            }
        }
        LExp::Select { arg, .. } => rewrite(arg, un)?,
        LExp::Con { arg, .. } | LExp::ExnCon { arg, .. } => {
            if let Some(a) = arg {
                rewrite(a, un)?;
            }
        }
        LExp::Switch(sw) => match &mut **sw {
            LSwitch::Data {
                scrut,
                arms,
                default,
                ..
            } => {
                rewrite(scrut, un)?;
                for (_, _, a) in arms {
                    rewrite(a, un)?;
                }
                if let Some(d) = default {
                    rewrite(d, un)?;
                }
            }
            LSwitch::Int {
                scrut,
                arms,
                default,
                ..
            } => {
                rewrite(scrut, un)?;
                for (_, a) in arms {
                    rewrite(a, un)?;
                }
                rewrite(default, un)?;
            }
            LSwitch::Str {
                scrut,
                arms,
                default,
                ..
            } => {
                rewrite(scrut, un)?;
                for (_, a) in arms {
                    rewrite(a, un)?;
                }
                rewrite(default, un)?;
            }
            LSwitch::Exn {
                scrut,
                arms,
                default,
                ..
            } => {
                rewrite(scrut, un)?;
                for (_, _, a) in arms {
                    rewrite(a, un)?;
                }
                rewrite(default, un)?;
            }
        },
        LExp::Raise { exn, .. } => rewrite(exn, un)?,
        LExp::Handle { body, handler, .. } => {
            rewrite(body, un)?;
            rewrite(handler, un)?;
        }
        LExp::Prim { args, .. } => {
            for a in args {
                rewrite(a, un)?;
            }
        }
    }
    // Then resolve an overload at this node.
    if let LExp::Prim {
        prim,
        tyargs,
        args,
    } = e
    {
        let replacement = match prim {
            Prim::OverloadArith(op) => {
                let at = un.zonk(&tyargs[0])?;
                let p = match (&at, op) {
                    (LTy::Int, ArithOp::Add) => Prim::IAdd,
                    (LTy::Int, ArithOp::Sub) => Prim::ISub,
                    (LTy::Int, ArithOp::Mul) => Prim::IMul,
                    (LTy::Real, ArithOp::Add) => Prim::RAdd,
                    (LTy::Real, ArithOp::Sub) => Prim::RSub,
                    (LTy::Real, ArithOp::Mul) => Prim::RMul,
                    _ => {
                        return Err(Diagnostic::ice(
                            "zonk",
                            "arithmetic overload resolved to non-numeric type".to_string(),
                        ))
                    }
                };
                Some(LExp::Prim {
                    prim: p,
                    tyargs: vec![],
                    args: std::mem::take(args),
                })
            }
            Prim::OverloadNeg | Prim::OverloadAbs => {
                let at = un.zonk(&tyargs[0])?;
                let neg = matches!(prim, Prim::OverloadNeg);
                let p = match (&at, neg) {
                    (LTy::Int, true) => Prim::INeg,
                    (LTy::Int, false) => Prim::IAbs,
                    (LTy::Real, true) => Prim::RNeg,
                    (LTy::Real, false) => Prim::RAbs,
                    _ => {
                        return Err(Diagnostic::ice(
                            "zonk",
                            "unary overload resolved to non-numeric type",
                        ))
                    }
                };
                Some(LExp::Prim {
                    prim: p,
                    tyargs: vec![],
                    args: std::mem::take(args),
                })
            }
            Prim::OverloadCmp(op) => {
                let at = un.zonk(&tyargs[0])?;
                match &at {
                    LTy::Int | LTy::Real | LTy::Char => {
                        let p = match (&at, op) {
                            (LTy::Int, CmpOp::Lt) => Prim::ILt,
                            (LTy::Int, CmpOp::Le) => Prim::ILe,
                            (LTy::Int, CmpOp::Gt) => Prim::IGt,
                            (LTy::Int, CmpOp::Ge) => Prim::IGe,
                            (LTy::Real, CmpOp::Lt) => Prim::RLt,
                            (LTy::Real, CmpOp::Le) => Prim::RLe,
                            (LTy::Real, CmpOp::Gt) => Prim::RGt,
                            (LTy::Real, CmpOp::Ge) => Prim::RGe,
                            (LTy::Char, CmpOp::Lt) => Prim::CLt,
                            (LTy::Char, CmpOp::Le) => Prim::CLe,
                            (LTy::Char, CmpOp::Gt) => Prim::CGt,
                            (LTy::Char, CmpOp::Ge) => Prim::CGe,
                            _ => unreachable!(),
                        };
                        Some(LExp::Prim {
                            prim: p,
                            tyargs: vec![],
                            args: std::mem::take(args),
                        })
                    }
                    LTy::Str => {
                        // s1 < s2  ~~>  strcmp(s1, s2) < 0
                        let p = match op {
                            CmpOp::Lt => Prim::ILt,
                            CmpOp::Le => Prim::ILe,
                            CmpOp::Gt => Prim::IGt,
                            CmpOp::Ge => Prim::IGe,
                        };
                        let cmp = LExp::Prim {
                            prim: Prim::StrCmp,
                            tyargs: vec![],
                            args: std::mem::take(args),
                        };
                        Some(LExp::Prim {
                            prim: p,
                            tyargs: vec![],
                            args: vec![cmp, LExp::Int(0)],
                        })
                    }
                    other => {
                        return Err(Diagnostic::ice(
                            "zonk",
                            format!(
                                "comparison overload resolved to unsupported type {other:?}"
                            ),
                        ))
                    }
                }
            }
            _ => None,
        };
        if let Some(r) = replacement {
            *e = r;
        }
    }
    Ok(())
}
