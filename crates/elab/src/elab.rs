//! The elaborator: Hindley–Milner type inference (Algorithm W with
//! levels and the value restriction) plus translation of the AST into
//! the explicitly-typed Lambda IR.
//!
//! Top-level declarations become nested `Let`/`Fix` binders around a
//! final `unit` body, matching the paper's whole-program compilation of
//! closed modules. Pattern matches are compiled to decision trees by
//! [`crate::matchcomp`]; overloaded operators and leftover unification
//! variables are resolved by [`crate::zonk`].

use crate::basis::{initial_basis, initial_ty_basis, Builtin, PrimTyCon};
use crate::matchcomp::{compile_match, Row, TPat};
use crate::scope::ScopeMap;
use crate::unify::{OvClass, Unifier};
use std::collections::HashSet;
use til_common::{Diagnostic, Result, Span, Symbol, Var, VarSupply};
use til_lambda::ty::{label_cmp, LTy, TyVar, TyVarSupply};
use til_lambda::{
    ConInfo, DataEnv, DataId, DataInfo, ExnEnv, ExnId, ExnInfo, LExp, LFun, LProgram, LSwitch,
    Prim,
};
use til_syntax::ast;

const PHASE: &str = "elaborate";

/// The result of elaboration: the typed program plus the variable
/// supplies later phases must continue from.
pub struct Elaborated {
    /// The typed Lambda program.
    pub program: LProgram,
    /// Term-variable supply.
    pub vars: VarSupply,
    /// Type-variable supply.
    pub tyvars: TyVarSupply,
}

/// Elaborates a sequence of programs (typically `[prelude, user]`)
/// sharing one top-level scope.
pub fn elaborate(programs: &[&ast::Program]) -> Result<Elaborated> {
    let mut e = Elab::new();
    let decs: Vec<&ast::Dec> = programs.iter().flat_map(|p| p.decs.iter()).collect();
    let (mut body, body_ty) = e.elab_decs(&decs, &mut |_me| Ok((LExp::unit(), LTy::unit())))?;
    let body_ty = crate::zonk::zonk_exp(&mut body, &mut e.un)
        .and_then(|()| e.un.zonk(&body_ty))?;
    Ok(Elaborated {
        program: LProgram {
            data_env: e.denv,
            exn_env: e.eenv,
            body,
            body_ty,
        },
        vars: e.vs,
        tyvars: e.tvs,
    })
}

/// A value-environment binding.
#[derive(Clone, Debug)]
pub enum Binding {
    /// An ordinary (possibly polymorphic) variable.
    Val {
        /// Its Lambda variable.
        var: Var,
        /// Generalized type variables.
        tyvars: Vec<TyVar>,
        /// Scheme body.
        ty: LTy,
    },
    /// A datatype constructor.
    Con {
        /// The datatype.
        data: DataId,
        /// The constructor's tag.
        tag: usize,
    },
    /// An exception constructor.
    Exn(ExnId),
    /// A builtin primitive.
    Builtin(Builtin),
}

/// A type-environment entry.
#[derive(Clone, Debug)]
enum TyDef {
    Prim(PrimTyCon),
    Data(DataId),
    Abbrev { params: Vec<TyVar>, body: LTy },
}

/// Elaboration state.
///
/// `Clone` snapshots the whole inference state — the prelude cache
/// clones the post-prelude elaborator once per `compile()` so user
/// declarations extend a shared, already-typed prelude scope.
#[derive(Clone)]
pub struct Elab {
    /// Term-variable supply.
    pub vs: VarSupply,
    /// Type-variable supply.
    pub tvs: TyVarSupply,
    /// Datatypes.
    pub denv: DataEnv,
    /// Exceptions.
    pub eenv: ExnEnv,
    pub(crate) un: Unifier,
    venv: ScopeMap<Binding>,
    tenv: ScopeMap<TyDef>,
    tyscope: ScopeMap<LTy>,
    level: u32,
}

impl Elab {
    /// A fresh elaborator with the initial basis in scope.
    pub fn new() -> Elab {
        let mut tvs = TyVarSupply::new();
        let denv = DataEnv::with_builtins(tvs.fresh());
        let mut e = Elab {
            vs: VarSupply::new(),
            tvs,
            denv,
            eenv: ExnEnv::with_builtins(),
            un: Unifier::new(),
            venv: ScopeMap::new(),
            tenv: ScopeMap::new(),
            tyscope: ScopeMap::new(),
            level: 0,
        };
        for (name, b) in initial_basis() {
            e.venv.bind(Symbol::intern(name), Binding::Builtin(b));
        }
        for (name, t) in initial_ty_basis() {
            e.tenv.bind(Symbol::intern(name), TyDef::Prim(t));
        }
        // bool / list datatypes and their constructors.
        e.tenv.bind(Symbol::intern("bool"), TyDef::Data(DataId::BOOL));
        e.tenv.bind(Symbol::intern("list"), TyDef::Data(DataId::LIST));
        for (data, names) in [
            (DataId::BOOL, vec!["false", "true"]),
            (DataId::LIST, vec!["nil", "::"]),
        ] {
            for (tag, n) in names.into_iter().enumerate() {
                e.venv
                    .bind(Symbol::intern(n), Binding::Con { data, tag });
            }
        }
        // Builtin exception constructors.
        for id in 0..e.eenv.len() as u32 {
            let info = e.eenv.get(ExnId(id)).clone();
            e.venv.bind(info.name, Binding::Exn(ExnId(id)));
        }
        e
    }

    fn err(&self, span: Span, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::error(PHASE, span, msg)
    }

    fn fresh(&mut self) -> LTy {
        self.un.fresh(self.level)
    }

    /// Resolves a symbol in the value environment.
    pub fn lookup(&self, sym: Symbol) -> Option<&Binding> {
        self.venv.get(sym)
    }

    // ------------------------------------------------------------- types

    fn elab_ty(&mut self, ty: &ast::Ty, span: Span, implicit_ok: bool) -> Result<LTy> {
        match ty {
            ast::Ty::Var(sym) => match self.tyscope.get(*sym) {
                Some(t) => Ok(t.clone()),
                None if implicit_ok => {
                    let t = self.fresh();
                    self.tyscope.bind(*sym, t.clone());
                    Ok(t)
                }
                None => Err(self.err(span, format!("unbound type variable '{sym}"))),
            },
            ast::Ty::Arrow(a, b) => Ok(LTy::Arrow(
                Box::new(self.elab_ty(a, span, implicit_ok)?),
                Box::new(self.elab_ty(b, span, implicit_ok)?),
            )),
            ast::Ty::Record(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for (l, t) in fields {
                    out.push((*l, self.elab_ty(t, span, implicit_ok)?));
                }
                out.sort_by(|(a, _), (b, _)| label_cmp(a, b));
                Ok(LTy::Record(out))
            }
            ast::Ty::Con(args, name) => {
                let def = self
                    .tenv
                    .get(*name)
                    .cloned()
                    .ok_or_else(|| self.err(span, format!("unbound type constructor {name}")))?;
                let args: Vec<LTy> = args
                    .iter()
                    .map(|t| self.elab_ty(t, span, implicit_ok))
                    .collect::<Result<_>>()?;
                let arity_err = |me: &Elab, want: usize| {
                    me.err(
                        span,
                        format!(
                            "type constructor {name} expects {want} arguments, got {}",
                            args.len()
                        ),
                    )
                };
                match def {
                    TyDef::Prim(p) => match p {
                        PrimTyCon::Int => Ok(LTy::Int),
                        PrimTyCon::Real => Ok(LTy::Real),
                        PrimTyCon::Char => Ok(LTy::Char),
                        PrimTyCon::Str => Ok(LTy::Str),
                        PrimTyCon::Unit => Ok(LTy::unit()),
                        PrimTyCon::Exn => Ok(LTy::Exn),
                        PrimTyCon::Array => {
                            if args.len() != 1 {
                                return Err(arity_err(self, 1));
                            }
                            Ok(LTy::Array(Box::new(args[0].clone())))
                        }
                        PrimTyCon::Ref => {
                            if args.len() != 1 {
                                return Err(arity_err(self, 1));
                            }
                            Ok(LTy::Ref(Box::new(args[0].clone())))
                        }
                    },
                    TyDef::Data(id) => {
                        let want = self.denv.get(id).params.len();
                        if args.len() != want {
                            return Err(arity_err(self, want));
                        }
                        Ok(LTy::Data(id, args))
                    }
                    TyDef::Abbrev { params, body } => {
                        if args.len() != params.len() {
                            return Err(arity_err(self, params.len()));
                        }
                        let map = params.iter().copied().zip(args).collect();
                        Ok(body.subst(&map))
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------- decs

    /// Elaborates declarations, calling `k` for the continuation.
    pub fn elab_decs(
        &mut self,
        decs: &[&ast::Dec],
        k: &mut dyn FnMut(&mut Elab) -> Result<(LExp, LTy)>,
    ) -> Result<(LExp, LTy)> {
        match decs.split_first() {
            None => k(self),
            Some((d, rest)) => {
                let rest: Vec<&ast::Dec> = rest.to_vec();
                self.elab_dec(d, &mut |me| me.elab_decs(&rest, k))
            }
        }
    }

    fn elab_dec(
        &mut self,
        dec: &ast::Dec,
        k: &mut dyn FnMut(&mut Elab) -> Result<(LExp, LTy)>,
    ) -> Result<(LExp, LTy)> {
        match dec {
            ast::Dec::Val { pat, exp, span } => self.elab_val(pat, exp, *span, k),
            ast::Dec::Fun { binds, span } => self.elab_fun(binds, *span, k),
            ast::Dec::Datatype { binds, span } => self.elab_datatype(binds, *span, k),
            ast::Dec::TypeAbbrev {
                tyvars,
                name,
                ty,
                span,
            } => {
                let tymark = self.tyscope.mark();
                let params: Vec<TyVar> = tyvars.iter().map(|_| self.tvs.fresh()).collect();
                for (sym, tv) in tyvars.iter().zip(&params) {
                    self.tyscope.bind(*sym, LTy::Var(*tv));
                }
                let body = self.elab_ty(ty, *span, false)?;
                self.tyscope.pop_to(tymark);
                let mark = self.tenv.mark();
                self.tenv.bind(*name, TyDef::Abbrev { params, body });
                let out = k(self);
                let _ = mark; // abbreviation stays in scope for the continuation
                out
            }
            ast::Dec::Exception { name, arg, span } => {
                let arg_ty = match arg {
                    Some(t) => Some(self.elab_ty(t, *span, false)?),
                    None => None,
                };
                let id = self.eenv.define(ExnInfo {
                    name: *name,
                    arg: arg_ty,
                });
                self.venv.bind(*name, Binding::Exn(id));
                k(self)
            }
        }
    }

    fn simple_val_target(pat: &ast::Pat) -> Option<(Option<Symbol>, Vec<ast::Ty>)> {
        // A `val` pattern that is just a variable/wildcard (possibly
        // type-constrained) supports polymorphic generalization.
        match pat {
            ast::Pat::Var(s, _) => Some((Some(*s), vec![])),
            ast::Pat::Wild(_) => Some((None, vec![])),
            ast::Pat::Constraint(p, ty, _) => {
                let (s, mut tys) = Self::simple_val_target(p)?;
                tys.push(ty.clone());
                Some((s, tys))
            }
            _ => None,
        }
    }

    fn elab_val(
        &mut self,
        pat: &ast::Pat,
        exp: &ast::Exp,
        span: Span,
        k: &mut dyn FnMut(&mut Elab) -> Result<(LExp, LTy)>,
    ) -> Result<(LExp, LTy)> {
        if let Some((target, constraints)) = Self::simple_val_target(pat) {
            // Polymorphic simple binding.
            let tymark = self.tyscope.mark();
            self.level += 1;
            let (rhs, mut rty) = self.elab_exp(exp)?;
            for c in &constraints {
                let want = self.elab_ty(c, span, true)?;
                self.un.unify(&rty, &want, span, &self.denv.clone())?;
                rty = want;
            }
            self.level -= 1;
            self.tyscope.pop_to(tymark);
            let tyvars = if rhs.is_value() {
                self.un.generalize(self.level, &rty, &mut self.tvs)
            } else {
                vec![]
            };
            let rty = self.un.resolve(&rty);
            let var = match target {
                Some(sym) => {
                    let v = self.vs.fresh_named(sym.as_str());
                    self.venv.bind(
                        sym,
                        Binding::Val {
                            var: v,
                            tyvars: tyvars.clone(),
                            ty: rty.clone(),
                        },
                    );
                    v
                }
                None => self.vs.fresh(),
            };
            let (body, bty) = k(self)?;
            Ok((
                LExp::Let {
                    var,
                    tyvars,
                    rhs: Box::new(rhs),
                    body: Box::new(body),
                },
                bty,
            ))
        } else {
            // Destructuring binding: monomorphic, compiled as a match
            // whose single default raises Bind.
            let tymark = self.tyscope.mark();
            let (rhs, rty) = self.elab_exp(exp)?;
            let scrut = self.vs.fresh_named("val");
            let mut binds = Vec::new();
            let tpat = self.elab_pat(pat, &rty, &mut binds)?;
            self.tyscope.pop_to(tymark);
            for (sym, var, ty) in &binds {
                self.venv.bind(
                    *sym,
                    Binding::Val {
                        var: *var,
                        tyvars: vec![],
                        ty: ty.clone(),
                    },
                );
            }
            let (body, bty) = k(self)?;
            let default = LExp::Raise {
                exn: Box::new(LExp::ExnCon {
                    exn: ExnId::BIND,
                    arg: None,
                }),
                ty: bty.clone(),
            };
            let rows = vec![Row::new(vec![tpat], body)];
            let compiled = compile_match(self, vec![(scrut, rty.clone())], rows, default, &bty)?;
            Ok((
                LExp::Let {
                    var: scrut,
                    tyvars: vec![],
                    rhs: Box::new(rhs),
                    body: Box::new(compiled),
                },
                bty,
            ))
        }
    }

    fn elab_fun(
        &mut self,
        binds: &[ast::FunBind],
        span: Span,
        k: &mut dyn FnMut(&mut Elab) -> Result<(LExp, LTy)>,
    ) -> Result<(LExp, LTy)> {
        self.level += 1;
        let tymark = self.tyscope.mark();
        // Bind all names monomorphically for the bodies.
        let mut fvars = Vec::new();
        let mut ftys = Vec::new();
        let vmark = self.venv.mark();
        for b in binds {
            let fv = self.vs.fresh_named(b.name.as_str());
            let ft = self.fresh();
            self.venv.bind(
                b.name,
                Binding::Val {
                    var: fv,
                    tyvars: vec![],
                    ty: ft.clone(),
                },
            );
            fvars.push(fv);
            ftys.push(ft);
        }
        let mut funs = Vec::new();
        for (bi, b) in binds.iter().enumerate() {
            let arity = b.clauses[0].pats.len();
            if b.clauses.iter().any(|c| c.pats.len() != arity) {
                return Err(self.err(b.span, "clauses differ in number of arguments"));
            }
            let arg_tys: Vec<LTy> = (0..arity).map(|_| self.fresh()).collect();
            let res_ty = self.fresh();
            // f : t1 -> t2 -> ... -> r
            let mut fty = res_ty.clone();
            for t in arg_tys.iter().rev() {
                fty = LTy::Arrow(Box::new(t.clone()), Box::new(fty));
            }
            let denv = self.denv.clone();
            self.un.unify(&ftys[bi], &fty, b.span, &denv)?;
            let mut rows = Vec::new();
            for c in &b.clauses {
                let vmark2 = self.venv.mark();
                let mut bindings = Vec::new();
                let mut pats = Vec::new();
                for (p, t) in c.pats.iter().zip(&arg_tys) {
                    pats.push(self.elab_pat(p, t, &mut bindings)?);
                }
                for (sym, var, ty) in &bindings {
                    self.venv.bind(
                        *sym,
                        Binding::Val {
                            var: *var,
                            tyvars: vec![],
                            ty: ty.clone(),
                        },
                    );
                }
                if let Some(rt) = &c.result_ty {
                    let want = self.elab_ty(rt, b.span, true)?;
                    let denv = self.denv.clone();
                    self.un.unify(&res_ty, &want, b.span, &denv)?;
                }
                let (body, bty) = self.elab_exp(&c.body)?;
                let denv = self.denv.clone();
                self.un.unify(&bty, &res_ty, c.body.span(), &denv)?;
                self.venv.pop_to(vmark2);
                rows.push(Row::new(pats, body));
            }
            // Build the curried function body.
            let params: Vec<Var> = (0..arity)
                .map(|i| self.vs.fresh_named(&format!("a{i}")))
                .collect();
            let occs: Vec<(Var, LTy)> = params
                .iter()
                .copied()
                .zip(arg_tys.iter().cloned())
                .collect();
            let default = LExp::Raise {
                exn: Box::new(LExp::ExnCon {
                    exn: ExnId::MATCH,
                    arg: None,
                }),
                ty: res_ty.clone(),
            };
            let mut body = compile_match(self, occs, rows, default, &res_ty)?;
            // Inner params become nested lambdas.
            let mut ret = res_ty.clone();
            for i in (1..arity).rev() {
                body = LExp::Fn {
                    param: params[i],
                    param_ty: arg_tys[i].clone(),
                    body: Box::new(body),
                };
                ret = LTy::Arrow(Box::new(arg_tys[i].clone()), Box::new(ret));
            }
            funs.push(LFun {
                var: fvars[bi],
                param: params[0],
                param_ty: arg_tys[0].clone(),
                ret_ty: ret,
                body,
            });
        }
        self.level -= 1;
        self.tyscope.pop_to(tymark);
        self.venv.pop_to(vmark);
        // Generalize the whole nest with a shared tyvar list.
        let mut tyvars = Vec::new();
        for ft in &ftys {
            tyvars.extend(self.un.generalize(self.level, ft, &mut self.tvs));
        }
        // Rebind polymorphically, resolve recorded types.
        for (b, (fv, ft)) in binds.iter().zip(fvars.iter().zip(&ftys)) {
            let ty = self.un.resolve(ft);
            self.venv.bind(
                b.name,
                Binding::Val {
                    var: *fv,
                    tyvars: tyvars.clone(),
                    ty,
                },
            );
        }
        // Resolve parameter/result types stored on the funs.
        for f in &mut funs {
            f.param_ty = self.un.resolve(&f.param_ty);
            f.ret_ty = self.un.resolve(&f.ret_ty);
        }
        let _ = span;
        let (body, bty) = k(self)?;
        Ok((
            LExp::Fix {
                tyvars,
                funs,
                body: Box::new(body),
            },
            bty,
        ))
    }

    fn elab_datatype(
        &mut self,
        binds: &[ast::DatBind],
        span: Span,
        k: &mut dyn FnMut(&mut Elab) -> Result<(LExp, LTy)>,
    ) -> Result<(LExp, LTy)> {
        // Reserve ids (with arities) first so the datatypes can be
        // mutually recursive.
        let ids: Vec<DataId> = binds.iter().map(|b| self.denv.reserve(b.name)).collect();
        let mut all_params: Vec<Vec<TyVar>> = Vec::new();
        for (b, id) in binds.iter().zip(&ids) {
            self.tenv.bind(b.name, TyDef::Data(*id));
            let params: Vec<TyVar> = b.tyvars.iter().map(|_| self.tvs.fresh()).collect();
            self.denv.set(
                *id,
                DataInfo {
                    name: b.name,
                    params: params.clone(),
                    cons: vec![],
                },
            );
            all_params.push(params);
        }
        for ((b, id), params) in binds.iter().zip(&ids).zip(all_params) {
            let tymark = self.tyscope.mark();
            for (sym, tv) in b.tyvars.iter().zip(&params) {
                self.tyscope.bind(*sym, LTy::Var(*tv));
            }
            let mut cons = Vec::new();
            for (cname, arg) in &b.cons {
                let arg_ty = match arg {
                    Some(t) => Some(self.elab_ty(t, span, false)?),
                    None => None,
                };
                cons.push(ConInfo {
                    name: *cname,
                    arg: arg_ty,
                });
            }
            self.tyscope.pop_to(tymark);
            self.denv.set(
                *id,
                DataInfo {
                    name: b.name,
                    params,
                    cons,
                },
            );
            for (tag, (cname, _)) in b.cons.iter().enumerate() {
                self.venv.bind(*cname, Binding::Con { data: *id, tag });
            }
        }
        k(self)
    }

    // ------------------------------------------------------------- exps

    /// Elaborates an expression, returning the Lambda term and its type
    /// (which may contain unification variables until zonking).
    pub fn elab_exp(&mut self, exp: &ast::Exp) -> Result<(LExp, LTy)> {
        match exp {
            ast::Exp::SCon(sc, _) => Ok(match sc {
                ast::SCon::Int(n) => (LExp::Int(*n), LTy::Int),
                ast::SCon::Word(w) => (LExp::Int(*w as i64), LTy::Int),
                ast::SCon::Real(r) => (LExp::Real(*r), LTy::Real),
                ast::SCon::Str(s) => (LExp::Str(s.clone()), LTy::Str),
                ast::SCon::Char(c) => (LExp::Char(*c), LTy::Char),
            }),
            ast::Exp::Var(sym, span) => self.elab_var(*sym, *span),
            ast::Exp::Selector(lab, span) => {
                let field_ty = self.fresh();
                let rec_ty =
                    self.un
                        .fresh_flex_record(self.level, vec![(*lab, field_ty.clone())], *span);
                let p = self.vs.fresh_named("r");
                Ok((
                    LExp::Fn {
                        param: p,
                        param_ty: rec_ty.clone(),
                        body: Box::new(LExp::Select {
                            label: *lab,
                            arg: Box::new(LExp::var(p)),
                        }),
                    },
                    LTy::Arrow(Box::new(rec_ty), Box::new(field_ty)),
                ))
            }
            ast::Exp::App(f, a, span) => self.elab_app(f, a, *span),
            ast::Exp::Fn(rules, span) => {
                let param = self.vs.fresh_named("p");
                let pty = self.fresh();
                let rty = self.fresh();
                let body = self.elab_rules(param, &pty, rules, &rty, *span, MatchKind::Match)?;
                Ok((
                    LExp::Fn {
                        param,
                        param_ty: pty.clone(),
                        body: Box::new(body),
                    },
                    LTy::Arrow(Box::new(pty), Box::new(rty)),
                ))
            }
            ast::Exp::If(c, t, f, span) => {
                let (ce, cty) = self.elab_exp(c)?;
                let denv = self.denv.clone();
                self.un.unify(&cty, &LTy::bool_ty(), *span, &denv)?;
                let (te, tty) = self.elab_exp(t)?;
                let (fe, fty) = self.elab_exp(f)?;
                let denv = self.denv.clone();
                self.un.unify(&tty, &fty, *span, &denv)?;
                Ok((mk_if(ce, te, fe, tty.clone()), tty))
            }
            ast::Exp::Case(scrut, rules, span) => {
                let (se, sty) = self.elab_exp(scrut)?;
                let v = self.vs.fresh_named("case");
                let rty = self.fresh();
                let body = self.elab_rules(v, &sty, rules, &rty, *span, MatchKind::Match)?;
                Ok((
                    LExp::Let {
                        var: v,
                        tyvars: vec![],
                        rhs: Box::new(se),
                        body: Box::new(body),
                    },
                    rty,
                ))
            }
            ast::Exp::Let(decs, body, _) => {
                let vmark = self.venv.mark();
                let tmark = self.tenv.mark();
                let decs: Vec<&ast::Dec> = decs.iter().collect();
                let out = self.elab_decs(&decs, &mut |me| me.elab_exp(body));
                self.venv.pop_to(vmark);
                self.tenv.pop_to(tmark);
                out
            }
            ast::Exp::Record(fields, span) => self.elab_record(fields, *span),
            ast::Exp::Raise(e, span) => {
                let (ee, ety) = self.elab_exp(e)?;
                let denv = self.denv.clone();
                self.un.unify(&ety, &LTy::Exn, *span, &denv)?;
                let rty = self.fresh();
                Ok((
                    LExp::Raise {
                        exn: Box::new(ee),
                        ty: rty.clone(),
                    },
                    rty,
                ))
            }
            ast::Exp::Handle(e, rules, span) => {
                let (be, bty) = self.elab_exp(e)?;
                let hv = self.vs.fresh_named("exn");
                let handler =
                    self.elab_rules(hv, &LTy::Exn, rules, &bty, *span, MatchKind::Handle)?;
                Ok((
                    LExp::Handle {
                        body: Box::new(be),
                        handler_var: hv,
                        handler: Box::new(handler),
                    },
                    bty,
                ))
            }
            ast::Exp::Seq(exps, _) => {
                let mut out = Vec::new();
                let mut last_ty = LTy::unit();
                for e in exps {
                    let (ee, ty) = self.elab_exp(e)?;
                    out.push(ee);
                    last_ty = ty;
                }
                let last = out.pop().unwrap();
                let mut acc = last;
                for e in out.into_iter().rev() {
                    let v = self.vs.fresh();
                    acc = LExp::Let {
                        var: v,
                        tyvars: vec![],
                        rhs: Box::new(e),
                        body: Box::new(acc),
                    };
                }
                Ok((acc, last_ty))
            }
            ast::Exp::Andalso(a, b, span) => {
                let (ae, aty) = self.elab_exp(a)?;
                let (be, bty) = self.elab_exp(b)?;
                let denv = self.denv.clone();
                self.un.unify(&aty, &LTy::bool_ty(), *span, &denv)?;
                self.un.unify(&bty, &LTy::bool_ty(), *span, &denv)?;
                Ok((
                    mk_if(ae, be, LExp::bool(false), LTy::bool_ty()),
                    LTy::bool_ty(),
                ))
            }
            ast::Exp::Orelse(a, b, span) => {
                let (ae, aty) = self.elab_exp(a)?;
                let (be, bty) = self.elab_exp(b)?;
                let denv = self.denv.clone();
                self.un.unify(&aty, &LTy::bool_ty(), *span, &denv)?;
                self.un.unify(&bty, &LTy::bool_ty(), *span, &denv)?;
                Ok((
                    mk_if(ae, LExp::bool(true), be, LTy::bool_ty()),
                    LTy::bool_ty(),
                ))
            }
            ast::Exp::While(c, b, span) => {
                let (ce, cty) = self.elab_exp(c)?;
                let denv = self.denv.clone();
                self.un.unify(&cty, &LTy::bool_ty(), *span, &denv)?;
                let (be, _bty) = self.elab_exp(b)?;
                // fix loop(u: unit) = if c then (b; loop()) else ()
                let loopv = self.vs.fresh_named("while");
                let u = self.vs.fresh();
                let junk = self.vs.fresh();
                let call = LExp::App(Box::new(LExp::var(loopv)), Box::new(LExp::unit()));
                let then_branch = LExp::Let {
                    var: junk,
                    tyvars: vec![],
                    rhs: Box::new(be),
                    body: Box::new(call),
                };
                let body = mk_if(ce, then_branch, LExp::unit(), LTy::unit());
                Ok((
                    LExp::Fix {
                        tyvars: vec![],
                        funs: vec![LFun {
                            var: loopv,
                            param: u,
                            param_ty: LTy::unit(),
                            ret_ty: LTy::unit(),
                            body,
                        }],
                        body: Box::new(LExp::App(
                            Box::new(LExp::var(loopv)),
                            Box::new(LExp::unit()),
                        )),
                    },
                    LTy::unit(),
                ))
            }
            ast::Exp::Constraint(e, ty, span) => {
                let (ee, ety) = self.elab_exp(e)?;
                let want = self.elab_ty(ty, *span, true)?;
                let denv = self.denv.clone();
                self.un.unify(&ety, &want, *span, &denv)?;
                Ok((ee, want))
            }
        }
    }

    fn elab_var(&mut self, sym: Symbol, span: Span) -> Result<(LExp, LTy)> {
        let binding = self
            .venv
            .get(sym)
            .cloned()
            .ok_or_else(|| self.err(span, format!("unbound variable {sym}")))?;
        match binding {
            Binding::Val { var, tyvars, ty } => {
                let (inst, tyargs) = self.un.instantiate(&tyvars, &ty, self.level);
                Ok((LExp::Var { var, tyargs }, inst))
            }
            Binding::Con { data, tag } => {
                let info = self.denv.get(data).clone();
                let tyargs: Vec<LTy> = info.params.iter().map(|_| self.fresh()).collect();
                let dty = LTy::Data(data, tyargs.clone());
                match info.con_arg_ty(tag, &tyargs) {
                    None => Ok((
                        LExp::Con {
                            data,
                            tyargs,
                            tag,
                            arg: None,
                        },
                        dty,
                    )),
                    Some(aty) => {
                        let p = self.vs.fresh_named("c");
                        Ok((
                            LExp::Fn {
                                param: p,
                                param_ty: aty.clone(),
                                body: Box::new(LExp::Con {
                                    data,
                                    tyargs,
                                    tag,
                                    arg: Some(Box::new(LExp::var(p))),
                                }),
                            },
                            LTy::Arrow(Box::new(aty), Box::new(dty)),
                        ))
                    }
                }
            }
            Binding::Exn(id) => {
                let info = self.eenv.get(id).clone();
                match info.arg {
                    None => Ok((LExp::ExnCon { exn: id, arg: None }, LTy::Exn)),
                    Some(aty) => {
                        let p = self.vs.fresh_named("e");
                        Ok((
                            LExp::Fn {
                                param: p,
                                param_ty: aty.clone(),
                                body: Box::new(LExp::ExnCon {
                                    exn: id,
                                    arg: Some(Box::new(LExp::var(p))),
                                }),
                            },
                            LTy::Arrow(Box::new(aty), Box::new(LTy::Exn)),
                        ))
                    }
                }
            }
            Binding::Builtin(b) => {
                // Eta-expand: fn p => prim(...).
                let (dom, cod, mk) = self.builtin_sig(b);
                let p = self.vs.fresh_named("b");
                let args = self.builtin_args(&mk, LExp::var(p), &dom);
                let body = self.finish_builtin(&mk, args, span)?;
                Ok((
                    LExp::Fn {
                        param: p,
                        param_ty: dom.clone(),
                        body: Box::new(body),
                    },
                    LTy::Arrow(Box::new(dom), Box::new(cod)),
                ))
            }
        }
    }

    fn elab_app(&mut self, f: &ast::Exp, a: &ast::Exp, span: Span) -> Result<(LExp, LTy)> {
        // Direct applications of constructors/builtins/selectors avoid
        // administrative redexes.
        if let ast::Exp::Var(sym, vspan) = f {
            match self.venv.get(*sym).cloned() {
                Some(Binding::Con { data, tag }) => {
                    let info = self.denv.get(data).clone();
                    if info.cons[tag].arg.is_some() {
                        let tyargs: Vec<LTy> =
                            info.params.iter().map(|_| self.fresh()).collect();
                        let want = info.con_arg_ty(tag, &tyargs).unwrap();
                        let (ae, aty) = self.elab_exp(a)?;
                        let denv = self.denv.clone();
                        self.un.unify(&aty, &want, span, &denv)?;
                        return Ok((
                            LExp::Con {
                                data,
                                tyargs: tyargs.clone(),
                                tag,
                                arg: Some(Box::new(ae)),
                            },
                            LTy::Data(data, tyargs),
                        ));
                    }
                }
                Some(Binding::Exn(id)) => {
                    let info = self.eenv.get(id).clone();
                    if let Some(want) = info.arg {
                        let (ae, aty) = self.elab_exp(a)?;
                        let denv = self.denv.clone();
                        self.un.unify(&aty, &want, span, &denv)?;
                        return Ok((
                            LExp::ExnCon {
                                exn: id,
                                arg: Some(Box::new(ae)),
                            },
                            LTy::Exn,
                        ));
                    }
                }
                Some(Binding::Builtin(b)) => {
                    let (dom, cod, mk) = self.builtin_sig(b);
                    let (ae, aty) = self.elab_exp(a)?;
                    let denv = self.denv.clone();
                    self.un.unify(&aty, &dom, span, &denv)?;
                    let args = self.builtin_args(&mk, ae, &dom);
                    let body = self.finish_builtin(&mk, args, span)?;
                    return Ok((body, cod));
                }
                _ => {}
            }
            let _ = vspan;
        }
        if let ast::Exp::Selector(lab, _) = f {
            let (ae, aty) = self.elab_exp(a)?;
            let field_ty = self.fresh();
            let rec_ty =
                self.un
                    .fresh_flex_record(self.level, vec![(*lab, field_ty.clone())], span);
            let denv = self.denv.clone();
            self.un.unify(&aty, &rec_ty, span, &denv)?;
            return Ok((
                LExp::Select {
                    label: *lab,
                    arg: Box::new(ae),
                },
                field_ty,
            ));
        }
        let (fe, fty) = self.elab_exp(f)?;
        let (ae, aty) = self.elab_exp(a)?;
        let rty = self.fresh();
        let denv = self.denv.clone();
        self.un.unify(
            &fty,
            &LTy::Arrow(Box::new(aty), Box::new(rty.clone())),
            span,
            &denv,
        )?;
        Ok((LExp::App(Box::new(fe), Box::new(ae)), rty))
    }

    fn elab_record(
        &mut self,
        fields: &[(Symbol, ast::Exp)],
        span: Span,
    ) -> Result<(LExp, LTy)> {
        let mut seen = HashSet::new();
        for (l, _) in fields {
            if !seen.insert(*l) {
                return Err(self.err(span, format!("duplicate record label {l}")));
            }
        }
        let mut elaborated = Vec::new();
        for (l, e) in fields {
            let (ee, ty) = self.elab_exp(e)?;
            elaborated.push((*l, ee, ty));
        }
        let already_canonical = elaborated
            .windows(2)
            .all(|w| label_cmp(&w[0].0, &w[1].0) == std::cmp::Ordering::Less);
        let atomic = elaborated
            .iter()
            .all(|(_, e, _)| matches!(e, LExp::Var { .. } | LExp::Int(_) | LExp::Real(_) | LExp::Char(_) | LExp::Str(_)));
        let mut tys: Vec<(Symbol, LTy)> =
            elaborated.iter().map(|(l, _, t)| (*l, t.clone())).collect();
        tys.sort_by(|(a, _), (b, _)| label_cmp(a, b));
        let rty = LTy::Record(tys);
        if already_canonical || atomic {
            let mut fs: Vec<(Symbol, LExp)> =
                elaborated.into_iter().map(|(l, e, _)| (l, e)).collect();
            fs.sort_by(|(a, _), (b, _)| label_cmp(a, b));
            Ok((LExp::Record(fs), rty))
        } else {
            // Preserve source evaluation order via let bindings.
            let mut lets = Vec::new();
            let mut fs = Vec::new();
            for (l, e, _) in elaborated {
                let v = self.vs.fresh_named(l.as_str());
                lets.push((v, e));
                fs.push((l, LExp::var(v)));
            }
            fs.sort_by(|(a, _), (b, _)| label_cmp(a, b));
            let mut acc = LExp::Record(fs);
            for (v, e) in lets.into_iter().rev() {
                acc = LExp::Let {
                    var: v,
                    tyvars: vec![],
                    rhs: Box::new(e),
                    body: Box::new(acc),
                };
            }
            Ok((acc, rty))
        }
    }

    /// Elaborates match rules over a scrutinee variable and compiles
    /// them to a decision tree.
    fn elab_rules(
        &mut self,
        scrut: Var,
        sty: &LTy,
        rules: &[ast::Rule],
        rty: &LTy,
        span: Span,
        kind: MatchKind,
    ) -> Result<LExp> {
        let mut rows = Vec::new();
        for r in rules {
            let vmark = self.venv.mark();
            let mut bindings = Vec::new();
            let tpat = self.elab_pat(&r.pat, sty, &mut bindings)?;
            for (sym, var, ty) in &bindings {
                self.venv.bind(
                    *sym,
                    Binding::Val {
                        var: *var,
                        tyvars: vec![],
                        ty: ty.clone(),
                    },
                );
            }
            let (body, bty) = self.elab_exp(&r.exp)?;
            let denv = self.denv.clone();
            self.un.unify(&bty, rty, r.exp.span(), &denv)?;
            self.venv.pop_to(vmark);
            rows.push(Row::new(vec![tpat], body));
        }
        let default = match kind {
            MatchKind::Match => LExp::Raise {
                exn: Box::new(LExp::ExnCon {
                    exn: ExnId::MATCH,
                    arg: None,
                }),
                ty: rty.clone(),
            },
            MatchKind::Handle => LExp::Raise {
                exn: Box::new(LExp::var(scrut)),
                ty: rty.clone(),
            },
        };
        let _ = span;
        compile_match(self, vec![(scrut, sty.clone())], rows, default, rty)
    }

    // ---------------------------------------------------------- patterns

    /// Elaborates a pattern against `expected`, collecting bindings.
    pub fn elab_pat(
        &mut self,
        pat: &ast::Pat,
        expected: &LTy,
        binds: &mut Vec<(Symbol, Var, LTy)>,
    ) -> Result<TPat> {
        match pat {
            ast::Pat::Wild(_) => Ok(TPat::Wild),
            ast::Pat::Var(sym, span) => {
                match self.venv.get(*sym).cloned() {
                    Some(Binding::Con { data, tag }) => {
                        let info = self.denv.get(data).clone();
                        if info.cons[tag].arg.is_some() {
                            return Err(self.err(
                                *span,
                                format!("constructor {sym} needs an argument in pattern"),
                            ));
                        }
                        let tyargs: Vec<LTy> =
                            info.params.iter().map(|_| self.fresh()).collect();
                        let denv = self.denv.clone();
                        self.un.unify(
                            expected,
                            &LTy::Data(data, tyargs.clone()),
                            *span,
                            &denv,
                        )?;
                        Ok(TPat::Con {
                            data,
                            tyargs,
                            tag,
                            arg: None,
                        })
                    }
                    Some(Binding::Exn(id)) => {
                        let info = self.eenv.get(id).clone();
                        if info.arg.is_some() {
                            return Err(self.err(
                                *span,
                                format!("exception {sym} needs an argument in pattern"),
                            ));
                        }
                        let denv = self.denv.clone();
                        self.un.unify(expected, &LTy::Exn, *span, &denv)?;
                        Ok(TPat::Exn { id, arg: None })
                    }
                    _ => {
                        if binds.iter().any(|(s, _, _)| s == sym) {
                            return Err(self.err(
                                *span,
                                format!("duplicate variable {sym} in pattern"),
                            ));
                        }
                        let v = self.vs.fresh_named(sym.as_str());
                        binds.push((*sym, v, expected.clone()));
                        Ok(TPat::Var(v))
                    }
                }
            }
            ast::Pat::SCon(sc, span) => {
                let denv = self.denv.clone();
                match sc {
                    ast::SCon::Int(n) => {
                        self.un.unify(expected, &LTy::Int, *span, &denv)?;
                        Ok(TPat::Int(*n))
                    }
                    ast::SCon::Word(w) => {
                        self.un.unify(expected, &LTy::Int, *span, &denv)?;
                        Ok(TPat::Int(*w as i64))
                    }
                    ast::SCon::Char(c) => {
                        self.un.unify(expected, &LTy::Char, *span, &denv)?;
                        Ok(TPat::Int(*c as i64))
                    }
                    ast::SCon::Str(s) => {
                        self.un.unify(expected, &LTy::Str, *span, &denv)?;
                        Ok(TPat::Str(s.clone()))
                    }
                    ast::SCon::Real(_) => {
                        Err(self.err(*span, "real literals cannot appear in patterns"))
                    }
                }
            }
            ast::Pat::Con(sym, arg, span) => match self.venv.get(*sym).cloned() {
                Some(Binding::Con { data, tag }) => {
                    let info = self.denv.get(data).clone();
                    let tyargs: Vec<LTy> = info.params.iter().map(|_| self.fresh()).collect();
                    let denv = self.denv.clone();
                    self.un
                        .unify(expected, &LTy::Data(data, tyargs.clone()), *span, &denv)?;
                    match (info.con_arg_ty(tag, &tyargs), arg) {
                        (Some(want), Some(p)) => {
                            let inner = self.elab_pat(p, &want, binds)?;
                            Ok(TPat::Con {
                                data,
                                tyargs,
                                tag,
                                arg: Some(Box::new(inner)),
                            })
                        }
                        (None, None) => Ok(TPat::Con {
                            data,
                            tyargs,
                            tag,
                            arg: None,
                        }),
                        (None, Some(_)) => Err(self.err(
                            *span,
                            format!("nullary constructor {sym} applied in pattern"),
                        )),
                        (Some(_), None) => Err(self.err(
                            *span,
                            format!("constructor {sym} needs an argument in pattern"),
                        )),
                    }
                }
                Some(Binding::Exn(id)) => {
                    let info = self.eenv.get(id).clone();
                    let denv = self.denv.clone();
                    self.un.unify(expected, &LTy::Exn, *span, &denv)?;
                    match (&info.arg, arg) {
                        (Some(want), Some(p)) => {
                            let inner = self.elab_pat(p, want, binds)?;
                            Ok(TPat::Exn {
                                id,
                                arg: Some(Box::new(inner)),
                            })
                        }
                        (None, None) => Ok(TPat::Exn { id, arg: None }),
                        _ => Err(self.err(
                            *span,
                            format!("exception {sym} argument arity mismatch in pattern"),
                        )),
                    }
                }
                _ => Err(self.err(*span, format!("unknown constructor {sym}"))),
            },
            ast::Pat::Record {
                fields,
                flexible,
                span,
            } => {
                let mut seen = HashSet::new();
                for (l, _) in fields {
                    if !seen.insert(*l) {
                        return Err(self.err(*span, format!("duplicate record label {l}")));
                    }
                }
                let mut sub = Vec::new();
                let mut tys = Vec::new();
                for (l, p) in fields {
                    let ft = self.fresh();
                    let tp = self.elab_pat(p, &ft, binds)?;
                    sub.push((*l, tp));
                    tys.push((*l, ft));
                }
                sub.sort_by(|(a, _), (b, _)| label_cmp(a, b));
                tys.sort_by(|(a, _), (b, _)| label_cmp(a, b));
                let pty = if *flexible {
                    self.un.fresh_flex_record(self.level, tys, *span)
                } else {
                    LTy::Record(tys)
                };
                let denv = self.denv.clone();
                self.un.unify(expected, &pty, *span, &denv)?;
                Ok(TPat::Record {
                    fields: sub,
                    ty: pty,
                })
            }
            ast::Pat::As(sym, inner, span) => {
                if binds.iter().any(|(s, _, _)| s == sym) {
                    return Err(self.err(*span, format!("duplicate variable {sym} in pattern")));
                }
                let v = self.vs.fresh_named(sym.as_str());
                binds.push((*sym, v, expected.clone()));
                let ip = self.elab_pat(inner, expected, binds)?;
                Ok(TPat::As(v, Box::new(ip)))
            }
            ast::Pat::Constraint(inner, ty, span) => {
                let want = self.elab_ty(ty, *span, true)?;
                let denv = self.denv.clone();
                self.un.unify(expected, &want, *span, &denv)?;
                self.elab_pat(inner, &want, binds)
            }
        }
    }

    // ---------------------------------------------------------- builtins

    /// Computes `(domain, codomain, recipe)` for a builtin occurrence,
    /// minting fresh (possibly overloaded) unification variables.
    fn builtin_sig(&mut self, b: Builtin) -> (LTy, LTy, BuiltinMk) {
        match b {
            Builtin::Arith(op) => {
                let a = self.un.fresh_overloaded(self.level, OvClass::Num);
                (
                    LTy::tuple(vec![a.clone(), a.clone()]),
                    a.clone(),
                    BuiltinMk::Overload(Prim::OverloadArith(op), a, 2),
                )
            }
            Builtin::Cmp(op) => {
                let a = self.un.fresh_overloaded(self.level, OvClass::NumTxt);
                (
                    LTy::tuple(vec![a.clone(), a.clone()]),
                    LTy::bool_ty(),
                    BuiltinMk::Overload(Prim::OverloadCmp(op), a, 2),
                )
            }
            Builtin::Neg => {
                let a = self.un.fresh_overloaded(self.level, OvClass::Num);
                (
                    a.clone(),
                    a.clone(),
                    BuiltinMk::Overload(Prim::OverloadNeg, a, 1),
                )
            }
            Builtin::Abs => {
                let a = self.un.fresh_overloaded(self.level, OvClass::Num);
                (
                    a.clone(),
                    a.clone(),
                    BuiltinMk::Overload(Prim::OverloadAbs, a, 1),
                )
            }
            Builtin::Eq => {
                let a = self.fresh();
                (
                    LTy::tuple(vec![a.clone(), a.clone()]),
                    LTy::bool_ty(),
                    BuiltinMk::Poly(Prim::PolyEq, a, 2, false),
                )
            }
            Builtin::Ne => {
                let a = self.fresh();
                (
                    LTy::tuple(vec![a.clone(), a.clone()]),
                    LTy::bool_ty(),
                    BuiltinMk::Poly(Prim::PolyEq, a, 2, true),
                )
            }
            Builtin::Prim(p) => {
                let sig = p.sig().expect("basis builtins have signatures");
                let tyargs: Vec<LTy> = (0..sig.tyvars).map(|_| self.fresh()).collect();
                let map: std::collections::HashMap<TyVar, LTy> = (0..sig.tyvars)
                    .map(|i| (TyVar(i as u32), tyargs[i].clone()))
                    .collect();
                let args: Vec<LTy> = sig.args.iter().map(|t| t.subst(&map)).collect();
                let ret = sig.ret.subst(&map);
                let dom = if args.len() == 1 {
                    args[0].clone()
                } else {
                    LTy::tuple(args.clone())
                };
                (dom, ret, BuiltinMk::Prim(p, tyargs, args.len()))
            }
        }
    }

    /// Splits a builtin's single SML argument into primitive arguments.
    /// Returns the argument expressions plus an optional `(var, rhs)`
    /// binding the caller must wrap around the primitive (used when the
    /// tuple argument is not syntactically a record).
    fn builtin_args(
        &mut self,
        mk: &BuiltinMk,
        arg: LExp,
        _dom: &LTy,
    ) -> (Vec<LExp>, Option<(Var, LExp)>) {
        let arity = match mk {
            BuiltinMk::Prim(_, _, n) => *n,
            BuiltinMk::Overload(_, _, n) | BuiltinMk::Poly(_, _, n, _) => *n,
        };
        if arity == 1 {
            return (vec![arg], None);
        }
        match arg {
            LExp::Record(fields) if fields.len() == arity => {
                (fields.into_iter().map(|(_, e)| e).collect(), None)
            }
            other => {
                let v = self.vs.fresh_named("t");
                let selects: Vec<LExp> = (0..arity)
                    .map(|i| LExp::Select {
                        label: Symbol::intern(&(i + 1).to_string()),
                        arg: Box::new(LExp::var(v)),
                    })
                    .collect();
                (selects, Some((v, other)))
            }
        }
    }

    fn finish_builtin(
        &mut self,
        mk: &BuiltinMk,
        (args, binding): (Vec<LExp>, Option<(Var, LExp)>),
        _span: Span,
    ) -> Result<LExp> {
        let exp = match mk {
            BuiltinMk::Prim(p, tyargs, _) => LExp::Prim {
                prim: *p,
                tyargs: tyargs.clone(),
                args,
            },
            BuiltinMk::Overload(p, a, _) => LExp::Prim {
                prim: *p,
                tyargs: vec![a.clone()],
                args,
            },
            BuiltinMk::Poly(p, a, _, negate) => {
                let eq = LExp::Prim {
                    prim: *p,
                    tyargs: vec![a.clone()],
                    args,
                };
                if *negate {
                    mk_if(eq, LExp::bool(false), LExp::bool(true), LTy::bool_ty())
                } else {
                    eq
                }
            }
        };
        Ok(match binding {
            Some((v, rhs)) => LExp::Let {
                var: v,
                tyvars: vec![],
                rhs: Box::new(rhs),
                body: Box::new(exp),
            },
            None => exp,
        })
    }
}

impl Default for Elab {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Clone, Copy)]
enum MatchKind {
    Match,
    Handle,
}

enum BuiltinMk {
    /// Direct primitive with tyargs and arity.
    Prim(Prim, Vec<LTy>, usize),
    /// Overload placeholder with its class variable and arity.
    Overload(Prim, LTy, usize),
    /// Polymorphic equality (negated for `<>`).
    Poly(Prim, LTy, usize, bool),
}

/// Builds `if c then t else f` as a bool switch.
pub fn mk_if(c: LExp, t: LExp, f: LExp, result_ty: LTy) -> LExp {
    LExp::Switch(Box::new(LSwitch::Data {
        scrut: c,
        data: DataId::BOOL,
        tyargs: vec![],
        arms: vec![(1, None, t), (0, None, f)],
        default: None,
        result_ty,
    }))
}
