//! A simple lexically scoped map.
//!
//! Bindings push onto a stack; entering a scope records a mark and
//! leaving truncates back to it, so shadowing and restoration are O(1).

use std::collections::HashMap;
use til_common::Symbol;

/// A stack-of-bindings scoped map from [`Symbol`] to `V`.
#[derive(Clone, Debug)]
pub struct ScopeMap<V> {
    stack: Vec<(Symbol, Option<V>)>,
    map: HashMap<Symbol, V>,
}

impl<V: Clone> Default for ScopeMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone> ScopeMap<V> {
    /// An empty map.
    pub fn new() -> Self {
        ScopeMap {
            stack: Vec::new(),
            map: HashMap::new(),
        }
    }

    /// Binds `k` to `v`, shadowing any previous binding.
    pub fn bind(&mut self, k: Symbol, v: V) {
        let old = self.map.insert(k, v);
        self.stack.push((k, old));
    }

    /// Looks up the innermost binding of `k`.
    pub fn get(&self, k: Symbol) -> Option<&V> {
        self.map.get(&k)
    }

    /// Returns a mark for the current scope depth.
    pub fn mark(&self) -> usize {
        self.stack.len()
    }

    /// Pops bindings down to `mark`, restoring shadowed entries.
    pub fn pop_to(&mut self, mark: usize) {
        while self.stack.len() > mark {
            let (k, old) = self.stack.pop().unwrap();
            match old {
                Some(v) => {
                    self.map.insert(k, v);
                }
                None => {
                    self.map.remove(&k);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadowing_restores_on_pop() {
        let mut m = ScopeMap::new();
        let x = Symbol::intern("x");
        m.bind(x, 1);
        let mark = m.mark();
        m.bind(x, 2);
        assert_eq!(m.get(x), Some(&2));
        m.pop_to(mark);
        assert_eq!(m.get(x), Some(&1));
    }

    #[test]
    fn unbinding_removes() {
        let mut m = ScopeMap::new();
        let x = Symbol::intern("y");
        let mark = m.mark();
        m.bind(x, 1);
        m.pop_to(mark);
        assert_eq!(m.get(x), None);
    }
}
