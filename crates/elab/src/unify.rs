//! Unification with levels, overload classes, and flexible records.
//!
//! Types during inference are ordinary [`LTy`] values whose
//! [`LTy::Uvar`] leaves index into this table. Generalization uses
//! Rémy-style levels; the SML overloaded operators (`+`, `<`, ...)
//! constrain their unification variable with an [`OvClass`]; flexible
//! record patterns (`{x, ...}`) use [`UEntry::FreeRec`] entries.

use std::collections::HashMap;
use til_common::{Diagnostic, Result, Span, Symbol};
use til_lambda::ty::{label_cmp, LTy, TyVar, TyVarSupply};
use til_lambda::DataEnv;

/// Overload class of an unconstrained operator type variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OvClass {
    /// `int` or `real` (arithmetic).
    Num,
    /// `int`, `real`, `char`, or `string` (comparisons).
    NumTxt,
}

impl OvClass {
    fn admits(self, t: &LTy) -> bool {
        match self {
            OvClass::Num => matches!(t, LTy::Int | LTy::Real),
            OvClass::NumTxt => matches!(t, LTy::Int | LTy::Real | LTy::Char | LTy::Str),
        }
    }

    fn intersect(self, other: OvClass) -> OvClass {
        if self == OvClass::Num || other == OvClass::Num {
            OvClass::Num
        } else {
            OvClass::NumTxt
        }
    }
}

/// One entry in the unification table.
#[derive(Clone, Debug)]
pub enum UEntry {
    /// Unbound variable.
    Free {
        /// Generalization level.
        level: u32,
        /// Overload constraint, if the variable came from an overloaded
        /// operator.
        class: Option<OvClass>,
    },
    /// A record type with *at least* these fields (flexible pattern).
    FreeRec {
        /// Generalization level.
        level: u32,
        /// Known fields, canonically ordered.
        fields: Vec<(Symbol, LTy)>,
        /// Where the flexible pattern appeared (for error reporting).
        span: Span,
    },
    /// Resolved.
    Link(LTy),
}

/// The unifier state.
#[derive(Clone, Debug, Default)]
pub struct Unifier {
    entries: Vec<UEntry>,
}

impl Unifier {
    /// An empty unifier.
    pub fn new() -> Unifier {
        Unifier::default()
    }

    /// A fresh unconstrained variable at `level`.
    pub fn fresh(&mut self, level: u32) -> LTy {
        self.entries.push(UEntry::Free { level, class: None });
        LTy::Uvar((self.entries.len() - 1) as u32)
    }

    /// A fresh variable constrained to overload class `class`.
    pub fn fresh_overloaded(&mut self, level: u32, class: OvClass) -> LTy {
        self.entries.push(UEntry::Free {
            level,
            class: Some(class),
        });
        LTy::Uvar((self.entries.len() - 1) as u32)
    }

    /// A fresh flexible-record variable with the given known fields.
    pub fn fresh_flex_record(
        &mut self,
        level: u32,
        mut fields: Vec<(Symbol, LTy)>,
        span: Span,
    ) -> LTy {
        fields.sort_by(|(a, _), (b, _)| label_cmp(a, b));
        self.entries.push(UEntry::FreeRec {
            level,
            fields,
            span,
        });
        LTy::Uvar((self.entries.len() - 1) as u32)
    }

    /// Resolves the head of `t` one step through links.
    pub fn head(&self, t: &LTy) -> LTy {
        let mut t = t.clone();
        loop {
            match &t {
                LTy::Uvar(u) => match &self.entries[*u as usize] {
                    UEntry::Link(next) => t = next.clone(),
                    _ => return t,
                },
                _ => return t,
            }
        }
    }

    /// Fully resolves `t`, leaving only genuinely free `Uvar`s.
    pub fn resolve(&self, t: &LTy) -> LTy {
        let h = self.head(t);
        match h {
            LTy::Arrow(a, b) => {
                LTy::Arrow(Box::new(self.resolve(&a)), Box::new(self.resolve(&b)))
            }
            LTy::Record(fs) => LTy::Record(
                fs.iter().map(|(l, t)| (*l, self.resolve(t))).collect(),
            ),
            LTy::Data(id, args) => {
                LTy::Data(id, args.iter().map(|t| self.resolve(t)).collect())
            }
            LTy::Array(t) => LTy::Array(Box::new(self.resolve(&t))),
            LTy::Ref(t) => LTy::Ref(Box::new(self.resolve(&t))),
            other => other,
        }
    }

    fn occurs(&self, u: u32, t: &LTy) -> bool {
        match self.head(t) {
            LTy::Uvar(v) => v == u,
            LTy::Arrow(a, b) => self.occurs(u, &a) || self.occurs(u, &b),
            LTy::Record(fs) => fs.iter().any(|(_, t)| self.occurs(u, t)),
            LTy::Data(_, args) => args.iter().any(|t| self.occurs(u, t)),
            LTy::Array(t) | LTy::Ref(t) => self.occurs(u, &t),
            _ => false,
        }
    }

    /// Lowers the level of every free variable in `t` to at most `level`.
    fn adjust_levels(&mut self, level: u32, t: &LTy) {
        match self.head(t) {
            LTy::Uvar(u) => match &mut self.entries[u as usize] {
                UEntry::Free { level: l, .. } | UEntry::FreeRec { level: l, .. } => {
                    if *l > level {
                        *l = level;
                    }
                    if let UEntry::FreeRec { fields, .. } = &self.entries[u as usize].clone()
                    {
                        for (_, ft) in fields {
                            self.adjust_levels(level, ft);
                        }
                    }
                }
                UEntry::Link(_) => unreachable!(),
            },
            LTy::Arrow(a, b) => {
                self.adjust_levels(level, &a);
                self.adjust_levels(level, &b);
            }
            LTy::Record(fs) => {
                for (_, t) in &fs {
                    self.adjust_levels(level, t);
                }
            }
            LTy::Data(_, args) => {
                for t in &args {
                    self.adjust_levels(level, t);
                }
            }
            LTy::Array(t) | LTy::Ref(t) => self.adjust_levels(level, &t),
            _ => {}
        }
    }

    /// Unifies `a` and `b`, reporting mismatches at `span`.
    pub fn unify(&mut self, a: &LTy, b: &LTy, span: Span, denv: &DataEnv) -> Result<()> {
        let ha = self.head(a);
        let hb = self.head(b);
        let mismatch = |me: &Unifier| {
            Diagnostic::error(
                "typecheck",
                span,
                format!(
                    "type mismatch: {} vs {}",
                    me.resolve(&ha).display(denv),
                    me.resolve(&hb).display(denv)
                ),
            )
        };
        match (&ha, &hb) {
            (LTy::Uvar(u), LTy::Uvar(v)) if u == v => Ok(()),
            (LTy::Uvar(u), _) => self.bind_uvar(*u, &hb, span, denv),
            (_, LTy::Uvar(v)) => self.bind_uvar(*v, &ha, span, denv),
            (LTy::Int, LTy::Int)
            | (LTy::Real, LTy::Real)
            | (LTy::Char, LTy::Char)
            | (LTy::Str, LTy::Str)
            | (LTy::Exn, LTy::Exn) => Ok(()),
            (LTy::Var(x), LTy::Var(y)) if x == y => Ok(()),
            (LTy::Arrow(a1, b1), LTy::Arrow(a2, b2)) => {
                self.unify(a1, a2, span, denv)?;
                self.unify(b1, b2, span, denv)
            }
            (LTy::Record(f1), LTy::Record(f2)) => {
                if f1.len() != f2.len() || f1.iter().zip(f2).any(|((l1, _), (l2, _))| l1 != l2)
                {
                    return Err(mismatch(self));
                }
                for ((_, t1), (_, t2)) in f1.iter().zip(f2) {
                    self.unify(t1, t2, span, denv)?;
                }
                Ok(())
            }
            (LTy::Data(i1, a1), LTy::Data(i2, a2)) if i1 == i2 => {
                for (t1, t2) in a1.iter().zip(a2) {
                    self.unify(t1, t2, span, denv)?;
                }
                Ok(())
            }
            (LTy::Array(t1), LTy::Array(t2)) | (LTy::Ref(t1), LTy::Ref(t2)) => {
                self.unify(t1, t2, span, denv)
            }
            _ => Err(mismatch(self)),
        }
    }

    fn bind_uvar(&mut self, u: u32, t: &LTy, span: Span, denv: &DataEnv) -> Result<()> {
        if let LTy::Uvar(v) = t {
            // Both free: merge metadata into `v`, link `u` to it.
            let eu = self.entries[u as usize].clone();
            let ev = self.entries[*v as usize].clone();
            match (eu, ev) {
                (
                    UEntry::Free {
                        level: lu,
                        class: cu,
                    },
                    UEntry::Free {
                        level: lv,
                        class: cv,
                    },
                ) => {
                    let class = match (cu, cv) {
                        (Some(a), Some(b)) => Some(a.intersect(b)),
                        (a, b) => a.or(b),
                    };
                    self.entries[*v as usize] = UEntry::Free {
                        level: lu.min(lv),
                        class,
                    };
                    self.entries[u as usize] = UEntry::Link(t.clone());
                    Ok(())
                }
                (
                    UEntry::Free { level: lu, class },
                    UEntry::FreeRec {
                        level: lv,
                        fields,
                        span: rspan,
                    },
                ) => {
                    if class.is_some() {
                        return Err(Diagnostic::error(
                            "typecheck",
                            span,
                            "overloaded operator applied to a record type",
                        ));
                    }
                    self.entries[*v as usize] = UEntry::FreeRec {
                        level: lu.min(lv),
                        fields,
                        span: rspan,
                    };
                    self.entries[u as usize] = UEntry::Link(t.clone());
                    Ok(())
                }
                (UEntry::FreeRec { .. }, UEntry::Free { class: Some(_), .. }) => {
                    Err(Diagnostic::error(
                        "typecheck",
                        span,
                        "overloaded operator applied to a record type",
                    ))
                }
                (
                    UEntry::FreeRec {
                        level: lu,
                        fields: fu,
                        span: su,
                    },
                    UEntry::FreeRec {
                        level: lv,
                        fields: fv,
                        ..
                    },
                ) => {
                    // Merge the field sets.
                    let mut merged: Vec<(Symbol, LTy)> = fv.clone();
                    for (l, t1) in fu {
                        match merged.iter().find(|(l2, _)| *l2 == l) {
                            Some((_, t2)) => {
                                let t2 = t2.clone();
                                self.unify(&t1, &t2, span, denv)?;
                            }
                            None => merged.push((l, t1.clone())),
                        }
                    }
                    merged.sort_by(|(a, _), (b, _)| label_cmp(a, b));
                    self.entries[*v as usize] = UEntry::FreeRec {
                        level: lu.min(self.level_of(*v)),
                        fields: merged,
                        span: su,
                    };
                    self.entries[u as usize] = UEntry::Link(t.clone());
                    let _ = lv;
                    Ok(())
                }
                (UEntry::FreeRec { level: lu, fields, span: su }, UEntry::Free { level: lv, class: None }) => {
                    // Keep the record constraint: link v to u instead.
                    self.entries[u as usize] = UEntry::FreeRec {
                        level: lu.min(lv),
                        fields,
                        span: su,
                    };
                    self.entries[*v as usize] = UEntry::Link(LTy::Uvar(u));
                    Ok(())
                }
                _ => unreachable!("links resolved by head()"),
            }
        } else {
            if self.occurs(u, t) {
                return Err(Diagnostic::error(
                    "typecheck",
                    span,
                    "circular type (occurs check failed)",
                ));
            }
            match self.entries[u as usize].clone() {
                UEntry::Free { level, class } => {
                    if let Some(c) = class {
                        if !c.admits(t) {
                            return Err(Diagnostic::error(
                                "typecheck",
                                span,
                                format!(
                                    "overloaded operator used at type {}",
                                    self.resolve(t).display(denv)
                                ),
                            ));
                        }
                    }
                    self.adjust_levels(level, t);
                    self.entries[u as usize] = UEntry::Link(t.clone());
                    Ok(())
                }
                UEntry::FreeRec { level, fields, .. } => match t {
                    LTy::Record(full) => {
                        for (l, t1) in &fields {
                            match full.iter().find(|(l2, _)| l2 == l) {
                                Some((_, t2)) => {
                                    let t2 = t2.clone();
                                    self.unify(t1, &t2, span, denv)?;
                                }
                                None => {
                                    return Err(Diagnostic::error(
                                        "typecheck",
                                        span,
                                        format!("record type has no field `{l}`"),
                                    ))
                                }
                            }
                        }
                        self.adjust_levels(level, t);
                        self.entries[u as usize] = UEntry::Link(t.clone());
                        Ok(())
                    }
                    _ => Err(Diagnostic::error(
                        "typecheck",
                        span,
                        format!(
                            "expected a record type, found {}",
                            self.resolve(t).display(denv)
                        ),
                    )),
                },
                UEntry::Link(_) => unreachable!("links resolved by head()"),
            }
        }
    }

    fn level_of(&self, u: u32) -> u32 {
        match &self.entries[u as usize] {
            UEntry::Free { level, .. } | UEntry::FreeRec { level, .. } => *level,
            UEntry::Link(_) => u32::MAX,
        }
    }

    /// Generalizes `ty` at `level`: every free variable whose level is
    /// strictly greater becomes a bound [`TyVar`] (overloaded variables
    /// instead default to `int`; flexible records do not generalize).
    /// Returns the new bound variables.
    pub fn generalize(
        &mut self,
        level: u32,
        ty: &LTy,
        tvs: &mut TyVarSupply,
    ) -> Vec<TyVar> {
        let mut bound = Vec::new();
        self.gen_walk(level, ty, tvs, &mut bound);
        bound
    }

    fn gen_walk(
        &mut self,
        level: u32,
        ty: &LTy,
        tvs: &mut TyVarSupply,
        bound: &mut Vec<TyVar>,
    ) {
        match self.head(ty) {
            LTy::Uvar(u) => match self.entries[u as usize].clone() {
                UEntry::Free {
                    level: l,
                    class: None,
                } if l > level => {
                    let tv = tvs.fresh();
                    self.entries[u as usize] = UEntry::Link(LTy::Var(tv));
                    bound.push(tv);
                }
                UEntry::Free {
                    level: l,
                    class: Some(_),
                } if l > level => {
                    // Overloading defaults to int at generalization.
                    self.entries[u as usize] = UEntry::Link(LTy::Int);
                }
                _ => {}
            },
            LTy::Arrow(a, b) => {
                self.gen_walk(level, &a, tvs, bound);
                self.gen_walk(level, &b, tvs, bound);
            }
            LTy::Record(fs) => {
                for (_, t) in &fs {
                    self.gen_walk(level, t, tvs, bound);
                }
            }
            LTy::Data(_, args) => {
                for t in &args {
                    self.gen_walk(level, t, tvs, bound);
                }
            }
            LTy::Array(t) | LTy::Ref(t) => self.gen_walk(level, &t, tvs, bound),
            _ => {}
        }
    }

    /// Final resolution for zonking: fully resolves `t`; remaining free
    /// plain variables default to `int`; an unresolved flexible record
    /// is a user error.
    pub fn zonk(&mut self, t: &LTy) -> Result<LTy> {
        let h = self.head(t);
        match h {
            LTy::Uvar(u) => match self.entries[u as usize].clone() {
                UEntry::Free { .. } => {
                    self.entries[u as usize] = UEntry::Link(LTy::Int);
                    Ok(LTy::Int)
                }
                UEntry::FreeRec { span, .. } => Err(Diagnostic::error(
                    "typecheck",
                    span,
                    "unresolved flexible record pattern; add a type annotation",
                )),
                UEntry::Link(_) => unreachable!(),
            },
            LTy::Arrow(a, b) => Ok(LTy::Arrow(
                Box::new(self.zonk(&a)?),
                Box::new(self.zonk(&b)?),
            )),
            LTy::Record(fs) => {
                let mut out = Vec::with_capacity(fs.len());
                for (l, t) in fs {
                    out.push((l, self.zonk(&t)?));
                }
                Ok(LTy::Record(out))
            }
            LTy::Data(id, args) => {
                let mut out = Vec::with_capacity(args.len());
                for t in args {
                    out.push(self.zonk(&t)?);
                }
                Ok(LTy::Data(id, out))
            }
            LTy::Array(t) => Ok(LTy::Array(Box::new(self.zonk(&t)?))),
            LTy::Ref(t) => Ok(LTy::Ref(Box::new(self.zonk(&t)?))),
            other => Ok(other),
        }
    }

    /// Instantiates `scheme` (bound vars `tyvars`, body `ty`) with fresh
    /// unification variables at `level`; returns the instantiated type
    /// and the fresh arguments (recorded as `tyargs` on the occurrence).
    pub fn instantiate(
        &mut self,
        tyvars: &[TyVar],
        ty: &LTy,
        level: u32,
    ) -> (LTy, Vec<LTy>) {
        if tyvars.is_empty() {
            return (ty.clone(), vec![]);
        }
        let args: Vec<LTy> = tyvars.iter().map(|_| self.fresh(level)).collect();
        let map: HashMap<TyVar, LTy> = tyvars
            .iter()
            .copied()
            .zip(args.iter().cloned())
            .collect();
        (ty.subst(&map), args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn denv() -> DataEnv {
        let mut tvs = TyVarSupply::new();
        DataEnv::with_builtins(tvs.fresh())
    }

    #[test]
    fn unify_free_with_int() {
        let d = denv();
        let mut u = Unifier::new();
        let a = u.fresh(0);
        u.unify(&a, &LTy::Int, Span::DUMMY, &d).unwrap();
        assert_eq!(u.resolve(&a), LTy::Int);
    }

    #[test]
    fn occurs_check_rejects_cycles() {
        let d = denv();
        let mut u = Unifier::new();
        let a = u.fresh(0);
        let arrow = LTy::Arrow(Box::new(a.clone()), Box::new(LTy::Int));
        assert!(u.unify(&a, &arrow, Span::DUMMY, &d).is_err());
    }

    #[test]
    fn overload_class_rejects_string_arith() {
        let d = denv();
        let mut u = Unifier::new();
        let a = u.fresh_overloaded(0, OvClass::Num);
        assert!(u.unify(&a, &LTy::Str, Span::DUMMY, &d).is_err());
        let b = u.fresh_overloaded(0, OvClass::NumTxt);
        assert!(u.unify(&b, &LTy::Str, Span::DUMMY, &d).is_ok());
    }

    #[test]
    fn overload_defaults_to_int_at_generalization() {
        let _d = denv();
        let mut u = Unifier::new();
        let mut tvs = TyVarSupply::new();
        let a = u.fresh_overloaded(1, OvClass::Num);
        let bound = u.generalize(0, &a, &mut tvs);
        assert!(bound.is_empty());
        assert_eq!(u.resolve(&a), LTy::Int);
    }

    #[test]
    fn generalize_creates_bound_vars() {
        let mut u = Unifier::new();
        let mut tvs = TyVarSupply::new();
        let a = u.fresh(1);
        let ty = LTy::Arrow(Box::new(a.clone()), Box::new(a.clone()));
        let bound = u.generalize(0, &ty, &mut tvs);
        assert_eq!(bound.len(), 1);
        assert!(matches!(u.resolve(&a), LTy::Var(_)));
    }

    #[test]
    fn low_level_vars_do_not_generalize() {
        let mut u = Unifier::new();
        let mut tvs = TyVarSupply::new();
        let a = u.fresh(0);
        let bound = u.generalize(0, &a, &mut tvs);
        assert!(bound.is_empty());
    }

    #[test]
    fn flex_record_resolves_against_full_record() {
        let d = denv();
        let mut u = Unifier::new();
        let x = Symbol::intern("x");
        let y = Symbol::intern("y");
        let fx = u.fresh(0);
        let flex = u.fresh_flex_record(0, vec![(x, fx.clone())], Span::DUMMY);
        let full = LTy::Record(vec![(x, LTy::Int), (y, LTy::Real)]);
        u.unify(&flex, &full, Span::DUMMY, &d).unwrap();
        assert_eq!(u.resolve(&fx), LTy::Int);
        assert_eq!(u.resolve(&flex), full);
    }

    #[test]
    fn flex_record_missing_field_is_error() {
        let d = denv();
        let mut u = Unifier::new();
        let z = Symbol::intern("z");
        let flex = u.fresh_flex_record(0, vec![(z, LTy::Int)], Span::DUMMY);
        let full = LTy::Record(vec![(Symbol::intern("x"), LTy::Int)]);
        assert!(u.unify(&flex, &full, Span::DUMMY, &d).is_err());
    }

    #[test]
    fn unresolved_flex_record_fails_zonk() {
        let mut u = Unifier::new();
        let flex = u.fresh_flex_record(0, vec![(Symbol::intern("x"), LTy::Int)], Span::DUMMY);
        assert!(u.zonk(&flex).is_err());
    }

    #[test]
    fn zonk_defaults_free_to_int() {
        let mut u = Unifier::new();
        let a = u.fresh(0);
        assert_eq!(u.zonk(&a).unwrap(), LTy::Int);
    }

    #[test]
    fn instantiate_produces_fresh_args() {
        let mut u = Unifier::new();
        let mut tvs = TyVarSupply::new();
        let tv = tvs.fresh();
        let scheme_body = LTy::Arrow(Box::new(LTy::Var(tv)), Box::new(LTy::Var(tv)));
        let (inst, args) = u.instantiate(&[tv], &scheme_body, 0);
        assert_eq!(args.len(), 1);
        let LTy::Arrow(a, b) = inst else { panic!() };
        assert_eq!(*a, *b);
        assert!(matches!(*a, LTy::Uvar(_)));
    }
}
