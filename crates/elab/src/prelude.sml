(* The TIL prelude: the "inline prelude" the paper prefixes onto every
   compilation unit (Section 5.2). Everything here is ordinary core SML
   compiled by the same pipeline as user code — in particular the safe
   array operations carry explicit bounds checks that the loop
   optimizations are expected to eliminate, and the 2-d array operations
   match Section 4's sub2. *)

datatype 'a option = NONE | SOME of 'a
datatype order = LESS | EQUAL | GREATER

fun not true = false
  | not _ = true

fun ignore _ = ()

fun o (f, g) = fn x => f (g x)

(* ---------------------------------------------------------- options *)

fun valOf (SOME x) = x
  | valOf NONE = raise Option

fun isSome (SOME _) = true
  | isSome _ = false

fun getOpt (SOME x, _) = x
  | getOpt (NONE, d) = d

(* ------------------------------------------------------------ lists *)

fun length l =
  let fun len (nil, n) = n
        | len (_ :: t, n) = len (t, n + 1)
  in len (l, 0) end

fun rev l =
  let fun go (nil, acc) = acc
        | go (h :: t, acc) = go (t, h :: acc)
  in go (l, nil) end

fun revAppend (nil, ys) = ys
  | revAppend (x :: xs, ys) = revAppend (xs, x :: ys)

fun @ (xs, ys) = revAppend (rev xs, ys)

fun hd nil = raise Empty
  | hd (h :: _) = h

fun tl nil = raise Empty
  | tl (_ :: t) = t

fun null nil = true
  | null _ = false

fun map f nil = nil
  | map f (h :: t) = f h :: map f t

fun app f nil = ()
  | app f (h :: t) = (f h; app f t)

fun foldl f b nil = b
  | foldl f b (h :: t) = foldl f (f (h, b)) t

fun foldr f b nil = b
  | foldr f b (h :: t) = f (h, foldr f b t)

fun List.filter p nil = nil
  | List.filter p (h :: t) =
      if p h then h :: List.filter p t else List.filter p t

fun List.exists p nil = false
  | List.exists p (h :: t) = p h orelse List.exists p t

fun List.all p nil = true
  | List.all p (h :: t) = p h andalso List.all p t

fun List.concat nil = nil
  | List.concat (l :: ls) = l @ List.concat ls

fun List.nth (l, n) =
  let fun go (nil, _) = raise Subscript
        | go (h :: _, 0) = h
        | go (_ :: t, k) = go (t, k - 1)
  in if n < 0 then raise Subscript else go (l, n) end

fun List.tabulate (n, f) =
  let fun go i = if i >= n then nil else f i :: go (i + 1)
  in if n < 0 then raise Size else go 0 end

fun List.partition p l =
  let fun go (nil, yes, no) = (rev yes, rev no)
        | go (h :: t, yes, no) =
            if p h then go (t, h :: yes, no) else go (t, yes, h :: no)
  in go (l, nil, nil) end

(* ---------------------------------------------------------- numbers *)

fun Int.min (a : int, b) = if a < b then a else b
fun Int.max (a : int, b) = if a > b then a else b
fun Int.compare (a : int, b) =
  if a < b then LESS else if a > b then GREATER else EQUAL
fun Real.min (a : real, b) = if a < b then a else b
fun Real.max (a : real, b) = if a > b then a else b
fun Real.compare (a : real, b) =
  if a < b then LESS else if a > b then GREATER else EQUAL

(* ---------------------------------------------------------- strings *)

fun implode nil = ""
  | implode (c :: cs) = str c ^ implode cs

fun explode s =
  let val n = size s
      fun go i = if i >= n then nil else String.sub (s, i) :: go (i + 1)
  in go 0 end

fun substring (s, i, n) = implode (List.tabulate (n, fn k => String.sub (s, i + k)))

fun String.concat nil = ""
  | String.concat (s :: ss) = s ^ String.concat ss

fun String.compare (a, b) =
  let val c = String.compare_raw (a, b)
  in if c < 0 then LESS else if c > 0 then GREATER else EQUAL end

fun Char.isDigit c = c >= #"0" andalso c <= #"9"
fun Char.isAlpha c =
  (c >= #"a" andalso c <= #"z") orelse (c >= #"A" andalso c <= #"Z")
fun Char.isSpace c =
  c = #" " orelse c = #"\n" orelse c = #"\t" orelse c = #"\r"

(* ----------------------------------------------------------- arrays *)

fun Array.sub (a, i) =
  if i < 0 orelse i >= Array.length a then raise Subscript
  else unsafe_sub (a, i)

fun Array.update (a, i, v) =
  if i < 0 orelse i >= Array.length a then raise Subscript
  else unsafe_update (a, i, v)

fun Array.tabulate (n, f) =
  if n <= 0 then raise Size
  else
    let val a = Array.array (n, f 0)
        fun fill i = if i >= n then a else (unsafe_update (a, i, f i); fill (i + 1))
    in fill 1 end

fun Array.foldl f b a =
  let val n = Array.length a
      fun go (i, acc) = if i >= n then acc else go (i + 1, f (unsafe_sub (a, i), acc))
  in go (0, b) end

fun Array.modify f a =
  let val n = Array.length a
      fun go i =
        if i >= n then ()
        else (unsafe_update (a, i, f (unsafe_sub (a, i))); go (i + 1))
  in go 0 end

fun Array.copy (src, dst) =
  let val n = Int.min (Array.length src, Array.length dst)
      fun go i =
        if i >= n then ()
        else (unsafe_update (dst, i, unsafe_sub (src, i)); go (i + 1))
  in go 0 end

(* ----------------------------------------- safe 2-d arrays (Sec. 4) *)

type 'a array2 = {columns : int, rows : int, v : 'a array}

fun Array2.array (r, c, init) : 'a array2 =
  if r <= 0 orelse c <= 0 then raise Size
  else {columns = c, rows = r, v = Array.array (r * c, init)}

fun sub2 ({columns, rows, v} : 'a array2, s : int, t : int) =
  if s < 0 orelse s >= rows orelse t < 0 orelse t >= columns then raise Subscript
  else unsafe_sub (v, t + s * columns)

fun update2 ({columns, rows, v} : 'a array2, s : int, t : int, x) =
  if s < 0 orelse s >= rows orelse t < 0 orelse t >= columns then raise Subscript
  else unsafe_update (v, t + s * columns, x)

fun Array2.rows ({rows, ...} : 'a array2) = rows
fun Array2.columns ({columns, ...} : 'a array2) = columns
