//! The compilation-unit split: a *prelude unit* elaborated once and a
//! *user unit* elaborated against its snapshot, joined at elaboration.
//!
//! The prelude is elaborated with a continuation that returns a fresh
//! free variable — the *hole* — instead of the usual `()` body, so the
//! result is a fully zonked Lambda *skeleton* `let p₁ = … in … in hole`
//! plus the complete post-prelude elaborator state. Each `compile()`
//! then clones that state (unifier, scopes, supplies — a few maps),
//! elaborates only the user declarations inside it, and splices the
//! user body into a copy of the skeleton at the hole. Both the cold and
//! the warm path run this same code, so cached-prelude compiles are
//! byte-identical to cold compiles *by construction*; the cache only
//! changes whether [`prelude_unit`] runs once or every time.
//!
//! Variable supplies are partitioned by the clone: the user unit's
//! fresh variables continue from the snapshot's supply, exactly where a
//! joint elaboration would have continued after the prelude (plus the
//! hole), so ids never collide with skeleton ids.

use crate::elab::{Elab, Elaborated};
use til_common::{Result, Var, VarSupply};
use til_lambda::ty::LTy;
use til_lambda::{LExp, LProgram};
use til_syntax::ast;

/// The cached prelude unit: the post-prelude elaborator snapshot and
/// the zonked skeleton with its splice hole.
pub struct PreludeUnit {
    /// Elaborator state at the hole (post-zonk): scopes, unifier,
    /// datatype/exception environments, variable supplies.
    elab: Elab,
    /// The zonked prelude spine; its innermost body is `Var(hole)`.
    skeleton: LExp,
    /// The unique unit-typed hole variable.
    hole: Var,
}

impl PreludeUnit {
    /// The splice hole.
    pub fn hole(&self) -> Var {
        self.hole
    }

    /// The zonked prelude skeleton (innermost body = the hole).
    pub fn skeleton(&self) -> &LExp {
        &self.skeleton
    }

    /// A skeleton-as-program view for the Lambda typechecker's
    /// prelude entry point (body type is unit: the hole is unit-typed
    /// and the skeleton is a chain of binders around it).
    pub fn skeleton_program(&self) -> LProgram {
        LProgram {
            data_env: self.elab.denv.clone(),
            exn_env: self.elab.eenv.clone(),
            body: self.skeleton.clone(),
            body_ty: LTy::unit(),
        }
    }

    /// The term-variable supply as of the snapshot (for callers that
    /// must pre-allocate ids between prelude conversion and user
    /// elaboration — see the Lmli-level cache).
    pub fn vars(&self) -> VarSupply {
        self.elab.vs.clone()
    }
}

/// Elaborates the prelude alone into a reusable [`PreludeUnit`].
pub fn prelude_unit(prelude: &ast::Program) -> Result<PreludeUnit> {
    let mut e = Elab::new();
    let decs: Vec<&ast::Dec> = prelude.decs.iter().collect();
    let mut hole = None;
    let (mut skeleton, _unit_ty) = e.elab_decs(&decs, &mut |me| {
        let h = me.vs.fresh_named("prelude_hole");
        hole = Some(h);
        Ok((
            LExp::Var {
                var: h,
                tyargs: vec![],
            },
            LTy::unit(),
        ))
    })?;
    // Zonk the skeleton now: prelude-side unification is complete (the
    // user unit can only *instantiate* generalized prelude schemes, it
    // can never constrain a prelude unification variable), so the
    // skeleton's types are final. The unifier keeps its links for
    // resolving scheme bodies during user elaboration.
    crate::zonk::zonk_exp(&mut skeleton, &mut e.un)?;
    let hole = hole.expect("elab_decs always calls its continuation");
    Ok(PreludeUnit {
        elab: e,
        skeleton,
        hole,
    })
}

/// The user unit elaborated against a prelude snapshot: the typed user
/// body (not yet spliced) plus the joined environments and supplies.
pub struct UserUnit {
    /// The user declarations' spine around a `()` body, zonked.
    pub body: LExp,
    /// Datatypes: the prelude's (a stable id prefix) plus the user's.
    pub data_env: til_lambda::DataEnv,
    /// Exceptions, likewise.
    pub exn_env: til_lambda::ExnEnv,
    /// Term-variable supply after user elaboration.
    pub vars: VarSupply,
    /// Type-variable supply after user elaboration.
    pub tyvars: til_lambda::ty::TyVarSupply,
}

/// Elaborates the user program against the prelude snapshot without
/// splicing. `vars` overrides the snapshot's term-variable supply when
/// the caller has already consumed ids past it (the Lmli-level cache
/// converts the skeleton first, so user elaboration must start after
/// the conversion's last id).
pub fn elaborate_user_fragment(
    unit: &PreludeUnit,
    user: &ast::Program,
    vars: Option<VarSupply>,
) -> Result<UserUnit> {
    let mut e = unit.elab.clone();
    if let Some(vs) = vars {
        e.vs = vs;
    }
    let decs: Vec<&ast::Dec> = user.decs.iter().collect();
    let (mut body, body_ty) = e.elab_decs(&decs, &mut |_me| Ok((LExp::unit(), LTy::unit())))?;
    crate::zonk::zonk_exp(&mut body, &mut e.un).and_then(|()| e.un.zonk(&body_ty))?;
    Ok(UserUnit {
        body,
        data_env: e.denv,
        exn_env: e.eenv,
        vars: e.vs,
        tyvars: e.tvs,
    })
}

/// Elaborates the user program against the prelude snapshot and
/// splices it into the skeleton: the drop-in replacement for a joint
/// `elaborate(&[prelude, user])`.
pub fn elaborate_user(unit: &PreludeUnit, user: &ast::Program) -> Result<Elaborated> {
    let u = elaborate_user_fragment(unit, user, None)?;
    let mut body = unit.skeleton.clone();
    let spliced = body.splice_var(unit.hole, &u.body);
    debug_assert_eq!(spliced, 1, "the skeleton has exactly one hole");
    Ok(Elaborated {
        program: LProgram {
            data_env: u.data_env,
            exn_env: u.exn_env,
            body,
            body_ty: LTy::unit(),
        },
        vars: u.vars,
        tyvars: u.tyvars,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ast::Program {
        til_syntax::parse(src).expect("parse")
    }

    #[test]
    fn split_elaboration_matches_typechecking() {
        let unit = prelude_unit(&parse(crate::PRELUDE)).expect("prelude");
        let user = parse("val x = 1 + 2\nval _ = print (Int.toString x)");
        let e = elaborate_user(&unit, &user).expect("user");
        til_lambda::typecheck(&e.program).expect("spliced program typechecks");
    }

    #[test]
    fn snapshot_is_reusable_across_compiles() {
        let unit = prelude_unit(&parse(crate::PRELUDE)).expect("prelude");
        let a1 = elaborate_user(&unit, &parse("val _ = print \"a\"")).expect("a1");
        let a2 = elaborate_user(&unit, &parse("val _ = print \"a\"")).expect("a2");
        // Deterministic: same source, same snapshot, same program.
        assert_eq!(
            format!("{:?}", a1.program.body),
            format!("{:?}", a2.program.body)
        );
        // And the snapshot is untouched by user-side datatypes.
        let with_data = parse("datatype t = A | B val _ = print \"b\"");
        elaborate_user(&unit, &with_data).expect("user datatypes extend the env");
        elaborate_user(&unit, &parse("val _ = print \"a\"")).expect("still clean");
    }

    #[test]
    fn user_fragment_typechecks_under_the_captured_env() {
        let unit = prelude_unit(&parse(crate::PRELUDE)).expect("prelude");
        let env = til_lambda::typecheck::typecheck_prelude(&unit.skeleton_program(), unit.hole())
            .expect("skeleton typechecks");
        let u = elaborate_user_fragment(&unit, &parse("val _ = print (Int.toString (length [1,2]))"), None)
            .expect("fragment");
        let frag = LProgram {
            data_env: u.data_env,
            exn_env: u.exn_env,
            body: u.body,
            body_ty: LTy::unit(),
        };
        til_lambda::typecheck::typecheck_fragment(&frag, &env).expect("fragment typechecks");
    }
}
