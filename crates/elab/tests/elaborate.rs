//! End-to-end front-end tests: parse → elaborate → Lambda typecheck.

use til_elab::elaborate_source;
use til_lambda::typecheck;

fn ok(src: &str) {
    let e = elaborate_source(src).unwrap_or_else(|d| panic!("elaboration failed: {d}"));
    typecheck(&e.program).unwrap_or_else(|d| panic!("lambda typecheck failed: {d}"));
}

fn user_err(src: &str) {
    match elaborate_source(src) {
        Err(d) => assert_eq!(d.level, til_common::Level::Error, "expected user error, got {d}"),
        Ok(_) => panic!("expected elaboration to fail"),
    }
}

#[test]
fn prelude_alone_typechecks() {
    ok("");
}

#[test]
fn simple_arithmetic() {
    ok("val x = 1 + 2 * 3");
}

#[test]
fn overloading_resolves_real() {
    ok("val x = 1.5 + 2.5 val y = x * x");
}

#[test]
fn overloading_defaults_int() {
    ok("fun double x = x + x val a = double 21");
}

#[test]
fn polymorphic_identity() {
    ok("fun id x = x val a = id 1 val b = id \"s\" val c = id (id 1.0)");
}

#[test]
fn lists_and_map() {
    ok("val xs = map (fn x => x + 1) [1, 2, 3] val n = length xs");
}

#[test]
fn datatype_and_case() {
    ok("datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree
        fun sum Leaf = 0 | sum (Node (l, x, r)) = sum l + x + sum r
        val t = Node (Node (Leaf, 1, Leaf), 2, Leaf)
        val s = sum t");
}

#[test]
fn mutual_recursion() {
    ok("fun even 0 = true | even n = odd (n - 1) and odd 0 = false | odd n = even (n - 1)
        val t = even 10");
}

#[test]
fn exceptions_and_handle() {
    ok("exception Bad of int
        fun f x = if x < 0 then raise Bad x else x
        val y = (f (~1)) handle Bad n => n | Subscript => 0");
}

#[test]
fn refs_and_while() {
    ok("val r = ref 0
        val _ = while !r < 10 do r := !r + 1
        val v = !r");
}

#[test]
fn records_and_selectors() {
    ok("val p = {name = \"x\", age = 40}
        val a = #age p
        fun get r = #name r : string
        val n = get p");
}

#[test]
fn flexible_record_pattern_with_annotation() {
    ok("type t = {x : int, y : real}
        fun getx ({x, ...} : t) = x
        val v = getx {x = 1, y = 2.0}");
}

#[test]
fn arrays_and_bounds() {
    ok("val a = Array.array (10, 0)
        val _ = Array.update (a, 3, 42)
        val v = Array.sub (a, 3)");
}

#[test]
fn two_dimensional_arrays() {
    ok("val m = Array2.array (3, 4, 0.0)
        val _ = update2 (m, 1, 2, 5.0)
        val v = sub2 (m, 1, 2)");
}

#[test]
fn dot_product_from_the_paper() {
    // The paper's Section 4 example, adapted to our prelude names.
    ok("val n = 8
        val A = Array2.array (n, n, 0)
        val B = Array2.array (n, n, 0)
        fun dot (i, j, bound) =
          let fun go (cnt, sum) =
                if cnt < bound
                then go (cnt + 1, sum + sub2 (A, i, cnt) * sub2 (B, cnt, j))
                else sum
          in go (0, 0) end
        val r = dot (0, 0, n)");
}

#[test]
fn polymorphic_equality() {
    ok("val a = [1, 2] = [1, 2]
        val b = \"x\" = \"y\"
        val c = (1, 2.0) <> (1, 3.0)");
}

#[test]
fn higher_order_and_composition() {
    ok("val f = (fn x => x + 1) o (fn x => x * 2)
        val v = f 10
        val g = foldl (fn (x, acc) => x + acc) 0 [1, 2, 3]");
}

#[test]
fn string_library() {
    ok("val s = implode [#\"h\", #\"i\"]
        val c = String.sub (s, 0)
        val e = explode s
        val cmp = String.compare (\"a\", \"b\")
        val lt = \"abc\" < \"abd\"");
}

#[test]
fn string_patterns() {
    ok("fun kind \"if\" = 1 | kind \"then\" = 2 | kind _ = 0
        val k = kind \"then\"");
}

#[test]
fn as_patterns_and_nested() {
    ok("fun firstTwo (l as x :: y :: _) = SOME (l, x, y)
          | firstTwo _ = NONE");
}

#[test]
fn value_restriction_monomorphizes() {
    // `ref nil` must not generalize; using it at two types is an error.
    user_err("val r = ref nil
              val _ = r := [1]
              val _ = r := [\"s\"]");
}

#[test]
fn type_error_is_reported() {
    user_err("val x = 1 + \"two\"");
}

#[test]
fn unbound_variable_is_reported() {
    user_err("val x = mystery_function 3");
}

#[test]
fn arity_error_in_clauses() {
    user_err("fun f x = 1 | f x y = 2");
}

#[test]
fn options_from_prelude() {
    ok("val x = valOf (SOME 3)
        val y = getOpt (NONE, 7)
        val z = isSome (SOME \"a\")");
}

#[test]
fn case_on_order() {
    ok("val r = case Int.compare (1, 2) of LESS => ~1 | EQUAL => 0 | GREATER => 1");
}

#[test]
fn word_ops() {
    ok("val w = andb (orb (0w12, 0w5), 0xff) val s = lsl (1, 4)");
}
