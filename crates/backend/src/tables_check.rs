//! Cross-check of the nearly-tag-free GC tables against liveness
//! (paper §2.3): the collector's only knowledge of the mutator is the
//! per-site tables, so a missing or stale entry is a silent
//! memory-corruption bug. This check recomputes, for every GC point
//! and call site, the set of pointer-typed frame slots that are live
//! there and demands the emitted table describe exactly that set:
//!
//! * every live `Trace`- or `Computed`-representation value that the
//!   allocator spilled to a frame slot must be described by a table
//!   entry (a `Trace` descriptor, or a `Computed` descriptor naming
//!   its companion type slot);
//! * no table entry may name a slot that is dead at that site (tracing
//!   a stale slot resurrects garbage or chases a dangling pointer);
//! * a `Computed` descriptor's companion slot must be in bounds for
//!   the frame.
//!
//! Only nearly-tag-free mode has these tables; tagged (baseline) mode
//! is vacuously fine.

use crate::emit::{emit_fun, EmittedFun};
use crate::regalloc::{allocate, Alloc, Loc};
use std::collections::BTreeMap;
use til_common::{Diagnostic, Result, Tracer};
use til_runtime::{FrameInfo, LocRep, RepLoc};
use til_rtl::{RRep, RtlFun, RtlProgram, VReg};

/// Verifies the GC tables of a whole program by re-deriving every
/// function's allocation and emission. Call targets and static
/// addresses do not influence the tables, so the re-emission uses
/// placeholder addresses.
pub fn check_gc_tables(p: &RtlProgram) -> Result<()> {
    check_gc_tables_jobs(p, 1, None)
}

/// [`check_gc_tables`] on up to `jobs` worker threads, one function
/// per task; the first failure in function order is reported. With a
/// tracer, each function's check records its own span.
pub fn check_gc_tables_jobs(p: &RtlProgram, jobs: usize, tracer: Option<&Tracer>) -> Result<()> {
    if p.tagged {
        return Ok(());
    }
    let statics_addr = vec![0u64; p.statics.len()];
    let span = tracer.map(|t| t.span("gc-check-functions"));
    let results = til_common::par::map_traced(jobs, &p.funs, tracer, |_, f, t| {
        let _span = t.map(|t| t.span(format!("gc-check {}", fun_name(f))));
        let al = allocate(f);
        let em = emit_fun(f, &al, false, &statics_addr);
        check_fun_tables(f, &al, &em)
    });
    drop(span);
    results.into_iter().collect()
}

fn slot_byte_off(slot: u32) -> u32 {
    8 * (1 + slot)
}

fn fun_name(f: &RtlFun) -> String {
    f.name.map(|v| v.to_string()).unwrap_or_else(|| "<entry>".to_string())
}

/// The pointer-typed frame slots live in `live`, as the emitter must
/// describe them: byte offset → descriptor.
fn expected_slots(
    f: &RtlFun,
    al: &Alloc,
    live: &std::collections::HashSet<VReg>,
) -> BTreeMap<u32, LocRep> {
    let mut out = BTreeMap::new();
    for v in live {
        let Some(Loc::Slot(s)) = al.loc.get(v).copied() else {
            continue;
        };
        let rep = match f.reps.get(v) {
            Some(RRep::Trace) => LocRep::Trace,
            Some(RRep::Computed(rv)) => match al.loc.get(rv).copied() {
                Some(Loc::Slot(rs)) => LocRep::Computed(RepLoc::Slot(slot_byte_off(rs))),
                // Register-resident rep: the emitter conservatively
                // marks the value unconditionally traced.
                _ => LocRep::Trace,
            },
            _ => continue,
        };
        out.insert(slot_byte_off(s), rep);
    }
    out
}

fn check_site(
    f: &RtlFun,
    al: &Alloc,
    what: &str,
    rtl_at: usize,
    live: &std::collections::HashSet<VReg>,
    fi: &FrameInfo,
) -> Result<()> {
    let err = |msg: String| {
        Diagnostic::ice(
            "gc-check",
            format!("fun {} {what} at rtl instr {rtl_at}: {msg}", fun_name(f)),
        )
    };
    let expected = expected_slots(f, al, live);
    let mut actual: BTreeMap<u32, LocRep> = BTreeMap::new();
    for (off, rep) in &fi.slots {
        if actual.insert(*off, *rep).is_some() {
            return Err(err(format!("frame slot offset {off} described twice")));
        }
    }
    for (off, rep) in &expected {
        match actual.get(off) {
            None => {
                return Err(err(format!(
                    "live pointer slot at frame offset {off} has no table entry"
                )));
            }
            Some(got) if got != rep => {
                return Err(err(format!(
                    "slot at frame offset {off} described as {got:?}, liveness says {rep:?}"
                )));
            }
            Some(_) => {}
        }
    }
    for (off, rep) in &actual {
        if !expected.contains_key(off) {
            return Err(err(format!(
                "table entry at frame offset {off} names a dead slot"
            )));
        }
        if let LocRep::Computed(RepLoc::Slot(roff)) = rep {
            if *roff >= fi.size {
                return Err(err(format!(
                    "computed descriptor's companion slot {roff} is outside the {}-byte frame",
                    fi.size
                )));
            }
        }
    }
    Ok(())
}

/// Cross-checks one function's emitted tables against its own
/// liveness and allocation.
pub fn check_fun_tables(f: &RtlFun, al: &Alloc, em: &EmittedFun) -> Result<()> {
    for (_, rtl_at, point) in &em.gc_points {
        if *rtl_at == usize::MAX {
            continue; // baseline prologue point; tagged mode has no tables
        }
        check_site(
            f,
            al,
            "gc point",
            *rtl_at,
            &al.live.live_in[*rtl_at],
            &point.frame,
        )?;
    }
    for (_, rtl_at, fi) in &em.call_sites {
        check_site(f, al, "call site", *rtl_at, &al.live.live_out[*rtl_at], fi)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use til_common::VarSupply;
    use til_rtl::{CallTarget, RInstr, ROp};

    /// A function with one traced value live across a call: the
    /// allocator must spill it, and the call-site table must describe
    /// the spill slot.
    fn fun_with_spilled_pointer() -> RtlFun {
        let mut vs = VarSupply::new();
        let callee = vs.fresh_named("callee");
        let v0: VReg = 0; // traced parameter, live across the call
        let v1: VReg = 1; // call result
        let mut reps = std::collections::HashMap::new();
        reps.insert(v0, RRep::Trace);
        reps.insert(v1, RRep::Int);
        RtlFun {
            name: Some(vs.fresh_named("f")),
            params: vec![v0],
            instrs: vec![
                RInstr::Call {
                    target: CallTarget::Code(callee),
                    args: vec![],
                    dst: Some(v1),
                },
                RInstr::Mov {
                    dst: v1,
                    src: ROp::V(v0),
                },
                RInstr::Ret(Some(v1)),
            ],
            reps,
            nlabels: 0,
            nhandlers: 0,
        }
    }

    fn emitted(f: &RtlFun) -> (Alloc, EmittedFun) {
        let al = allocate(f);
        let em = emit_fun(f, &al, false, &[]);
        (al, em)
    }

    #[test]
    fn intact_tables_pass() {
        let f = fun_with_spilled_pointer();
        let (al, em) = emitted(&f);
        // The scenario only tests something if the pointer really was
        // spilled and recorded.
        assert!(em.call_sites.iter().any(|(_, _, fi)| !fi.slots.is_empty()));
        check_fun_tables(&f, &al, &em).unwrap();
    }

    #[test]
    fn missing_descriptor_for_live_pointer_slot_is_rejected() {
        let f = fun_with_spilled_pointer();
        let (al, mut em) = emitted(&f);
        for (_, _, fi) in &mut em.call_sites {
            fi.slots.clear();
        }
        let err = check_fun_tables(&f, &al, &em).unwrap_err();
        assert!(
            err.message.contains("no table entry"),
            "unexpected diagnostic: {}",
            err.message
        );
    }

    #[test]
    fn entry_naming_dead_slot_is_rejected() {
        let f = fun_with_spilled_pointer();
        let (al, mut em) = emitted(&f);
        let bogus_off = slot_byte_off(al.nslots + 7);
        for (_, _, fi) in &mut em.call_sites {
            fi.slots.push((bogus_off, LocRep::Trace));
        }
        let err = check_fun_tables(&f, &al, &em).unwrap_err();
        assert!(
            err.message.contains("dead slot"),
            "unexpected diagnostic: {}",
            err.message
        );
    }
}
