//! Register allocation (paper §3.7): values live across calls (all
//! registers are caller-save in our convention) get stack-frame slots
//! — which is exactly what the nearly tag-free GC tables describe —
//! and the remaining, call-free live ranges are colored by
//! Chaitin-style graph coloring over the target's allocatable
//! registers (described by a [`RegFile`], so every [`til_lir::Target`]
//! shares this allocator). Tail calls keep loop-carried values in
//! registers (nothing is live across a tail call), so tight loops run
//! register-resident, as in the paper's Figure 7.

use crate::liveness::{defs, liveness, uses, Liveness};
use std::collections::{HashMap, HashSet};
use til_lir::RegFile;
use til_rtl::{RInstr, RtlFun, VReg};

pub use til_lir::Loc;

/// Number of colorable registers on the VM target (r0..r21; r22/r23
/// are backend scratch, r24+ are special).
pub const K: usize = crate::targets::vm::VM_REG_FILE.allocatable;

/// Allocation result.
pub struct Alloc {
    /// vreg locations.
    pub loc: HashMap<VReg, Loc>,
    /// Number of frame slots used.
    pub nslots: u32,
    /// Liveness (reused by the emitter for GC tables).
    pub live: Liveness,
}

fn is_call(i: &RInstr) -> bool {
    matches!(
        i,
        RInstr::Call { .. } | RInstr::CallRt { .. } | RInstr::PushHandler { .. }
    )
}

/// Allocates registers and slots for one function against the VM
/// target's register file.
pub fn allocate(f: &RtlFun) -> Alloc {
    allocate_for(f, &crate::targets::vm::VM_REG_FILE)
}

/// Allocates registers and slots for one function against an arbitrary
/// target register file: colors `0..rf.allocatable` are handed out,
/// everything else spills to frame slots. Colors `0..rf.num_args` are
/// the argument registers of the target's convention.
pub fn allocate_for(f: &RtlFun, rf: &RegFile) -> Alloc {
    let live = liveness(f);
    // 1. Values live across calls (or into handlers) get slots.
    let mut slotted: HashSet<VReg> = HashSet::new();
    for (i, ins) in f.instrs.iter().enumerate() {
        if is_call(ins) {
            for v in &live.live_out[i] {
                if Some(*v) != defs(ins) {
                    slotted.insert(*v);
                }
            }
        }
    }
    // 2. Color the rest; on failure move more vregs to slots.
    let mut loc: HashMap<VReg, Loc> = HashMap::new();
    loop {
        match try_color(f, &live, &slotted, rf.allocatable) {
            Ok(colors) => {
                for (v, c) in colors {
                    loc.insert(v, Loc::Reg(c));
                }
                break;
            }
            Err(spill) => {
                slotted.insert(spill);
            }
        }
    }
    let mut slots: Vec<VReg> = slotted.into_iter().collect();
    slots.sort();
    for (i, v) in slots.iter().enumerate() {
        loc.insert(*v, Loc::Slot(i as u32));
    }
    Alloc {
        loc,
        nslots: slots.len() as u32,
        live,
    }
}

/// Builds the interference graph over non-slotted vregs and colors it;
/// returns a spill candidate on failure.
fn try_color(
    f: &RtlFun,
    live: &Liveness,
    slotted: &HashSet<VReg>,
    k: usize,
) -> Result<HashMap<VReg, u8>, VReg> {
    let mut nodes: HashSet<VReg> = HashSet::new();
    for ins in &f.instrs {
        if let Some(d) = defs(ins) {
            nodes.insert(d);
        }
        for u in uses(ins) {
            nodes.insert(u);
        }
    }
    for p in &f.params {
        nodes.insert(*p);
    }
    nodes.retain(|v| !slotted.contains(v));
    let mut adj: HashMap<VReg, HashSet<VReg>> = nodes
        .iter()
        .map(|v| (*v, HashSet::new()))
        .collect();
    let add_edge = |adj: &mut HashMap<VReg, HashSet<VReg>>, a: VReg, b: VReg| {
        if a != b {
            if let Some(s) = adj.get_mut(&a) {
                s.insert(b);
            }
            if let Some(s) = adj.get_mut(&b) {
                s.insert(a);
            }
        }
    };
    // Parameters are mutually live at entry.
    for (i, a) in f.params.iter().enumerate() {
        for b in &f.params[i + 1..] {
            add_edge(&mut adj, *a, *b);
        }
    }
    for (i, ins) in f.instrs.iter().enumerate() {
        if let Some(d) = defs(ins) {
            if !slotted.contains(&d) {
                for v in &live.live_out[i] {
                    if !slotted.contains(v) {
                        add_edge(&mut adj, d, *v);
                    }
                }
            }
        }
    }
    // Simplify with optimistic coloring.
    let mut degree: HashMap<VReg, usize> = adj.iter().map(|(v, s)| (*v, s.len())).collect();
    let mut stack: Vec<VReg> = Vec::new();
    let mut removed: HashSet<VReg> = HashSet::new();
    let mut work: Vec<VReg> = nodes.iter().copied().collect();
    work.sort();
    while removed.len() < nodes.len() {
        // Pick a low-degree node, else the highest-degree one.
        let pick = work
            .iter()
            .filter(|v| !removed.contains(v))
            .min_by_key(|v| {
                let d = degree[v];
                if d < k {
                    (0usize, d)
                } else {
                    (1usize, usize::MAX - d)
                }
            })
            .copied()
            .expect("nonempty");
        removed.insert(pick);
        stack.push(pick);
        for n in &adj[&pick] {
            if let Some(d) = degree.get_mut(n) {
                *d = d.saturating_sub(1);
            }
        }
    }
    // Assign colors in reverse removal order.
    let mut colors: HashMap<VReg, u8> = HashMap::new();
    while let Some(v) = stack.pop() {
        let used: HashSet<u8> = adj[&v]
            .iter()
            .filter_map(|n| colors.get(n).copied())
            .collect();
        match (0..k as u8).find(|c| !used.contains(c)) {
            Some(c) => {
                colors.insert(v, c);
            }
            None => return Err(v),
        }
    }
    Ok(colors)
}
