//! The backend (paper §3.7): register allocation, RTL → LIR lowering,
//! frame construction, GC-table generation, machine-code emission,
//! and linking. Code generation is split target-independent /
//! per-target: [`emit`] lowers allocated RTL into [`til_lir`]'s IR,
//! and the [`targets`] module holds the [`til_lir::Target`] impls —
//! the simulated ALPHA-style VM (the reference target, linked and
//! run) and textual x86-64 (assembly with re-derived GC stack maps).

pub mod emit;
pub mod link;
pub mod liveness;
pub mod mcv;
pub mod regalloc;
pub mod tables_check;
pub mod targets;

pub use link::{fun_label, link, Linked, LinkOptions};
pub use tables_check::{check_gc_tables, check_gc_tables_jobs};
pub use targets::x64::{emit_x64, X64Module};
