//! The backend (paper §3.7): register allocation, frame construction,
//! GC-table generation, machine-code emission, and linking for the
//! simulated ALPHA-style target.

pub mod emit;
pub mod link;
pub mod liveness;
pub mod mcv;
pub mod regalloc;
pub mod tables_check;

pub use link::{fun_label, link, Linked, LinkOptions};
pub use tables_check::{check_gc_tables, check_gc_tables_jobs};
