//! RTL → LIR lowering: after register allocation, RTL functions are
//! lowered into the target-independent [`LirFun`] form — the same
//! operation vocabulary, but with the allocator's [`Assignment`]
//! attached, a [`SafePoint`] (sorted live-in/live-out virtual-register
//! sets) embedded on every instruction that can reach a collection or
//! a stack walk, and the calling-convention [`FunSig`] resolved.
//! Instruction selection proper lives in [`crate::targets`]; each
//! [`til_lir::Target`] consumes the LIR produced here.
//!
//! [`emit_fun`] is the VM-target pipeline entry: lower, then select
//! with [`crate::targets::vm::VmTarget`].

use crate::regalloc::Alloc;
use til_lir::{Assignment, LInstr, LirFun, SafePoint, TargetCtx};
use til_rtl::{RInstr, RtlFun, VReg};

pub use crate::targets::vm::EmittedFun;
pub use til_lir::{FunSig, MRep, Reloc};

/// Lowers one allocated RTL function into LIR.
pub fn lower_fun(f: &RtlFun, al: &Alloc, tagged: bool) -> LirFun {
    let safe_point = |i: usize| {
        let mut live_in: Vec<VReg> = al.live.live_in[i].iter().copied().collect();
        live_in.sort_unstable();
        let mut live_out: Vec<VReg> = al.live.live_out[i].iter().copied().collect();
        live_out.sort_unstable();
        SafePoint {
            rtl_at: i,
            live_in,
            live_out,
        }
    };
    let instrs = f
        .instrs
        .iter()
        .enumerate()
        .map(|(i, ins)| match ins {
            RInstr::Mov { dst, src } => LInstr::Mov {
                dst: *dst,
                src: *src,
            },
            RInstr::Alu { op, dst, a, b } => LInstr::Alu {
                op: *op,
                dst: *dst,
                a: *a,
                b: *b,
            },
            RInstr::Falu { op, dst, a, b } => LInstr::Falu {
                op: *op,
                dst: *dst,
                a: *a,
                b: *b,
            },
            RInstr::Itof { dst, a } => LInstr::Itof { dst: *dst, a: *a },
            RInstr::Ld { dst, base, off } => LInstr::Ld {
                dst: *dst,
                base: *base,
                off: *off,
            },
            RInstr::St { src, base, off } => LInstr::St {
                src: *src,
                base: *base,
                off: *off,
            },
            RInstr::LdGlobal { dst, gid } => LInstr::LdGlobal {
                dst: *dst,
                gid: *gid,
            },
            RInstr::StGlobal { src, gid } => LInstr::StGlobal {
                src: *src,
                gid: *gid,
            },
            RInstr::LeaCode { dst, code } => LInstr::LeaCode {
                dst: *dst,
                code: *code,
            },
            RInstr::LeaStatic { dst, obj } => LInstr::LeaStatic {
                dst: *dst,
                obj: *obj,
            },
            RInstr::Label(l) => LInstr::Label(*l),
            RInstr::Br(l) => LInstr::Br(*l),
            RInstr::Beqz(v, l) => LInstr::Beqz(*v, *l),
            RInstr::Bnez(v, l) => LInstr::Bnez(*v, *l),
            RInstr::Call { target, args, dst } => LInstr::Call {
                target: *target,
                args: args.clone(),
                dst: *dst,
                sp: safe_point(i),
            },
            RInstr::TailCall { target, args } => LInstr::TailCall {
                target: *target,
                args: args.clone(),
            },
            RInstr::CallRt { f, args, dst, alloc } => LInstr::CallRt {
                f: *f,
                args: args.clone(),
                dst: *dst,
                alloc: *alloc,
                sp: safe_point(i),
            },
            RInstr::Ret(v) => LInstr::Ret(*v),
            RInstr::Alloc { dst, head, fields } => LInstr::Alloc {
                dst: *dst,
                head: *head,
                fields: fields.clone(),
                sp: safe_point(i),
            },
            RInstr::AllocArr {
                dst,
                kind,
                len,
                init,
            } => LInstr::AllocArr {
                dst: *dst,
                kind: *kind,
                len: *len,
                init: *init,
                sp: safe_point(i),
            },
            RInstr::PushHandler { lbl, idx } => LInstr::PushHandler {
                lbl: *lbl,
                idx: *idx,
            },
            RInstr::PopHandler { idx } => LInstr::PopHandler { idx: *idx },
            RInstr::HandlerEntry { dst } => LInstr::HandlerEntry { dst: *dst },
            RInstr::Raise { packet } => LInstr::Raise { packet: *packet },
            RInstr::TrapIf { cond, trap } => LInstr::TrapIf {
                cond: *cond,
                trap: *trap,
            },
        })
        .collect();
    LirFun {
        name: f.name,
        params: f.params.clone(),
        reps: f.reps.clone(),
        nhandlers: f.nhandlers,
        instrs,
        assign: Assignment {
            loc: al.loc.clone(),
            nslots: al.nslots,
        },
        sig: til_lir::fun_sig(f, tagged),
    }
}

/// Emits one function for the VM target: lower to LIR, then select.
pub fn emit_fun(
    f: &RtlFun,
    al: &Alloc,
    tagged: bool,
    statics_addr: &[u64],
) -> EmittedFun {
    use til_lir::Target as _;
    let lir = lower_fun(f, al, tagged);
    crate::targets::vm::VmTarget.select_fun(
        &lir,
        &TargetCtx {
            tagged,
            statics_addr,
        },
    )
}
