//! The machine-code verifier (`mc-verify`): a static
//! abstract-interpretation pass over the *linked* til-vm unit that
//! extends the paper's per-pass checking discipline through register
//! allocation, emission, and linking — the stages where representation
//! bugs (traced vs. untraced, §2.3) become silent heap corruption.
//!
//! Per function (over [`Linked::fun_ranges`]), a worklist dataflow
//! runs over basic blocks with an abstract machine state: each integer
//! register and stack slot carries an [`Abs`] class (⊥ / untraced /
//! traced / tagged / code / interior / stale / unknown / ⊤). The pass
//! verifies, without executing anything:
//!
//! 1. **Control-flow integrity** — every branch lands inside the
//!    function, on a function entry (tail call), or on a trap stub;
//!    every `Jsr` targets a function entry; every load/store base is a
//!    provably plausible pointer class; every `Lea` (a handler
//!    install) targets a block inside the function.
//!
//!    Handler targets are legal join points with their own flow rule:
//!    from the installing `Lea` to the uninstalling `Ld EXN ← 0(EXN)`
//!    the verifier keeps an abstract stack of active handlers, and
//!    *every* instruction in the protected region flows its machine
//!    state into each active handler entry (any of them may raise —
//!    calls, arithmetic traps, runtime services). Registers are
//!    clobbered and the packet lands traced in r0, but the frame is
//!    carried over verbatim, so a slot live into a handler must arrive
//!    initialized and collector-covered — Stale or Uninit there is
//!    flagged exactly like on a fall-through path.
//! 2. **Calling convention** — argument and result registers carry the
//!    rep classes the callee's signature demands ([`FunSig`], derived
//!    from the RTL rep annotations and threaded through `emit`), the
//!    stack delta is zero at every return and tail call, and the
//!    return-address slot of every frame descriptor holds a code value.
//! 3. **GC tables re-derived** — at every safe point the abstract
//!    state must *imply* the emitted table: every slot or register the
//!    table claims traced must be abstractly traceable, and every
//!    companion-slot pair must name an initialized companion. This is
//!    an independent re-derivation from the machine code alone —
//!    `check_gc_tables` cross-checks the tables against RTL liveness;
//!    `mc-verify` never sees the RTL.
//! 4. **Nearly tag-free flow rule** — in nearly tag-free mode no
//!    definitely-untraced value flows into a traced position (a
//!    traced-masked record field, a traced global, a traced argument),
//!    enforced post-regalloc where spills and reloads can break it.
//!
//! The key novel class is [`Abs::Stale`]: a pointer the tables did
//! *not* cover at a GC point it was live across. The collector would
//! not have updated it, so any later checked use (load/store base,
//! call argument, table claim, return value) is flagged. Real emitted
//! code never trips this — everything live across a safe point is in
//! the tables — so a `Stale` observation is a definite table bug.
//!
//! What the pass deliberately does **not** prove: termination or fuel
//! bounds (every loop is abstracted by a join), heap well-typedness of
//! loaded values (a load produces ⊤, checked again only when used in a
//! constrained position), or anything about the runtime services
//! beyond their register-preservation contract. Flagging is tuned to
//! *definite* violations: joins go to ⊤ rather than guess, so a clean
//! pass is a soundness statement about the tables and conventions, not
//! a completeness one.

pub mod dataflow;
pub mod fault;
pub mod x64;

use crate::emit::{FunSig, MRep};
use crate::link::Linked;
use dataflow::{Flow, Worklist};
pub use dataflow::{join, Abs};
use std::collections::{BTreeMap, HashMap, HashSet};
use til_common::{Diagnostic, Result, Tracer};
use til_runtime::{FrameInfo, GcMode, GcPoint, LocRep, RepLoc};
use til_rtl::HEAP_BASE;
use til_vm::{code_index, regs, Alu, Instr, Op, RtFn};

/// One installed exception handler, tracked abstractly: the `Lea` of
/// the handler-entry address marks the install (the record stores and
/// the EXN update follow within a few non-trapping instructions), and
/// the `Ld EXN ← 0(EXN)` of `PopHandler` — or of a raise sequence —
/// uninstalls the innermost one.
#[derive(Clone, Copy, PartialEq, Eq)]
struct HandlerCtx {
    /// Handler entry pc (the `Lea` target).
    target: u32,
    /// SP delta at install time — what a raise restores SP to.
    delta: Option<i64>,
}

/// Abstract machine state at one program point.
#[derive(Clone, PartialEq)]
struct State {
    /// Per-register class. HP/HL/SP/ZERO are handled by role (their
    /// entries are ignored on read).
    regs: [Abs; 32],
    /// Frame words, keyed by byte offset relative to the *entry* SP
    /// (an access `off(SP)` under delta `d` touches key `off - d`).
    frame: BTreeMap<i64, Abs>,
    /// Class of frame words not in the map.
    frame_default: Abs,
    /// Bytes SP sits below its entry value; `None` once SP was
    /// assigned from a register (legal only on the terminal raise
    /// path).
    delta: Option<i64>,
    /// The last constant header stored to `0(HP)`, for record-field
    /// mask checks.
    cur_header: Option<u64>,
    /// Active in-function handlers, innermost last. Joins keep the
    /// longest common prefix (a merge point reached with different
    /// handler stacks keeps only the handlers installed on *both*
    /// paths).
    handlers: Vec<HandlerCtx>,
}

impl State {
    fn frame_get(&self, key: i64) -> Abs {
        *self.frame.get(&key).unwrap_or(&self.frame_default)
    }

    fn join_from(&mut self, other: &State) -> bool {
        let mut changed = false;
        for i in 0..32 {
            let j = join(self.regs[i], other.regs[i]);
            if j != self.regs[i] {
                self.regs[i] = j;
                changed = true;
            }
        }
        let keys: Vec<i64> = self
            .frame
            .keys()
            .chain(other.frame.keys())
            .copied()
            .collect();
        let new_default = join(self.frame_default, other.frame_default);
        for k in keys {
            let j = join(self.frame_get(k), other.frame_get(k));
            if self.frame_get(k) != j || !self.frame.contains_key(&k) {
                self.frame.insert(k, j);
                changed = true;
            }
        }
        if new_default != self.frame_default {
            self.frame_default = new_default;
            changed = true;
        }
        if self.delta != other.delta && self.delta.is_some() {
            self.delta = None;
            changed = true;
        }
        if self.cur_header != other.cur_header && self.cur_header.is_some() {
            self.cur_header = None;
            changed = true;
        }
        let common = self
            .handlers
            .iter()
            .zip(other.handlers.iter())
            .take_while(|(a, b)| a == b)
            .count();
        if common < self.handlers.len() {
            self.handlers.truncate(common);
            changed = true;
        }
        changed
    }
}

fn class_of_mrep(m: MRep) -> Abs {
    match m {
        MRep::Untraced => Abs::Untraced,
        MRep::Traced => Abs::Traced,
        MRep::Tagged => Abs::Tagged,
        MRep::Code => Abs::Code,
        MRep::Unknown => Abs::Unknown,
    }
}

/// Classes that definitely cannot sit in a traced position (nearly
/// tag-free mode).
fn definitely_untraced(a: Abs) -> bool {
    matches!(a, Abs::Untraced | Abs::Code | Abs::Uninit | Abs::Stale | Abs::Bot)
}

/// Classes that are definitely not a usable value at all.
fn definitely_unusable(a: Abs) -> bool {
    matches!(a, Abs::Uninit | Abs::Stale | Abs::Bot)
}

/// Runs the machine-code verifier over every function of a linked
/// unit, in parallel (`jobs` workers, per-function `mc-verify <fun>`
/// spans under `tracer`), plus a control-flow-integrity pass over the
/// linker's stub region.
pub fn verify_linked(l: &Linked, jobs: usize, tracer: Option<&Tracer>) -> Result<()> {
    let first_fun = l
        .fun_ranges
        .first()
        .map(|r| r.start)
        .unwrap_or(l.code.len() as u32);
    verify_stubs(l, first_fun)?;
    let entry_of: HashMap<u32, usize> = l
        .fun_ranges
        .iter()
        .enumerate()
        .map(|(i, r)| (r.start, i))
        .collect();
    let trap_starts: HashSet<u32> = l.traps.values().copied().collect();
    let idxs: Vec<usize> = (0..l.fun_ranges.len()).collect();
    let entry_of = &entry_of;
    let trap_starts = &trap_starts;
    let results: Vec<Result<()>> =
        til_common::par::map_traced(jobs, &idxs, tracer, |_, &fi, t| {
            let _span = t.map(|t| t.span(format!("mc-verify {}", l.fun_ranges[fi].name)));
            Fun::new(l, fi, entry_of, trap_starts).run()
        });
    results.into_iter().collect::<Result<Vec<()>>>()?;
    Ok(())
}

/// The stub region (entry, halt, uncaught handler, trap stubs) has no
/// frames or tables; check only that its control flow stays inside the
/// unit and calls land on function entries.
fn verify_stubs(l: &Linked, first_fun: u32) -> Result<()> {
    let len = l.code.len() as u32;
    let entries: HashSet<u32> = l.fun_ranges.iter().map(|r| r.start).collect();
    for pc in 0..first_fun {
        let bad = |what: &str, t: u32| {
            Err(Diagnostic::ice(
                "mc-verify",
                format!("<stub>: pc {pc}: {what} target {t} outside the unit"),
            ))
        };
        match &l.code[pc as usize] {
            Instr::Br(t) | Instr::Beqz(_, t) | Instr::Bnez(_, t) if *t >= len => {
                return bad("branch", *t)
            }
            Instr::Lea { target, .. } if *target >= len => return bad("lea", *target),
            Instr::Jsr(t)
                if !entries.contains(t) => {
                    return Err(Diagnostic::ice(
                        "mc-verify",
                        format!("<stub>: pc {pc}: jsr target {t} is not a function entry"),
                    ));
                }
            _ => {}
        }
    }
    Ok(())
}

struct Fun<'a> {
    l: &'a Linked,
    tagged: bool,
    name: &'a str,
    start: u32,
    end: u32,
    sig: &'a FunSig,
    entry_of: &'a HashMap<u32, usize>,
    trap_starts: &'a HashSet<u32>,
    flow: Worklist<State>,
}

impl<'a> Fun<'a> {
    fn new(
        l: &'a Linked,
        fi: usize,
        entry_of: &'a HashMap<u32, usize>,
        trap_starts: &'a HashSet<u32>,
    ) -> Self {
        let r = &l.fun_ranges[fi];
        Fun {
            l,
            tagged: l.mode == GcMode::Tagged,
            name: &r.name,
            start: r.start,
            end: r.end,
            sig: &l.sigs[fi],
            entry_of,
            trap_starts,
            flow: Worklist::new(),
        }
    }

    fn in_range(&self, pc: u32) -> bool {
        pc >= self.start && pc < self.end
    }

    fn entry_state(&self) -> State {
        let mut st = State {
            regs: [Abs::Any; 32],
            frame: BTreeMap::new(),
            frame_default: Abs::Uninit,
            delta: Some(0),
            cur_header: None,
            handlers: Vec::new(),
        };
        for (i, p) in self.sig.params.iter().enumerate() {
            if i < regs::NUM_ARGS {
                st.regs[i] = class_of_mrep(*p);
            }
        }
        st.regs[regs::RA as usize] = Abs::Code;
        st.regs[regs::EXN as usize] = Abs::Handler;
        st
    }

    /// State on entry to the handler at `depth` of `st.handlers`, as
    /// seen from a raise at the program point owning `st`: the raise
    /// restored SP to its install-time delta, popped the handler (and
    /// everything inside it), clobbered the registers — the raising
    /// path may be arbitrarily deep — and delivered the packet in r0.
    /// The *frame* is carried over verbatim: a raise never rewrites the
    /// protecting frame's slots, so whatever the region's tables did to
    /// them (including leaving a live pointer Stale at an uncovered
    /// safe point) is exactly what the handler observes.
    fn handler_entry_state(&self, st: &State, depth: usize) -> State {
        let mut hs = State {
            regs: [Abs::Any; 32],
            frame: st.frame.clone(),
            frame_default: st.frame_default,
            delta: st.handlers[depth].delta,
            cur_header: None,
            handlers: st.handlers[..depth].to_vec(),
        };
        hs.regs[0] = Abs::Traced;
        hs.regs[regs::EXN as usize] = Abs::Handler;
        hs
    }

    fn fail(&self, pc: u32, st: &State, msg: &str) -> Diagnostic {
        let mut dump = String::new();
        for (i, a) in st.regs.iter().enumerate() {
            if *a != Abs::Any && !matches!(i as u8, regs::HP | regs::HL | regs::SP | regs::ZERO) {
                dump.push_str(&format!(" r{i}={a:?}"));
            }
        }
        let delta = match st.delta {
            Some(d) => d.to_string(),
            None => "?".into(),
        };
        let mut frame = String::new();
        for (k, a) in &st.frame {
            if *a != st.frame_default {
                frame.push_str(&format!(" [{k}]={a:?}"));
            }
        }
        Diagnostic::ice(
            "mc-verify",
            format!(
                "{}: pc {pc} ({}): {msg}\n  regs:{dump}\n  frame(delta={delta}, default={:?}):{frame}",
                self.name, self.l.code[pc as usize], st.frame_default
            ),
        )
    }

    /// Reads a register's class; dedicated-role registers read as their
    /// role.
    fn rd(&self, st: &State, r: u8) -> Abs {
        match r {
            regs::HP => Abs::Traced,
            regs::HL => Abs::Untraced,
            regs::SP => Abs::StackAddr,
            regs::ZERO => Abs::Const(0),
            _ => st.regs[r as usize],
        }
    }

    fn rd_op(&self, st: &State, o: &Op) -> Abs {
        match o {
            Op::I(i) => Abs::Const(*i),
            Op::R(r) => self.rd(st, *r),
        }
    }

    /// Joins `new` into the recorded entry state of leader `pc`,
    /// queueing it on change.
    fn flow_to(&mut self, pc: u32, new: &State) {
        self.flow.flow_to(pc, new, |old, new| old.join_from(new));
    }

    fn run(mut self) -> Result<()> {
        // Block leaders: the entry, every in-range branch/Lea target.
        self.flow.leaders.insert(self.start);
        for pc in self.start..self.end {
            match &self.l.code[pc as usize] {
                Instr::Br(t) | Instr::Beqz(_, t) | Instr::Bnez(_, t)
                    if self.in_range(*t) => {
                        self.flow.leaders.insert(*t);
                    }
                Instr::Lea { target, .. }
                    if self.in_range(*target) => {
                        self.flow.leaders.insert(*target);
                    }
                _ => {}
            }
        }
        self.flow.states.insert(self.start, self.entry_state());
        self.flow.work.push_back(self.start);
        while let Some(leader) = self.flow.work.pop_front() {
            let mut st = self.flow.states[&leader].clone();
            let mut pc = leader;
            loop {
                if pc >= self.end {
                    return Err(self.fail(
                        pc - 1,
                        &st,
                        "control falls off the end of the function",
                    ));
                }
                if pc != leader && self.flow.leaders.contains(&pc) {
                    self.flow_to(pc, &st);
                    break;
                }
                let flow = self.step(pc, &mut st)?;
                // Any instruction of a protected region may raise —
                // calls raise out of callees, arithmetic traps to a
                // stub, runtime services raise Domain/Size — so the
                // state at every point flows into every active handler
                // entry. Handler entries thus join *real* frame
                // states: a slot the region's tables stopped covering
                // arrives Stale and is flagged at its first
                // handler-side use or table claim, instead of being
                // washed out by an all-⊤ seed.
                for depth in 0..st.handlers.len() {
                    let hs = self.handler_entry_state(&st, depth);
                    self.flow_to(st.handlers[depth].target, &hs);
                }
                match flow {
                    Flow::Fall => pc += 1,
                    Flow::CondBranch(t) => {
                        self.flow_to(t, &st);
                        pc += 1;
                    }
                    Flow::Jump(t) => {
                        self.flow_to(t, &st);
                        break;
                    }
                    Flow::Stop => break,
                }
            }
        }
        Ok(())
    }

    // ---------------------------------------------------- instruction step

    fn step(&mut self, pc: u32, st: &mut State) -> Result<Flow> {
        let ins = self.l.code[pc as usize].clone();
        match ins {
            Instr::Mov { dst, src } => {
                let cls = match src {
                    Op::I(i) => Abs::Const(i),
                    Op::R(r) => self.rd(st, r),
                };
                self.write_reg(pc, st, dst, cls)?;
                Ok(Flow::Fall)
            }
            Instr::Alu { op, dst, a, b } => {
                let ca = self.rd(st, a);
                let cb = self.rd_op(st, &b);
                // SP arithmetic is the frame discipline, not a value.
                if dst == regs::SP {
                    if a == regs::SP {
                        match (op, &b, st.delta) {
                            (Alu::Sub, Op::I(n), Some(d)) => st.delta = Some(d + n),
                            (Alu::Add, Op::I(n), Some(d)) => st.delta = Some(d - n),
                            _ => st.delta = None,
                        }
                    } else {
                        st.delta = None;
                    }
                    return Ok(Flow::Fall);
                }
                let cls = match op {
                    Alu::CmpEq | Alu::CmpNe | Alu::CmpLt | Alu::CmpLe => Abs::Untraced,
                    _ if ca == Abs::Stale || cb == Abs::Stale => Abs::Stale,
                    _ if matches!(ca, Abs::Traced | Abs::Interior)
                        || matches!(cb, Abs::Traced | Abs::Interior) =>
                    {
                        Abs::Interior
                    }
                    _ if a == regs::SP || matches!(ca, Abs::StackAddr) => Abs::StackAddr,
                    // Arithmetic on a word of unknown class may be
                    // pointer arithmetic (e.g. indexing off a value
                    // loaded from the heap): the result stays unknown.
                    _ if matches!(ca, Abs::Any | Abs::Unknown)
                        || matches!(cb, Abs::Any | Abs::Unknown) =>
                    {
                        Abs::Any
                    }
                    _ if self.tagged => Abs::Tagged,
                    _ => Abs::Untraced,
                };
                self.write_reg(pc, st, dst, cls)?;
                Ok(Flow::Fall)
            }
            Instr::Falu { dst, .. } | Instr::Itof { dst, .. } => {
                self.write_reg(pc, st, dst, Abs::Untraced)?;
                Ok(Flow::Fall)
            }
            Instr::Ld { dst, base, off } => {
                let cls = self.load(pc, st, base, off)?;
                // `Ld EXN ← 0(EXN)` restores the saved handler chain:
                // `PopHandler`, or the unwind step of a raise
                // sequence. Either way the innermost handler is no
                // longer installed.
                if dst == regs::EXN && base == regs::EXN && off == 0 {
                    st.handlers.pop();
                }
                self.write_reg(pc, st, dst, cls)?;
                Ok(Flow::Fall)
            }
            Instr::St { src, base, off } => {
                self.store(pc, st, src, base, off)?;
                Ok(Flow::Fall)
            }
            Instr::Lea { dst, target } => {
                if !self.in_range(target) {
                    return Err(self.fail(
                        pc,
                        st,
                        &format!("lea target {target} outside the function"),
                    ));
                }
                // A Lea target is a handler entry: the handler is
                // installed from here (the record stores and the EXN
                // update that follow cannot trap). Every subsequent
                // point flows its state into the entry — see `run`.
                st.handlers.push(HandlerCtx {
                    target,
                    delta: st.delta,
                });
                self.write_reg(pc, st, dst, Abs::Code)?;
                Ok(Flow::Fall)
            }
            Instr::Br(t) => {
                if self.in_range(t) {
                    return Ok(Flow::Jump(t));
                }
                if self.trap_starts.contains(&t) {
                    return Ok(Flow::Stop);
                }
                // Direct tail call: target must be a function entry,
                // with the frame fully popped and arguments in place.
                if let Some(&callee) = self.entry_of.get(&t) {
                    if st.delta != Some(0) {
                        return Err(self.fail(
                            pc,
                            st,
                            &format!("tail call with SP delta {:?} (frame not popped)", st.delta),
                        ));
                    }
                    let sig = self.l.sigs[callee].clone();
                    self.check_args(pc, st, &sig, "tail call")?;
                    return Ok(Flow::Stop);
                }
                Err(self.fail(
                    pc,
                    st,
                    &format!("branch target {t} is neither local, a function entry, nor a trap stub"),
                ))
            }
            Instr::Beqz(r, t) | Instr::Bnez(r, t) => {
                let c = self.rd(st, r);
                if definitely_unusable(c) {
                    return Err(self.fail(pc, st, &format!("branch on {c:?} value in r{r}")));
                }
                if self.in_range(t) {
                    return Ok(Flow::CondBranch(t));
                }
                if self.trap_starts.contains(&t) {
                    return Ok(Flow::Fall);
                }
                Err(self.fail(
                    pc,
                    st,
                    &format!("conditional branch target {t} is neither local nor a trap stub"),
                ))
            }
            Instr::Jsr(t) => {
                let Some(&callee) = self.entry_of.get(&t) else {
                    return Err(self.fail(
                        pc,
                        st,
                        &format!("jsr target {t} is not a function entry"),
                    ));
                };
                let sig = self.l.sigs[callee].clone();
                self.check_args(pc, st, &sig, "call")?;
                self.call_transfer(pc, st, class_of_mrep(sig.ret))?;
                Ok(Flow::Fall)
            }
            Instr::JsrR(r) => {
                let c = self.rd(st, r);
                let sig = self.indirect_sig(pc, st, r, c)?;
                if let Some(sig) = &sig {
                    self.check_args(pc, st, sig, "call")?;
                }
                let ret = sig.map(|s| class_of_mrep(s.ret)).unwrap_or(Abs::Any);
                self.call_transfer(pc, st, ret)?;
                Ok(Flow::Fall)
            }
            Instr::Jmp(r) => {
                self.jmp(pc, st, r)?;
                Ok(Flow::Stop)
            }
            Instr::RtCall(f) => {
                self.rtcall(pc, st, f)?;
                Ok(Flow::Fall)
            }
            Instr::Halt => Err(self.fail(pc, st, "halt inside a function body")),
        }
    }

    fn write_reg(&self, pc: u32, st: &mut State, dst: u8, cls: Abs) -> Result<()> {
        match dst {
            regs::SP => {
                // Only the raise sequence assigns SP from a register;
                // the path must terminate without touching the frame.
                st.delta = None;
                Ok(())
            }
            regs::ZERO => Err(self.fail(pc, st, "write to the zero register")),
            regs::HP | regs::HL => Ok(()),
            _ => {
                st.regs[dst as usize] = cls;
                Ok(())
            }
        }
    }

    // ----------------------------------------------------- loads & stores

    /// A base class that can legally be dereferenced.
    fn check_base(&self, pc: u32, st: &State, base: u8, cls: Abs) -> Result<()> {
        let ok = match cls {
            Abs::Traced | Abs::Interior | Abs::Tagged | Abs::Handler | Abs::StackAddr
            | Abs::Unknown | Abs::Any => true,
            Abs::Const(c) => c >= 0 && c % 8 == 0 && (c as u64) < HEAP_BASE,
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            Err(self.fail(
                pc,
                st,
                &format!("memory access through r{base} holding {cls:?}"),
            ))
        }
    }

    fn frame_key(&self, pc: u32, st: &State, off: i32) -> Result<i64> {
        match st.delta {
            Some(d) => Ok(off as i64 - d),
            None => Err(self.fail(pc, st, "frame access with unknown SP delta")),
        }
    }

    fn load(&self, pc: u32, st: &State, base: u8, off: i32) -> Result<Abs> {
        match base {
            regs::SP => {
                let k = self.frame_key(pc, st, off)?;
                let c = st.frame_get(k);
                if c == Abs::Uninit {
                    return Err(self.fail(pc, st, &format!("load of uninitialized frame slot {off}")));
                }
                Ok(c)
            }
            regs::EXN => {
                let c = self.rd(st, regs::EXN);
                if !matches!(c, Abs::Handler | Abs::StackAddr | Abs::Any) {
                    return Err(self.fail(pc, st, &format!("EXN holds {c:?} at handler access")));
                }
                Ok(match off {
                    0 => Abs::Handler,
                    8 => Abs::Code,
                    16 => Abs::StackAddr,
                    _ => Abs::Any,
                })
            }
            regs::ZERO => {
                // A global load: traced globals are collector-updated,
                // so they never go stale.
                if self
                    .l
                    .tables
                    .globals
                    .iter()
                    .any(|(o, r)| *o == off as u64 && matches!(r, LocRep::Trace))
                {
                    Ok(Abs::Traced)
                } else {
                    Ok(Abs::Any)
                }
            }
            _ => {
                let c = self.rd(st, base);
                self.check_base(pc, st, base, c)?;
                Ok(Abs::Any)
            }
        }
    }

    fn store(&mut self, pc: u32, st: &mut State, src: u8, base: u8, off: i32) -> Result<()> {
        let sc = self.rd(st, src);
        match base {
            regs::SP => {
                let k = self.frame_key(pc, st, off)?;
                st.frame.insert(k, sc);
                Ok(())
            }
            regs::HP => {
                if off == 0 {
                    st.cur_header = match sc {
                        Abs::Const(h) => Some(h as u64),
                        _ => None,
                    };
                    return Ok(());
                }
                if let Some(h) = st.cur_header {
                    let field = (off as u64 / 8) - 1;
                    let traced_field = til_vm::header::kind(h) == til_vm::header::KIND_RECORD
                        && (til_vm::header::mask(h) >> field) & 1 == 1;
                    if traced_field {
                        let bad = if self.tagged {
                            definitely_unusable(sc)
                        } else {
                            definitely_untraced(sc) && sc != Abs::Code
                        };
                        if bad || matches!(sc, Abs::Stale | Abs::Uninit) {
                            return Err(self.fail(
                                pc,
                                st,
                                &format!("{sc:?} value stored into traced field {field}"),
                            ));
                        }
                    }
                }
                Ok(())
            }
            regs::ZERO => {
                let traced = self
                    .l
                    .tables
                    .globals
                    .iter()
                    .any(|(o, r)| *o == off as u64 && matches!(r, LocRep::Trace));
                if traced && !self.tagged && definitely_untraced(sc) && sc != Abs::Code {
                    return Err(self.fail(
                        pc,
                        st,
                        &format!("{sc:?} value stored into traced global at {off}"),
                    ));
                }
                if traced && definitely_unusable(sc) {
                    return Err(self.fail(
                        pc,
                        st,
                        &format!("{sc:?} value stored into traced global at {off}"),
                    ));
                }
                Ok(())
            }
            _ => {
                let c = self.rd(st, base);
                self.check_base(pc, st, base, c)?;
                if definitely_unusable(sc) {
                    return Err(self.fail(pc, st, &format!("store of {sc:?} value from r{src}")));
                }
                Ok(())
            }
        }
    }

    // ------------------------------------------------- calls and returns

    /// Checks argument registers against a callee signature. Only
    /// definite violations flag: an untraced word where a traced
    /// pointer is demanded (nearly tag-free mode), or an
    /// uninitialized/stale word anywhere.
    fn check_args(&self, pc: u32, st: &State, sig: &FunSig, what: &str) -> Result<()> {
        for (i, p) in sig.params.iter().enumerate() {
            if i >= regs::NUM_ARGS {
                break;
            }
            let a = st.regs[i];
            if definitely_unusable(a) {
                return Err(self.fail(
                    pc,
                    st,
                    &format!("{what} passes {a:?} value in argument register r{i}"),
                ));
            }
            if !self.tagged && *p == MRep::Traced && matches!(a, Abs::Untraced) {
                return Err(self.fail(
                    pc,
                    st,
                    &format!("{what} passes untraced value where r{i} must be traced"),
                ));
            }
        }
        Ok(())
    }

    /// Resolves the signature of an indirect call target when the
    /// abstract state pins it to a known code constant.
    fn indirect_sig(&self, pc: u32, st: &State, r: u8, c: Abs) -> Result<Option<FunSig>> {
        match c {
            Abs::Code | Abs::Any | Abs::Unknown => Ok(None),
            Abs::Const(v) => {
                if v & 1 == 1 {
                    if let Some(&fi) = self.entry_of.get(&(code_index(v as u64))) {
                        return Ok(Some(self.l.sigs[fi].clone()));
                    }
                }
                Err(self.fail(
                    pc,
                    st,
                    &format!("indirect call through r{r} = constant {v} (not a code value)"),
                ))
            }
            other => Err(self.fail(
                pc,
                st,
                &format!("indirect call through r{r} holding {other:?}"),
            )),
        }
    }

    /// The effect of returning from a call: caller-save registers are
    /// clobbered, the result lands in r0, RA holds this return
    /// address, and — in nearly tag-free mode — any traced frame slot
    /// the call-site descriptor did not list is stale (the callee may
    /// have collected).
    fn call_transfer(&mut self, pc: u32, st: &mut State, ret: Abs) -> Result<()> {
        if !self.tagged {
            match self.l.tables.call_sites.get(&(pc + 1)) {
                None => {
                    return Err(self.fail(pc, st, "call site has no frame descriptor"));
                }
                Some(fi) => {
                    let fi = fi.clone();
                    self.check_frame_info(pc, st, &fi)?;
                    self.stale_unlisted_slots(st, &fi);
                }
            }
        }
        for r in 0..24 {
            st.regs[r] = Abs::Any;
        }
        st.regs[regs::TMP as usize] = Abs::Any;
        st.regs[regs::TMP2 as usize] = Abs::Any;
        st.regs[0] = ret;
        st.regs[regs::RA as usize] = Abs::Code;
        st.cur_header = None;
        Ok(())
    }

    /// Verifies a call-site frame descriptor against the abstract
    /// frame: size matches the live delta, the RA slot holds a code
    /// value, claimed-traced slots are traceable, companion slots are
    /// initialized.
    fn check_frame_info(&self, pc: u32, st: &State, fi: &FrameInfo) -> Result<()> {
        let Some(d) = st.delta else {
            return Err(self.fail(pc, st, "call with unknown SP delta"));
        };
        if fi.size as i64 != d {
            return Err(self.fail(
                pc,
                st,
                &format!("frame descriptor says {} bytes but SP delta is {d}", fi.size),
            ));
        }
        if fi.size > 0 {
            let ra = st.frame_get(fi.ra_offset as i64 - d);
            if !matches!(ra, Abs::Code | Abs::Any) {
                return Err(self.fail(
                    pc,
                    st,
                    &format!(
                        "return-address slot {} holds {ra:?}, not a code value",
                        fi.ra_offset
                    ),
                ));
            }
        }
        // Call-site descriptors are built from liveness *after* the
        // call, so they may claim slots holding dead values — but the
        // emitter now marks exactly which ones (`fi.dead`: the call's
        // own result slot, written only on return and Uninit during
        // the walk). Dead-marked slots keep the old tolerance: the
        // collector's pointer filter makes them harmless, so only rep
        // violations no filter excuses (a definitely-untraced integer
        // or a raw code pointer in a claimed-traced slot) stay fatal.
        // Every *unmarked* slot is claimed genuinely live across the
        // call, so a definitely-dead value there (Uninit: never
        // written on this path; Stale: a pointer an earlier safe point
        // already left uncovered) is a table bug this check now
        // rejects — unlike the blanket tolerance that used to mask it.
        for (o, rep) in &fi.slots {
            let c = st.frame_get(*o as i64 - d);
            let claimed_dead = fi.dead.contains(o);
            if !claimed_dead && matches!(c, Abs::Uninit | Abs::Stale) {
                return Err(self.fail(
                    pc,
                    st,
                    &format!("table claims slot {o} live across the call but it holds {c:?}"),
                ));
            }
            match rep {
                LocRep::Trace => {
                    if matches!(c, Abs::Untraced | Abs::Code) {
                        return Err(self.fail(
                            pc,
                            st,
                            &format!("table claims slot {o} traced but it holds {c:?}"),
                        ));
                    }
                }
                LocRep::Computed(loc) => {
                    if matches!(c, Abs::Bot) {
                        return Err(self.fail(
                            pc,
                            st,
                            &format!("companion-typed slot {o} holds {c:?}"),
                        ));
                    }
                    self.check_companion(pc, st, loc)?;
                }
            }
        }
        Ok(())
    }

    fn check_companion(&self, pc: u32, st: &State, loc: &RepLoc) -> Result<()> {
        let c = match loc {
            RepLoc::Reg(r) => self.rd(st, *r),
            RepLoc::Slot(o) => {
                let Some(d) = st.delta else {
                    return Err(self.fail(pc, st, "companion slot with unknown SP delta"));
                };
                st.frame_get(*o as i64 - d)
            }
        };
        if definitely_unusable(c) {
            return Err(self.fail(pc, st, &format!("rep companion at {loc:?} holds {c:?}")));
        }
        Ok(())
    }

    /// After a possible collection, any traced value in a frame slot
    /// the tables did not list was not updated by the collector.
    /// (Tagged mode scans the whole stack by tag, so slots are exempt
    /// there.)
    fn stale_unlisted_slots(&self, st: &mut State, fi: &FrameInfo) {
        let Some(d) = st.delta else { return };
        let listed: HashSet<i64> = fi.slots.iter().map(|(o, _)| *o as i64 - d).collect();
        for (k, c) in st.frame.iter_mut() {
            if matches!(c, Abs::Traced | Abs::Interior) && !listed.contains(k) {
                *c = Abs::Stale;
            }
        }
    }

    fn jmp(&mut self, pc: u32, st: &mut State, r: u8) -> Result<()> {
        let c = self.rd(st, r);
        if r == regs::RA {
            // Return.
            if st.delta != Some(0) {
                return Err(self.fail(
                    pc,
                    st,
                    &format!("return with SP delta {:?} (frame not popped)", st.delta),
                ));
            }
            if !matches!(c, Abs::Code | Abs::Any) {
                return Err(self.fail(pc, st, &format!("return through RA holding {c:?}")));
            }
            let r0 = st.regs[0];
            match self.sig.ret {
                MRep::Traced if !self.tagged => {
                    if definitely_untraced(r0) && r0 != Abs::Code {
                        return Err(self.fail(
                            pc,
                            st,
                            &format!("returns {r0:?} where the signature demands traced"),
                        ));
                    }
                    if definitely_unusable(r0) {
                        return Err(self.fail(pc, st, &format!("returns {r0:?} value")));
                    }
                }
                MRep::Unknown => {}
                _ => {
                    if definitely_unusable(r0) {
                        return Err(self.fail(pc, st, &format!("returns {r0:?} value")));
                    }
                }
            }
            return Ok(());
        }
        // Indirect tail call (through the linker's scratch register) or
        // the terminal jump of a raise (through TMP, SP already reset).
        let raise = r == regs::TMP && st.delta.is_none();
        if !raise && st.delta != Some(0) {
            return Err(self.fail(
                pc,
                st,
                &format!("indirect tail call with SP delta {:?}", st.delta),
            ));
        }
        if let Some(sig) = self.indirect_sig(pc, st, r, c)? {
            if !raise {
                self.check_args(pc, st, &sig, "tail call")?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------- runtime services

    fn rtcall(&mut self, pc: u32, st: &mut State, f: RtFn) -> Result<()> {
        // Per-service arity and result class. Services read at most
        // r0..r2 (plus TMP for Gc), write only r0, and preserve every
        // other register.
        let (arity, result) = match f {
            RtFn::Gc => (0, RtRes::Preserve),
            RtFn::PrintStr => (1, RtRes::Preserve),
            RtFn::IntToStr | RtFn::FloatToStr | RtFn::StrFromChar => (1, RtRes::Str),
            RtFn::StrConcat => (2, RtRes::Str),
            RtFn::StrCmp | RtFn::StrEq | RtFn::StrSub => (2, RtRes::Int),
            RtFn::PolyEq => (3, RtRes::Int),
            RtFn::Sqrt | RtFn::Sin | RtFn::Cos | RtFn::Atan | RtFn::Exp | RtFn::Ln => {
                (1, RtRes::Float)
            }
            RtFn::Floor | RtFn::Trunc => (1, RtRes::Int),
        };
        for i in 0..arity {
            let a = st.regs[i];
            if definitely_unusable(a) {
                return Err(self.fail(
                    pc,
                    st,
                    &format!("runtime call {f:?} reads {a:?} value in r{i}"),
                ));
            }
        }
        // A safe point: re-derive the GC table from the abstract state.
        let point = self.l.tables.gc_points.get(&pc).cloned();
        if matches!(f, RtFn::Gc) && point.is_none() {
            return Err(self.fail(pc, st, "collector call without a GC point table entry"));
        }
        if let Some(p) = &point {
            self.check_gc_point(pc, st, p)?;
        }
        // Call-site descriptors also cover runtime calls that can walk
        // the stack; check when present (allocation sites emit the GC
        // point without one).
        if !self.tagged {
            if let Some(fi) = self.l.tables.call_sites.get(&(pc + 1)) {
                let fi = fi.clone();
                self.check_frame_info(pc, st, &fi)?;
            }
        }
        if let Some(p) = point {
            self.gc_transfer(st, &p);
        }
        match result {
            RtRes::Preserve => {}
            RtRes::Str => st.regs[0] = Abs::Traced,
            RtRes::Int => {
                st.regs[0] = if self.tagged { Abs::Tagged } else { Abs::Untraced }
            }
            RtRes::Float => st.regs[0] = Abs::Untraced,
        }
        Ok(())
    }

    /// The GC-table re-derivation at a safe point: the frame size must
    /// match the live SP delta, a leaf point must still hold the
    /// return address in RA, and everything the table claims traced
    /// must be abstractly traceable.
    fn check_gc_point(&self, pc: u32, st: &State, p: &GcPoint) -> Result<()> {
        let Some(d) = st.delta else {
            return Err(self.fail(pc, st, "GC point with unknown SP delta"));
        };
        if p.frame.size as i64 != d {
            return Err(self.fail(
                pc,
                st,
                &format!("GC point says frame {} bytes but SP delta is {d}", p.frame.size),
            ));
        }
        if p.frame.size == 0 {
            let ra = self.rd(st, regs::RA);
            if !matches!(ra, Abs::Code | Abs::Any) {
                return Err(self.fail(
                    pc,
                    st,
                    &format!("leaf GC point but RA holds {ra:?}"),
                ));
            }
        }
        for (r, rep) in &p.regs {
            let c = self.rd(st, *r);
            match rep {
                LocRep::Trace => {
                    if definitely_untraced(c) {
                        return Err(self.fail(
                            pc,
                            st,
                            &format!("GC point claims r{r} traced but it holds {c:?}"),
                        ));
                    }
                }
                LocRep::Computed(loc) => {
                    if definitely_unusable(c) {
                        return Err(self.fail(
                            pc,
                            st,
                            &format!("companion-typed r{r} holds {c:?}"),
                        ));
                    }
                    self.check_companion(pc, st, loc)?;
                }
            }
        }
        self.check_frame_info_slots(pc, st, &p.frame, d)
    }

    fn check_frame_info_slots(&self, pc: u32, st: &State, fi: &FrameInfo, d: i64) -> Result<()> {
        for (o, rep) in &fi.slots {
            let c = st.frame_get(*o as i64 - d);
            match rep {
                LocRep::Trace => {
                    if definitely_untraced(c) {
                        return Err(self.fail(
                            pc,
                            st,
                            &format!("GC point claims slot {o} traced but it holds {c:?}"),
                        ));
                    }
                }
                LocRep::Computed(loc) => {
                    if definitely_unusable(c) {
                        return Err(self.fail(
                            pc,
                            st,
                            &format!("companion-typed slot {o} holds {c:?}"),
                        ));
                    }
                    self.check_companion(pc, st, loc)?;
                }
            }
        }
        Ok(())
    }

    /// The collection's effect on the abstract state: listed locations
    /// keep their class (the collector updates them); unlisted traced
    /// registers go stale in both modes, unlisted traced frame slots
    /// only in nearly tag-free mode (the tagged collector scans the
    /// whole stack).
    fn gc_transfer(&self, st: &mut State, p: &GcPoint) {
        let listed_regs: HashSet<u8> = p.regs.iter().map(|(r, _)| *r).collect();
        for r in 0..24u8 {
            if !listed_regs.contains(&r)
                && matches!(st.regs[r as usize], Abs::Traced | Abs::Interior)
            {
                st.regs[r as usize] = Abs::Stale;
            }
        }
        for r in [regs::TMP, regs::TMP2] {
            if !listed_regs.contains(&r)
                && matches!(st.regs[r as usize], Abs::Traced | Abs::Interior)
            {
                st.regs[r as usize] = Abs::Stale;
            }
        }
        if !self.tagged {
            if let Some(d) = st.delta {
                self.stale_unlisted_slots_of(st, &p.frame, d);
            }
        }
        st.cur_header = None;
    }

    fn stale_unlisted_slots_of(&self, st: &mut State, fi: &FrameInfo, d: i64) {
        let listed: HashSet<i64> = fi.slots.iter().map(|(o, _)| *o as i64 - d).collect();
        for (k, c) in st.frame.iter_mut() {
            if matches!(c, Abs::Traced | Abs::Interior) && !listed.contains(k) {
                *c = Abs::Stale;
            }
        }
    }
}

enum RtRes {
    Preserve,
    Str,
    Int,
    Float,
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Abs; 13] = [
        Abs::Bot,
        Abs::Uninit,
        Abs::Const(7),
        Abs::Untraced,
        Abs::Traced,
        Abs::Tagged,
        Abs::Code,
        Abs::Interior,
        Abs::Handler,
        Abs::StackAddr,
        Abs::Stale,
        Abs::Unknown,
        Abs::Any,
    ];

    #[test]
    fn join_is_commutative_and_idempotent() {
        for a in ALL {
            assert_eq!(join(a, a), a, "{a:?} not idempotent");
            for b in ALL {
                assert_eq!(join(a, b), join(b, a), "{a:?} ⊔ {b:?} not commutative");
            }
        }
    }

    #[test]
    fn join_respects_bottom_and_top() {
        for a in ALL {
            assert_eq!(join(Abs::Bot, a), a);
            assert_eq!(join(Abs::Any, a), Abs::Any);
        }
    }

    #[test]
    fn join_stabilizes_in_one_step() {
        // Flat lattice: a second join with the same operand changes
        // nothing, so block-entry widening terminates.
        for a in ALL {
            for b in ALL {
                let j = join(a, b);
                assert_eq!(join(j, b), j, "{a:?} ⊔ {b:?} not stable");
                assert_eq!(join(j, a), j, "{a:?} ⊔ {b:?} not stable");
            }
        }
    }

    #[test]
    fn stale_absorbs_value_classes_but_not_stack_structure() {
        for v in [Abs::Traced, Abs::Interior, Abs::Tagged, Abs::Code, Abs::Untraced, Abs::Const(1)]
        {
            assert_eq!(join(Abs::Stale, v), Abs::Stale);
        }
        assert_eq!(join(Abs::Stale, Abs::Handler), Abs::Any);
        assert_eq!(join(Abs::Stale, Abs::StackAddr), Abs::Any);
    }

    #[test]
    fn mixed_value_classes_join_to_top() {
        assert_eq!(join(Abs::Untraced, Abs::Traced), Abs::Any);
        assert_eq!(join(Abs::Const(1), Abs::Const(2)), Abs::Any);
        assert_eq!(join(Abs::Const(1), Abs::Const(1)), Abs::Const(1));
        assert_eq!(join(Abs::Unknown, Abs::Traced), Abs::Any);
        assert_eq!(join(Abs::Uninit, Abs::Traced), Abs::Any);
        assert_eq!(join(Abs::Uninit, Abs::Stale), Abs::Stale);
    }

    #[test]
    fn state_join_tracks_frame_defaults_and_delta() {
        let mk = |default, delta| State {
            regs: [Abs::Any; 32],
            frame: BTreeMap::new(),
            frame_default: default,
            delta,
            cur_header: Some(3),
            handlers: Vec::new(),
        };
        let mut a = mk(Abs::Uninit, Some(24));
        a.frame.insert(-24, Abs::Code);
        a.frame.insert(-16, Abs::Traced);
        let mut b = mk(Abs::Any, Some(24));
        b.frame.insert(-16, Abs::Traced);
        assert!(a.join_from(&b));
        assert_eq!(a.frame_default, Abs::Any);
        assert_eq!(a.frame_get(-16), Abs::Traced);
        // The explicit Code slot joins with b's default (Any).
        assert_eq!(a.frame_get(-24), Abs::Any);
        assert_eq!(a.delta, Some(24));
        // Same join again: fixpoint.
        assert!(!a.join_from(&b));
        // Disagreeing deltas poison; an agreeing in-progress header
        // survives the join.
        let c = mk(Abs::Any, Some(0));
        assert!(a.join_from(&c));
        assert_eq!(a.delta, None);
        assert_eq!(a.cur_header, Some(3));
        // A disagreeing header clears, and once cleared (like a
        // poisoned delta) it stays cleared without reporting change —
        // the worklist must converge.
        let mut d = mk(Abs::Any, None);
        d.cur_header = None;
        assert!(a.join_from(&d));
        assert_eq!(a.cur_header, None);
        assert!(!a.join_from(&d));
    }
}
