//! The pluggable code generators ([`til_lir::Target`] impls).
//!
//! * [`vm`] — the simulated ALPHA-style VM the rest of the toolchain
//!   links, runs, verifies, and profiles. The reference target: its
//!   output is pinned byte-for-byte by the golden-image test.
//! * [`x64`] — textual x86-64 (AT&T syntax) with GC stack maps derived
//!   from the same target-independent safe-point data, demonstrating
//!   that the §2.3 table discipline ports to a real ISA.

pub mod vm;
pub mod x64;
