//! The VM target: instruction selection and frame construction for
//! the simulated ALPHA-style machine. LIR functions become machine
//! code with explicit frames, calling-convention moves, open-coded
//! allocation with GC limit checks, the exception-handler chain, and
//! the per-site GC tables of §2.3.
//!
//! In baseline (tagged) mode the frame's value slots live in a
//! heap-allocated frame record (SML/NJ's heap frames): the stack holds
//! only the return address and the frame pointer, every spill access
//! indirects through the frame record, and each activation allocates.

use std::collections::HashMap;
use til_common::Var;
use til_lir::{
    ArrKind, CallTarget, FrameLayout, FunSig, HeadSpec, LInstr, Lbl, LirFun, Loc, ROp, RegFile,
    Reloc, SafePoint, Target, TargetCtx, VReg,
};
use til_runtime::{FrameInfo, GcPoint, LocRep};
use til_vm::{header, regs, Alu, Instr, Op, RtFn};

const TMP: u8 = regs::TMP; // r28
const TMP2: u8 = regs::TMP2; // r29
const S3: u8 = 22;
const S4: u8 = 23;

/// The VM's allocatable register file: r0..r21 colorable (colors
/// 0..16 are the argument registers), r22/r23 backend scratch, r24+
/// special.
pub const VM_REG_FILE: RegFile = RegFile {
    name: "vm",
    allocatable: 22,
    num_args: regs::NUM_ARGS,
};

/// One emitted function before linking.
pub struct EmittedFun {
    /// Code label.
    pub name: Option<Var>,
    /// Machine code (branch targets local until linked).
    pub instrs: Vec<Instr>,
    /// Patches.
    pub relocs: Vec<(usize, Reloc)>,
    /// `(index-after-call, RTL instruction index, caller frame)`
    /// triples; the RTL index lets the table cross-checker recompute
    /// the liveness the frame was built from.
    pub call_sites: Vec<(usize, usize, FrameInfo)>,
    /// `(gc-instruction index, RTL instruction index, point)` triples.
    /// The prologue GC point of baseline heap frames has no RTL
    /// counterpart and carries `usize::MAX`.
    pub gc_points: Vec<(usize, usize, GcPoint)>,
    /// Calling-convention signature for the verifier.
    pub sig: FunSig,
    /// Indices of the heap-pointer bumps that complete an
    /// exception-packet allocation (headers carrying
    /// [`header::EXN_BIT`]). The linker rebases and publishes them so
    /// the execution profiler can charge packet construction to the
    /// runtime (`"(rt)"`) bucket instead of the raising function.
    pub exn_allocs: Vec<usize>,
}

/// The VM frame geometry: return address at offset 0, spill slots
/// starting at offset 8 (in TIL mode; in baseline the same slot
/// offsets index the heap frame record after its header).
struct VmFrame {
    frame_bytes: u32,
}

impl FrameLayout for VmFrame {
    fn frame_size(&self) -> u32 {
        self.frame_bytes
    }
    fn ra_offset(&self) -> u32 {
        0
    }
    fn slot_byte_off(&self, slot: u32) -> u32 {
        8 * (1 + slot)
    }
}

/// The simulated ALPHA-style VM code generator.
pub struct VmTarget;

impl Target for VmTarget {
    type Output = EmittedFun;

    fn name(&self) -> &'static str {
        "vm"
    }

    fn reg_file(&self) -> &'static RegFile {
        &VM_REG_FILE
    }

    fn select_fun(&self, f: &LirFun, ctx: &TargetCtx) -> EmittedFun {
        let ncalls = f
            .instrs
            .iter()
            .filter(|i| matches!(i, LInstr::Call { .. } | LInstr::CallRt { .. }))
            .count();
        let has_frame = ncalls > 0 || f.assign.nslots > 0 || f.nhandlers > 0;
        let frame_bytes = if !has_frame {
            0
        } else if ctx.tagged {
            8 * (2 + 3 * f.nhandlers as i64)
        } else {
            8 * (1 + f.assign.nslots as i64 + 3 * f.nhandlers as i64)
        };
        let mut e = Emit {
            f,
            tagged: ctx.tagged,
            statics_addr: ctx.statics_addr,
            out: Vec::new(),
            relocs: Vec::new(),
            call_sites: Vec::new(),
            gc_points: Vec::new(),
            label_pos: HashMap::new(),
            fixups: Vec::new(),
            frame_bytes,
            has_frame,
            exn_allocs: Vec::new(),
        };
        e.prologue();
        for ins in &f.instrs {
            e.instr(ins);
        }
        // Patch local branches.
        for (at, lbl, kind) in e.fixups.clone() {
            let target = e.label_pos[&lbl] as u32;
            e.out[at] = match kind {
                FixKind::Br => Instr::Br(target),
                FixKind::Beqz(r) => Instr::Beqz(r, target),
                FixKind::Bnez(r) => Instr::Bnez(r, target),
                FixKind::Lea(r) => Instr::Lea { dst: r, target },
            };
        }
        EmittedFun {
            name: f.name,
            instrs: e.out,
            relocs: e.relocs,
            call_sites: e.call_sites,
            gc_points: e.gc_points,
            sig: f.sig.clone(),
            exn_allocs: e.exn_allocs,
        }
    }
}

struct Emit<'a> {
    f: &'a LirFun,
    tagged: bool,
    statics_addr: &'a [u64],
    out: Vec<Instr>,
    relocs: Vec<(usize, Reloc)>,
    call_sites: Vec<(usize, usize, FrameInfo)>,
    gc_points: Vec<(usize, usize, GcPoint)>,
    label_pos: HashMap<Lbl, usize>,
    fixups: Vec<(usize, Lbl, FixKind)>,
    frame_bytes: i64,
    has_frame: bool,
    exn_allocs: Vec<usize>,
}

#[derive(Clone, Copy)]
enum FixKind {
    Br,
    Beqz(u8),
    Bnez(u8),
    Lea(u8),
}

impl<'a> Emit<'a> {
    fn push(&mut self, i: Instr) -> usize {
        self.out.push(i);
        self.out.len() - 1
    }

    // ------------------------------------------------------ slots & locs

    fn layout(&self) -> VmFrame {
        VmFrame {
            frame_bytes: self.frame_bytes as u32,
        }
    }

    fn nslots(&self) -> u32 {
        self.f.assign.nslots
    }

    fn handler_off(&self, idx: u32) -> i64 {
        if self.tagged {
            8 * (2 + 3 * idx as i64)
        } else {
            8 * (1 + self.nslots() as i64 + 3 * idx as i64)
        }
    }

    fn slot_byte_off(&self, slot: u32) -> u32 {
        // In TIL mode, byte offset from SP; in baseline, within the
        // heap frame record (after its header).
        self.layout().slot_byte_off(slot)
    }

    /// Loads frame slot `slot` into physical `dst`.
    fn load_slot(&mut self, slot: u32, dst: u8) {
        if self.tagged {
            self.push(Instr::Ld {
                dst: S4,
                base: regs::SP,
                off: 8,
            });
            self.push(Instr::Ld {
                dst,
                base: S4,
                off: self.slot_byte_off(slot) as i32,
            });
        } else {
            self.push(Instr::Ld {
                dst,
                base: regs::SP,
                off: self.slot_byte_off(slot) as i32,
            });
        }
    }

    /// Stores physical `src` into frame slot `slot`.
    fn store_slot(&mut self, slot: u32, src: u8) {
        if self.tagged {
            self.push(Instr::Ld {
                dst: S4,
                base: regs::SP,
                off: 8,
            });
            self.push(Instr::St {
                src,
                base: S4,
                off: self.slot_byte_off(slot) as i32,
            });
        } else {
            self.push(Instr::St {
                src,
                base: regs::SP,
                off: self.slot_byte_off(slot) as i32,
            });
        }
    }

    fn loc(&self, v: VReg) -> Loc {
        self.f.assign.loc(v)
    }

    /// Materializes vreg `v` in a register (using `scratch` if it lives
    /// in a slot).
    fn fetch(&mut self, v: VReg, scratch: u8) -> u8 {
        match self.loc(v) {
            Loc::Reg(r) => r,
            Loc::Slot(s) => {
                self.load_slot(s, scratch);
                scratch
            }
        }
    }

    fn fetch_op(&mut self, o: &ROp, scratch: u8) -> Op {
        match o {
            ROp::I(i) => Op::I(*i),
            ROp::V(v) => Op::R(self.fetch(*v, scratch)),
        }
    }

    /// Writes a value produced in `src_phys` into vreg `dst`.
    fn write(&mut self, dst: VReg, src_phys: u8) {
        match self.loc(dst) {
            Loc::Reg(r) => {
                if r != src_phys {
                    self.push(Instr::Mov {
                        dst: r,
                        src: Op::R(src_phys),
                    });
                }
            }
            Loc::Slot(s) => self.store_slot(s, src_phys),
        }
    }

    /// The register a definition should target (scratch when slotted).
    fn def_reg(&self, dst: VReg, scratch: u8) -> u8 {
        match self.loc(dst) {
            Loc::Reg(r) => r,
            Loc::Slot(_) => scratch,
        }
    }

    fn finish_def(&mut self, dst: VReg, r: u8) {
        if let Loc::Slot(s) = self.loc(dst) {
            self.store_slot(s, r);
        }
    }

    // --------------------------------------------------------- prologue

    fn prologue(&mut self) {
        if self.has_frame {
            self.push(Instr::Alu {
                op: Alu::Sub,
                dst: regs::SP,
                a: regs::SP,
                b: Op::I(self.frame_bytes),
            });
            self.push(Instr::St {
                src: regs::RA,
                base: regs::SP,
                off: 0,
            });
        }
        if self.tagged && self.nslots() > 0 {
            // Allocate the heap frame record (baseline CPS-style
            // frames): header + zero-initialized tagged slots.
            let size = 8 * (1 + self.nslots() as i64);
            self.push(Instr::Alu {
                op: Alu::Add,
                dst: TMP,
                a: regs::HP,
                b: Op::I(size),
            });
            self.push(Instr::Alu {
                op: Alu::CmpLe,
                dst: TMP,
                a: TMP,
                b: Op::R(regs::HL),
            });
            let b = self.push(Instr::Bnez(TMP, 0));
            self.push(Instr::Mov {
                dst: TMP,
                src: Op::I(size),
            });
            let gc_at = self.push(Instr::RtCall(RtFn::Gc));
            // GC point: parameters are still in their argument
            // registers.
            let mut point = GcPoint {
                regs: vec![],
                frame: FrameInfo {
                    size: self.frame_bytes as u32,
                    ra_offset: 0,
                    slots: vec![],
                    dead: vec![],
                },
            };
            for (i, p) in self.f.params.iter().enumerate() {
                if let Some(rep) = self.loc_rep_reg(*p) {
                    point.regs.push((i as u8, rep));
                }
            }
            self.gc_points.push((gc_at, usize::MAX, point));
            let ok = self.out.len();
            self.out[b] = Instr::Bnez(TMP, ok as u32);
            self.push(Instr::Mov {
                dst: TMP,
                src: Op::I(header::make(
                    header::KIND_PTRARRAY,
                    self.nslots() as u64,
                    0,
                ) as i64),
            });
            self.push(Instr::St {
                src: TMP,
                base: regs::HP,
                off: 0,
            });
            self.push(Instr::Mov {
                dst: TMP,
                src: Op::I(1), // tagged 0
            });
            for i in 0..self.nslots() {
                self.push(Instr::St {
                    src: TMP,
                    base: regs::HP,
                    off: (8 * (1 + i)) as i32,
                });
            }
            self.push(Instr::St {
                src: regs::HP,
                base: regs::SP,
                off: 8,
            });
            self.push(Instr::Alu {
                op: Alu::Add,
                dst: regs::HP,
                a: regs::HP,
                b: Op::I(size),
            });
        }
        // Move parameters from the argument registers.
        let mut slot_moves = Vec::new();
        let mut reg_moves = Vec::new();
        for (i, p) in self.f.params.iter().enumerate() {
            match self.loc(*p) {
                Loc::Slot(s) => slot_moves.push((s, i as u8)),
                Loc::Reg(r) => reg_moves.push((r, i as u8)),
            }
        }
        for (s, src) in slot_moves {
            self.store_slot(s, src);
        }
        self.par_move(reg_moves.into_iter().map(|(d, s)| (d, MovSrc::Reg(s))).collect());
    }

    fn epilogue(&mut self) {
        if self.has_frame {
            self.push(Instr::Ld {
                dst: regs::RA,
                base: regs::SP,
                off: 0,
            });
            self.push(Instr::Alu {
                op: Alu::Add,
                dst: regs::SP,
                a: regs::SP,
                b: Op::I(self.frame_bytes),
            });
        }
    }

    // ------------------------------------------------------- moves

    fn par_move(&mut self, moves: Vec<(u8, MovSrc)>) {
        let mut pending = moves;
        // Drop no-ops.
        pending.retain(|(d, s)| !matches!(s, MovSrc::Reg(r) if r == d));
        while !pending.is_empty() {
            // Find a move whose destination is not a register source of
            // any other pending move.
            let pos = pending.iter().position(|(d, _)| {
                !pending
                    .iter()
                    .any(|(_, s)| matches!(s, MovSrc::Reg(r) if r == d))
            });
            match pos {
                Some(i) => {
                    let (d, s) = pending.remove(i);
                    self.emit_move(d, s);
                }
                None => {
                    // A register cycle: rotate through TMP.
                    let (d, _) = pending[0];
                    self.push(Instr::Mov {
                        dst: TMP,
                        src: Op::R(d),
                    });
                    for (_, s) in pending.iter_mut() {
                        if matches!(s, MovSrc::Reg(r) if *r == d) {
                            *s = MovSrc::Reg(TMP);
                        }
                    }
                }
            }
        }
    }

    fn emit_move(&mut self, dst: u8, src: MovSrc) {
        match src {
            MovSrc::Reg(r) => {
                if r != dst {
                    self.push(Instr::Mov {
                        dst,
                        src: Op::R(r),
                    });
                }
            }
            MovSrc::Slot(s) => self.load_slot(s, dst),
            MovSrc::Imm(i) => {
                self.push(Instr::Mov {
                    dst,
                    src: Op::I(i),
                });
            }
        }
    }

    fn arg_moves(&mut self, args: &[VReg]) {
        assert!(args.len() <= regs::NUM_ARGS, "too many call arguments");
        let moves: Vec<(u8, MovSrc)> = args
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let src = match self.loc(*v) {
                    Loc::Reg(r) => MovSrc::Reg(r),
                    Loc::Slot(s) => MovSrc::Slot(s),
                };
                (i as u8, src)
            })
            .collect();
        self.par_move(moves);
    }

    // -------------------------------------------------------- gc info
    //
    // The table *content* (which slots hold live traced pointers, the
    // dead-slot subset at call sites) is derived by the shared
    // target-independent helpers in `til_lir`; this target only
    // supplies its frame geometry.

    fn loc_rep_reg(&self, v: VReg) -> Option<LocRep> {
        til_lir::loc_rep_reg(self.f, &self.layout(), v)
    }

    fn loc_rep_reg_slotted(&self, v: VReg) -> Option<LocRep> {
        til_lir::loc_rep_slotted(self.f, &self.layout(), v)
    }

    fn frame_info(&self, live: &[VReg]) -> FrameInfo {
        til_lir::frame_info(self.f, &self.layout(), self.tagged, live)
    }

    fn call_frame_info(&self, sp: &SafePoint) -> FrameInfo {
        til_lir::call_frame_info(self.f, &self.layout(), self.tagged, sp)
    }

    fn gc_point_here(&mut self, at: usize, sp: &SafePoint) {
        // Registers live into this instruction, plus the frame.
        let mut point = GcPoint {
            regs: vec![],
            frame: self.frame_info(&sp.live_in),
        };
        if !self.has_frame {
            point.frame.size = 0;
        }
        for v in &sp.live_in {
            if let Loc::Reg(r) = self.loc(*v) {
                if let Some(rep) = self.loc_rep_reg(*v) {
                    point.regs.push((r, rep));
                }
            }
        }
        point.regs.sort_by_key(|(r, _)| *r);
        self.gc_points.push((at, sp.rtl_at, point));
    }
}

#[derive(Clone, Copy)]
enum MovSrc {
    Reg(u8),
    Slot(u32),
    #[allow(dead_code)]
    Imm(i64),
}

impl<'a> Emit<'a> {
    fn instr(&mut self, ins: &LInstr) {
        match ins {
            LInstr::Mov { dst, src } => {
                let d = self.def_reg(*dst, TMP);
                let s = self.fetch_op(src, TMP2);
                self.push(Instr::Mov { dst: d, src: s });
                self.finish_def(*dst, d);
            }
            LInstr::Alu { op, dst, a, b } => {
                let ra = match self.fetch_op(a, TMP) {
                    Op::R(r) => r,
                    Op::I(v) => {
                        self.push(Instr::Mov {
                            dst: TMP,
                            src: Op::I(v),
                        });
                        TMP
                    }
                };
                let rb = self.fetch_op(b, TMP2);
                let d = self.def_reg(*dst, TMP);
                self.push(Instr::Alu {
                    op: *op,
                    dst: d,
                    a: ra,
                    b: rb,
                });
                self.finish_def(*dst, d);
            }
            LInstr::Falu { op, dst, a, b } => {
                let ra = self.fetch(*a, TMP);
                let rb = self.fetch(*b, TMP2);
                let d = self.def_reg(*dst, TMP);
                self.push(Instr::Falu {
                    op: *op,
                    dst: d,
                    a: ra,
                    b: rb,
                });
                self.finish_def(*dst, d);
            }
            LInstr::Itof { dst, a } => {
                let ra = self.fetch(*a, TMP);
                let d = self.def_reg(*dst, TMP);
                self.push(Instr::Itof { dst: d, a: ra });
                self.finish_def(*dst, d);
            }
            LInstr::Ld { dst, base, off } => {
                let rb = self.fetch(*base, TMP);
                let d = self.def_reg(*dst, TMP);
                self.push(Instr::Ld {
                    dst: d,
                    base: rb,
                    off: *off,
                });
                self.finish_def(*dst, d);
            }
            LInstr::St { src, base, off } => {
                let rs = self.fetch(*src, TMP);
                let rb = self.fetch(*base, TMP2);
                self.push(Instr::St {
                    src: rs,
                    base: rb,
                    off: *off,
                });
            }
            LInstr::LdGlobal { dst, gid } => {
                let d = self.def_reg(*dst, TMP);
                self.push(Instr::Ld {
                    dst: d,
                    base: regs::ZERO,
                    off: (8 * gid) as i32,
                });
                self.finish_def(*dst, d);
            }
            LInstr::StGlobal { src, gid } => {
                let rs = self.fetch(*src, TMP);
                self.push(Instr::St {
                    src: rs,
                    base: regs::ZERO,
                    off: (8 * gid) as i32,
                });
            }
            LInstr::LeaCode { dst, code } => {
                let d = self.def_reg(*dst, TMP);
                let at = self.push(Instr::Mov {
                    dst: d,
                    src: Op::I(0),
                });
                self.relocs.push((at, Reloc::CodeImm(*code)));
                self.finish_def(*dst, d);
            }
            LInstr::LeaStatic { dst, obj } => {
                let d = self.def_reg(*dst, TMP);
                let addr = self.statics_addr[*obj as usize];
                self.push(Instr::Mov {
                    dst: d,
                    src: Op::I(addr as i64),
                });
                self.finish_def(*dst, d);
            }
            LInstr::Label(l) => {
                self.label_pos.insert(*l, self.out.len());
            }
            LInstr::Br(l) => {
                let at = self.push(Instr::Br(0));
                self.fixups.push((at, *l, FixKind::Br));
            }
            LInstr::Beqz(v, l) => {
                let r = self.fetch(*v, TMP);
                let at = self.push(Instr::Beqz(r, 0));
                self.fixups.push((at, *l, FixKind::Beqz(r)));
            }
            LInstr::Bnez(v, l) => {
                let r = self.fetch(*v, TMP);
                let at = self.push(Instr::Bnez(r, 0));
                self.fixups.push((at, *l, FixKind::Bnez(r)));
            }
            LInstr::Call {
                target,
                args,
                dst,
                sp,
            } => {
                // Fetch an indirect target before the argument moves.
                let tgt = match target {
                    CallTarget::Reg(v) => {
                        let r = self.fetch(*v, S3);
                        if r != S3 {
                            self.push(Instr::Mov {
                                dst: S3,
                                src: Op::R(r),
                            });
                        }
                        None
                    }
                    CallTarget::Code(c) => Some(*c),
                };
                self.arg_moves(args);
                match tgt {
                    Some(c) => {
                        let at = self.push(Instr::Jsr(0));
                        self.relocs.push((at, Reloc::CodeTarget(c)));
                    }
                    None => {
                        self.push(Instr::JsrR(S3));
                    }
                }
                // Call-site table: the return address is the next
                // instruction.
                if !self.tagged {
                    let fi = self.call_frame_info(sp);
                    self.call_sites.push((self.out.len(), sp.rtl_at, fi));
                }
                if let Some(d) = dst {
                    self.write(*d, 0);
                }
            }
            LInstr::TailCall { target, args } => {
                let tgt = match target {
                    CallTarget::Reg(v) => {
                        let r = self.fetch(*v, S3);
                        if r != S3 {
                            self.push(Instr::Mov {
                                dst: S3,
                                src: Op::R(r),
                            });
                        }
                        None
                    }
                    CallTarget::Code(c) => Some(*c),
                };
                self.arg_moves(args);
                self.epilogue();
                match tgt {
                    Some(c) => {
                        let at = self.push(Instr::Br(0));
                        self.relocs.push((at, Reloc::CodeTarget(c)));
                    }
                    None => {
                        self.push(Instr::Jmp(S3));
                    }
                }
            }
            LInstr::CallRt {
                f,
                args,
                dst,
                alloc,
                sp,
            } => {
                self.arg_moves(args);
                let at = self.push(Instr::RtCall(*f));
                if *alloc {
                    // The service may collect: argument registers hold
                    // the only live register values to fix; everything
                    // else crossed this call in slots.
                    let mut point = GcPoint {
                        regs: vec![],
                        frame: self.frame_info(&sp.live_in),
                    };
                    for (ai, v) in args.iter().enumerate() {
                        if let Some(rep) = self.loc_rep_reg_slotted(*v) {
                            point.regs.push((ai as u8, rep));
                        }
                    }
                    self.gc_points.push((at, sp.rtl_at, point));
                }
                if !self.tagged {
                    // Runtime calls that can walk the stack behave like
                    // calls for the table (harmless otherwise).
                    let fi = self.call_frame_info(sp);
                    self.call_sites.push((self.out.len(), sp.rtl_at, fi));
                }
                if let Some(d) = dst {
                    self.write(*d, 0);
                }
            }
            LInstr::Ret(v) => {
                if let Some(v) = v {
                    let r = self.fetch(*v, TMP);
                    if r != 0 {
                        self.push(Instr::Mov {
                            dst: 0,
                            src: Op::R(r),
                        });
                    }
                }
                self.epilogue();
                self.push(Instr::Jmp(regs::RA));
            }
            LInstr::Alloc {
                dst,
                head,
                fields,
                sp,
            } => {
                let size = 8 * (1 + fields.len() as i64);
                self.push(Instr::Alu {
                    op: Alu::Add,
                    dst: TMP,
                    a: regs::HP,
                    b: Op::I(size),
                });
                self.push(Instr::Alu {
                    op: Alu::CmpLe,
                    dst: TMP,
                    a: TMP,
                    b: Op::R(regs::HL),
                });
                let b = self.push(Instr::Bnez(TMP, 0));
                self.push(Instr::Mov {
                    dst: TMP,
                    src: Op::I(size),
                });
                let gc_at = self.push(Instr::RtCall(RtFn::Gc));
                self.gc_point_here(gc_at, sp);
                let ok = self.out.len();
                self.out[b] = Instr::Bnez(TMP, ok as u32);
                // Header.
                match head {
                    HeadSpec::Static(h) => {
                        self.push(Instr::Mov {
                            dst: TMP,
                            src: Op::I(*h as i64),
                        });
                    }
                    HeadSpec::Reg(v) => {
                        let r = self.fetch(*v, TMP);
                        if r != TMP {
                            self.push(Instr::Mov {
                                dst: TMP,
                                src: Op::R(r),
                            });
                        }
                    }
                }
                self.push(Instr::St {
                    src: TMP,
                    base: regs::HP,
                    off: 0,
                });
                for (fi, f) in fields.iter().enumerate() {
                    let r = match self.fetch_op(f, TMP2) {
                        Op::R(r) => r,
                        Op::I(v) => {
                            self.push(Instr::Mov {
                                dst: TMP2,
                                src: Op::I(v),
                            });
                            TMP2
                        }
                    };
                    self.push(Instr::St {
                        src: r,
                        base: regs::HP,
                        off: (8 * (1 + fi)) as i32,
                    });
                }
                self.write(*dst, regs::HP);
                let bump = self.push(Instr::Alu {
                    op: Alu::Add,
                    dst: regs::HP,
                    a: regs::HP,
                    b: Op::I(size),
                });
                // Exception packets (header exn bit): publish the bump
                // so the profiler charges the packet to the rt bucket.
                if matches!(head, HeadSpec::Static(h) if h & header::EXN_BIT != 0) {
                    self.exn_allocs.push(bump);
                }
            }
            LInstr::AllocArr {
                dst,
                kind,
                len,
                init,
                sp,
            } => {
                // TMP = size in bytes = (len << 3) + 8.
                let lr = match self.fetch_op(len, TMP) {
                    Op::R(r) => r,
                    Op::I(v) => {
                        self.push(Instr::Mov {
                            dst: TMP,
                            src: Op::I(v),
                        });
                        TMP
                    }
                };
                self.push(Instr::Alu {
                    op: Alu::Sll,
                    dst: TMP,
                    a: lr,
                    b: Op::I(3),
                });
                self.push(Instr::Alu {
                    op: Alu::Add,
                    dst: TMP,
                    a: TMP,
                    b: Op::I(8),
                });
                self.push(Instr::Alu {
                    op: Alu::Add,
                    dst: TMP2,
                    a: regs::HP,
                    b: Op::R(TMP),
                });
                self.push(Instr::Alu {
                    op: Alu::CmpLe,
                    dst: TMP2,
                    a: TMP2,
                    b: Op::R(regs::HL),
                });
                let b = self.push(Instr::Bnez(TMP2, 0));
                let gc_at = self.push(Instr::RtCall(RtFn::Gc));
                self.gc_point_here(gc_at, sp);
                let ok = self.out.len();
                self.out[b] = Instr::Bnez(TMP2, ok as u32);
                // Header: kind | (size - 8), since len<<3 occupies the
                // length field's position.
                let k = match kind {
                    ArrKind::Int => header::KIND_INTARRAY,
                    ArrKind::Float => header::KIND_FLOATARRAY,
                    ArrKind::Ptr => header::KIND_PTRARRAY,
                };
                self.push(Instr::Alu {
                    op: Alu::Sub,
                    dst: TMP2,
                    a: TMP,
                    b: Op::I(8),
                });
                self.push(Instr::Alu {
                    op: Alu::Or,
                    dst: TMP2,
                    a: TMP2,
                    b: Op::I(k as i64),
                });
                self.push(Instr::St {
                    src: TMP2,
                    base: regs::HP,
                    off: 0,
                });
                // Init loop: S3 = cursor, TMP = end.
                let iv = self.fetch(*init, TMP2);
                if iv != TMP2 {
                    self.push(Instr::Mov {
                        dst: TMP2,
                        src: Op::R(iv),
                    });
                }
                self.push(Instr::Alu {
                    op: Alu::Add,
                    dst: TMP,
                    a: regs::HP,
                    b: Op::R(TMP),
                });
                self.push(Instr::Alu {
                    op: Alu::Add,
                    dst: S3,
                    a: regs::HP,
                    b: Op::I(8),
                });
                let loop_top = self.out.len();
                self.push(Instr::Alu {
                    op: Alu::CmpEq,
                    dst: S4,
                    a: S3,
                    b: Op::R(TMP),
                });
                let bdone = self.push(Instr::Bnez(S4, 0));
                self.push(Instr::St {
                    src: TMP2,
                    base: S3,
                    off: 0,
                });
                self.push(Instr::Alu {
                    op: Alu::Add,
                    dst: S3,
                    a: S3,
                    b: Op::I(8),
                });
                self.push(Instr::Br(loop_top as u32));
                let done = self.out.len();
                self.out[bdone] = Instr::Bnez(S4, done as u32);
                self.write(*dst, regs::HP);
                self.push(Instr::Mov {
                    dst: regs::HP,
                    src: Op::R(TMP),
                });
            }
            LInstr::PushHandler { lbl, idx } => {
                let base = self.handler_off(*idx) as i32;
                self.push(Instr::St {
                    src: regs::EXN,
                    base: regs::SP,
                    off: base,
                });
                let at = self.push(Instr::Lea { dst: TMP, target: 0 });
                self.fixups.push((at, *lbl, FixKind::Lea(TMP)));
                self.push(Instr::St {
                    src: TMP,
                    base: regs::SP,
                    off: base + 8,
                });
                self.push(Instr::St {
                    src: regs::SP,
                    base: regs::SP,
                    off: base + 16,
                });
                self.push(Instr::Alu {
                    op: Alu::Add,
                    dst: regs::EXN,
                    a: regs::SP,
                    b: Op::I(base as i64),
                });
            }
            LInstr::PopHandler { .. } => {
                self.push(Instr::Ld {
                    dst: regs::EXN,
                    base: regs::EXN,
                    off: 0,
                });
            }
            LInstr::HandlerEntry { dst } => {
                self.write(*dst, 0);
            }
            LInstr::Raise { packet } => {
                let p = self.fetch(*packet, TMP);
                if p != 0 {
                    self.push(Instr::Mov {
                        dst: 0,
                        src: Op::R(p),
                    });
                }
                self.push(Instr::Ld {
                    dst: TMP,
                    base: regs::EXN,
                    off: 8,
                });
                self.push(Instr::Ld {
                    dst: TMP2,
                    base: regs::EXN,
                    off: 16,
                });
                self.push(Instr::Ld {
                    dst: regs::EXN,
                    base: regs::EXN,
                    off: 0,
                });
                self.push(Instr::Mov {
                    dst: regs::SP,
                    src: Op::R(TMP2),
                });
                self.push(Instr::Jmp(TMP));
            }
            LInstr::TrapIf { cond, trap } => {
                let r = self.fetch(*cond, TMP);
                let at = self.push(Instr::Bnez(r, 0));
                self.relocs.push((at, Reloc::TrapTarget(*trap)));
            }
        }
    }
}
