//! The x86-64 target: textual AT&T-syntax assembly with GC stack maps
//! re-derived from the same target-independent safe-point data the VM
//! target's tables come from — demonstrating that the paper's §2.3
//! nearly tag-free table discipline ports to a real ISA.
//!
//! # Conventions
//!
//! | role | register |
//! |---|---|
//! | colors 0..8 | `rdi rsi rdx rcx r8 r9 rbx rbp r12` |
//! | arguments | colors 0..8 (first six are the SysV argument order, so runtime-service calls line up with the C ABI) |
//! | extra args (9+) | outgoing stack area at the frame bottom |
//! | result | `rax` |
//! | scratch | `rax`, `r10` (`r11` for indirect call targets) |
//! | heap pointer / limit | `r15` / `r14` |
//! | handler chain | `r13` |
//! | stack pointer | `rsp` |
//!
//! Frame (grows down): `[outgoing args][spill slots][handler records]
//! [pad]` with the return address pushed by `call` just above, so
//! `slot_byte_off(s) = 8*(out + s)` and `ra_offset = frame_bytes`. A
//! pad word keeps `rsp` 16-aligned at call boundaries. All registers
//! are caller-save (values live across calls are slotted by the
//! allocator), and the runtime symbols (`til_rt_gc`,
//! `til_rt_trap_*`, …) preserve every register, as the VM's runtime
//! services do.
//!
//! Each safe point gets a stack map ([`GcPoint`]) derived by
//! [`til_lir::frame_info`]/[`til_lir::call_frame_info`]; maps are
//! keyed by the return-address label emitted right after the call and
//! rendered both as assembly comments and as an `.rodata` table.
//!
//! Alongside the text every instruction is mirrored as a structured
//! [`X64Op`] so the emitted assembly can be machine-checked: labels
//! resolve, every safe point carries a map, and the per-target mcv
//! rules (rsp balance, arguments defined before calls) run over the
//! same stream.

use std::collections::HashMap;
use til_lir::{
    ArrKind, CallTarget, FrameLayout, HeadSpec, LInstr, Lbl, LirFun, Loc, ROp, RegFile, SafePoint,
    Target, TargetCtx, VReg,
};
use til_runtime::GcPoint;
use til_rtl::{RtlProgram, StaticObj};
use til_vm::{header, Alu, Falu, RtFn, Trap};

/// The x86-64 register file: nine colorable registers (all of them
/// argument registers in our internal convention), the rest of the
/// ISA reserved for scratch, the heap, and the handler chain.
pub const X64_REG_FILE: RegFile = RegFile {
    name: "x64",
    allocatable: 9,
    num_args: 9,
};

/// Color → register name (AT&T, without the `%`). Also the argument
/// order, so the per-target mcv rules know which registers a call
/// reads.
pub const REG: [&str; 9] = ["rdi", "rsi", "rdx", "rcx", "r8", "r9", "rbx", "rbp", "r12"];
const TMP: &str = "rax";
const TMP2: &str = "r10";
const TGT: &str = "r11";
const HP: &str = "r15";
const HL: &str = "r14";
const EXN: &str = "r13";

/// One structured x86-64 operation — the verification mirror of a
/// text line. Only what the structural validator and the per-target
/// mcv rules need is kept; everything else is [`X64Op::Other`].
#[derive(Clone, Debug)]
pub enum X64Op {
    /// Local label definition.
    Local(String),
    /// Unconditional jump to a local label.
    Jmp(String),
    /// Conditional jump to a local label.
    Jcc(String),
    /// Indirect jump (tail calls, raise, return-through-register).
    JmpReg(String),
    /// Call (`None` target = indirect through `r11`); `nargs`
    /// register arguments were set up, `map` indexes the function's
    /// stack maps when the call is a safe point.
    Call {
        /// Direct callee symbol, or `None` for indirect.
        target: Option<String>,
        /// Number of register arguments the convention requires.
        nargs: usize,
        /// Stack-map index for this safe point.
        map: Option<usize>,
    },
    /// `rsp += delta` (negative in prologues).
    Rsp(i64),
    /// `ret`.
    Ret,
    /// Any other instruction; `defs` lists the registers it writes.
    Other {
        /// Registers written (names without `%`).
        defs: Vec<String>,
    },
}

/// One function of emitted assembly.
pub struct X64Fun {
    /// Global symbol.
    pub symbol: String,
    /// Assembly lines (labels unindented, instructions tabbed).
    pub lines: Vec<String>,
    /// Structured mirror of `lines`' instructions, in order.
    pub ops: Vec<X64Op>,
    /// Stack maps, indexed by [`X64Op::Call::map`].
    pub maps: Vec<GcPoint>,
    /// Frame bytes subtracted in the prologue (excluding the pushed
    /// return address).
    pub frame_bytes: u32,
    /// Parameter count (the first `min(nparams, 9)` argument registers
    /// are defined on entry).
    pub nparams: usize,
}

/// A whole compilation unit of textual x86-64.
pub struct X64Module {
    /// Functions, entry first.
    pub funs: Vec<X64Fun>,
    /// Static-object symbols (strings, type reps, exception packets).
    pub statics: Vec<String>,
}

impl X64Module {
    /// Renders the module as one `.s` file: text section, per-function
    /// stack-map tables, and the static data.
    pub fn text(&self) -> String {
        let mut s = String::new();
        s.push_str("# TIL x86-64 backend output (AT&T syntax).\n");
        s.push_str("# GC stack maps are derived from the target-independent safe-point\n");
        s.push_str("# data; each map is keyed by the return-address label after its call.\n");
        s.push_str("\t.text\n");
        for f in &self.funs {
            s.push('\n');
            s.push_str(&format!("\t.globl {}\n", f.symbol));
            for l in &f.lines {
                s.push_str(l);
                s.push('\n');
            }
        }
        s.push_str("\n\t.section .rodata\n");
        for f in &self.funs {
            for (k, m) in f.maps.iter().enumerate() {
                s.push_str(&format!("{}: # stack map\n", map_label(&f.symbol, k)));
                s.push_str(&format!(
                    "\t.quad {}, {}, {} # frame size, ra offset, nslots\n",
                    m.frame.size,
                    m.frame.ra_offset,
                    m.frame.slots.len()
                ));
                for (off, rep) in &m.frame.slots {
                    s.push_str(&format!("\t.quad {off} # {rep:?}\n"));
                }
            }
        }
        for d in &self.statics {
            s.push_str(d);
            s.push('\n');
        }
        s
    }
}

fn map_label(symbol: &str, k: usize) -> String {
    format!(".Lsm_{symbol}_{k}")
}

/// Mangles a function label into a valid assembly symbol.
fn mangle(label: &str) -> String {
    let mut s = String::from("til_");
    for c in label.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            s.push(c);
        } else {
            s.push('_');
        }
    }
    s
}

/// The x86-64 frame geometry (TIL mode): outgoing args at the bottom,
/// then spill slots, handlers, padding; RA pushed by `call` above.
struct X64Frame {
    frame_bytes: u32,
    out_bytes: u32,
}

impl FrameLayout for X64Frame {
    fn frame_size(&self) -> u32 {
        // Including the pushed return address, so a stack walk skips
        // the whole activation.
        self.frame_bytes + 8
    }
    fn ra_offset(&self) -> u32 {
        self.frame_bytes
    }
    fn slot_byte_off(&self, slot: u32) -> u32 {
        self.out_bytes + 8 * slot
    }
}

/// The textual x86-64 code generator.
pub struct X64Target {
    /// Function-label → mangled-symbol map for call targets.
    pub symbols: HashMap<String, String>,
    /// Index of this function within the module (local-label prefix).
    pub fun_index: usize,
}

impl Target for X64Target {
    type Output = X64Fun;

    fn name(&self) -> &'static str {
        "x64"
    }

    fn reg_file(&self) -> &'static RegFile {
        &X64_REG_FILE
    }

    fn select_fun(&self, f: &LirFun, ctx: &TargetCtx) -> X64Fun {
        let ncalls = f
            .instrs
            .iter()
            .filter(|i| matches!(i, LInstr::Call { .. } | LInstr::CallRt { .. }))
            .count();
        // Outgoing stack-arg words: the widest call's overflow beyond
        // the nine register arguments.
        let out_words = f
            .instrs
            .iter()
            .map(|i| match i {
                LInstr::Call { args, .. } | LInstr::TailCall { args, .. } => {
                    args.len().saturating_sub(REG.len())
                }
                _ => 0,
            })
            .max()
            .unwrap_or(0) as u32;
        let has_frame = ncalls > 0 || f.assign.nslots > 0 || f.nhandlers > 0 || out_words > 0;
        let mut words = out_words + f.assign.nslots + 3 * f.nhandlers;
        // Keep rsp 16-aligned at call boundaries: frame + pushed RA
        // must be a multiple of 16, so the frame itself is odd words.
        if has_frame && words.is_multiple_of(2) {
            words += 1;
        }
        let symbol = self
            .symbols
            .get(&crate::link::fun_label(f.name))
            .cloned()
            .unwrap_or_else(|| mangle(&crate::link::fun_label(f.name)));
        let mut e = Sel {
            f,
            target: self,
            tagged: ctx.tagged,
            frame_bytes: 8 * words,
            out_bytes: 8 * out_words,
            has_frame,
            symbol: symbol.clone(),
            lines: Vec::new(),
            ops: Vec::new(),
            maps: Vec::new(),
            tmp_label: 0,
        };
        e.lines.push(format!("{symbol}:"));
        e.prologue();
        for ins in &f.instrs {
            e.instr(ins);
        }
        X64Fun {
            symbol,
            lines: e.lines,
            ops: e.ops,
            maps: e.maps,
            frame_bytes: 8 * words,
            nparams: f.params.len(),
        }
    }
}

struct Sel<'a> {
    f: &'a LirFun,
    target: &'a X64Target,
    tagged: bool,
    frame_bytes: u32,
    out_bytes: u32,
    has_frame: bool,
    symbol: String,
    lines: Vec<String>,
    ops: Vec<X64Op>,
    maps: Vec<GcPoint>,
    tmp_label: u32,
}

impl<'a> Sel<'a> {
    fn layout(&self) -> X64Frame {
        X64Frame {
            frame_bytes: self.frame_bytes,
            out_bytes: self.out_bytes,
        }
    }

    /// Emits one instruction line with its structured mirror.
    fn op(&mut self, text: String, op: X64Op) {
        self.lines.push(format!("\t{text}"));
        self.ops.push(op);
    }

    /// Emits a plain computation instruction writing `defs`.
    fn ins(&mut self, text: String, defs: &[&str]) {
        self.op(
            text,
            X64Op::Other {
                defs: defs.iter().map(|d| d.to_string()).collect(),
            },
        );
    }

    fn local(&mut self, name: String) {
        self.lines.push(format!("{name}:"));
        self.ops.push(X64Op::Local(name));
    }

    fn fresh_label(&mut self, stem: &str) -> String {
        self.tmp_label += 1;
        format!(".L{}_{}{}", self.target.fun_index, stem, self.tmp_label)
    }

    fn lbl(&self, l: Lbl) -> String {
        format!(".L{}_b{}", self.target.fun_index, l)
    }

    // ------------------------------------------------------ locations

    fn loc(&self, v: VReg) -> Loc {
        self.f.assign.loc(v)
    }

    fn slot_off(&self, s: u32) -> u32 {
        self.layout().slot_byte_off(s)
    }

    /// Materializes vreg `v` in a register (loading from its slot into
    /// `scratch` if spilled); returns the register name.
    fn fetch(&mut self, v: VReg, scratch: &'static str) -> &'static str {
        match self.loc(v) {
            Loc::Reg(c) => REG[c as usize],
            Loc::Slot(s) => {
                let off = self.slot_off(s);
                self.ins(format!("movq {off}(%rsp), %{scratch}"), &[scratch]);
                scratch
            }
        }
    }

    /// Materializes an operand in a register (immediates through
    /// `scratch`).
    fn fetch_op(&mut self, o: &ROp, scratch: &'static str) -> &'static str {
        match o {
            ROp::I(i) => {
                self.ins(format!("movq ${i}, %{scratch}"), &[scratch]);
                scratch
            }
            ROp::V(v) => self.fetch(*v, scratch),
        }
    }

    /// Writes the value in `src` (a register name) into vreg `dst`.
    fn write(&mut self, dst: VReg, src: &str) {
        match self.loc(dst) {
            Loc::Reg(c) => {
                let d = REG[c as usize];
                if d != src {
                    self.ins(format!("movq %{src}, %{d}"), &[d]);
                }
            }
            Loc::Slot(s) => {
                let off = self.slot_off(s);
                self.ins(format!("movq %{src}, {off}(%rsp)"), &[]);
            }
        }
    }

    // ------------------------------------------------------- prologue

    fn prologue(&mut self) {
        if self.has_frame {
            let fb = self.frame_bytes;
            self.op(format!("subq ${fb}, %rsp"), X64Op::Rsp(-(fb as i64)));
        }
        // Move parameters from their arrival locations. Params 0..9
        // arrive in the argument registers (a parallel move, they may
        // permute); params 9+ arrive on the stack above the frame.
        let mut reg_moves: Vec<(u8, u8)> = Vec::new(); // (dst color, src color)
        for (i, p) in self.f.params.iter().enumerate() {
            if i < REG.len() {
                match self.loc(*p) {
                    Loc::Reg(c) => reg_moves.push((c, i as u8)),
                    Loc::Slot(s) => {
                        let src = REG[i];
                        let off = self.slot_off(s);
                        self.ins(format!("movq %{src}, {off}(%rsp)"), &[]);
                    }
                }
            } else {
                let in_off = self.frame_bytes as i64 + 8 + 8 * (i - REG.len()) as i64;
                self.ins(format!("movq {in_off}(%rsp), %{TMP}"), &[TMP]);
                self.write(*p, TMP);
            }
        }
        self.par_move(reg_moves);
    }

    fn epilogue(&mut self) {
        if self.has_frame {
            let fb = self.frame_bytes;
            self.op(format!("addq ${fb}, %rsp"), X64Op::Rsp(fb as i64));
        }
    }

    /// Parallel register-to-register move in color space, cycles
    /// rotated through `rax`.
    fn par_move(&mut self, moves: Vec<(u8, u8)>) {
        const VIA_TMP: u8 = u8::MAX;
        let mut pending: Vec<(u8, u8)> = moves;
        pending.retain(|(d, s)| d != s);
        while !pending.is_empty() {
            let pos = pending
                .iter()
                .position(|(d, _)| !pending.iter().any(|(_, s)| s == d));
            match pos {
                Some(i) => {
                    let (d, s) = pending.remove(i);
                    let src = if s == VIA_TMP { TMP } else { REG[s as usize] };
                    let dst = REG[d as usize];
                    self.ins(format!("movq %{src}, %{dst}"), &[dst]);
                }
                None => {
                    let (d, _) = pending[0];
                    let dr = REG[d as usize];
                    self.ins(format!("movq %{dr}, %{TMP}"), &[TMP]);
                    for (_, s) in pending.iter_mut() {
                        if *s == d {
                            *s = VIA_TMP;
                        }
                    }
                }
            }
        }
    }

    /// Sets up call arguments: the first nine through the argument
    /// registers (parallel move, slot sources loaded via `rax`),
    /// the rest into the outgoing stack area.
    fn arg_moves(&mut self, args: &[VReg]) {
        // Stack overflow args first (they only read, never clobber,
        // the argument registers).
        for (i, v) in args.iter().enumerate().skip(REG.len()) {
            let r = self.fetch(*v, TMP);
            let off = 8 * (i - REG.len());
            self.ins(format!("movq %{r}, {off}(%rsp)"), &[]);
        }
        // Slot-resident register args load directly into place;
        // register-resident ones form a parallel move.
        let mut reg_moves: Vec<(u8, u8)> = Vec::new();
        for (i, v) in args.iter().enumerate().take(REG.len()) {
            match self.loc(*v) {
                Loc::Reg(c) => reg_moves.push((i as u8, c)),
                Loc::Slot(s) => {
                    let off = self.slot_off(s);
                    let d = REG[i];
                    self.ins(format!("movq {off}(%rsp), %{d}"), &[d]);
                }
            }
        }
        self.par_move(reg_moves);
    }

    // -------------------------------------------------------- gc maps

    /// Records a call-site stack map (slots live after the call, dead
    /// subset marked) and returns its index.
    fn call_map(&mut self, sp: &SafePoint) -> usize {
        let fi = til_lir::call_frame_info(self.f, &self.layout(), self.tagged, sp);
        self.maps.push(GcPoint {
            regs: vec![],
            frame: fi,
        });
        self.maps.len() - 1
    }

    /// Records an allocation-site stack map (slots live into the
    /// instruction, plus live register descriptors) and returns its
    /// index.
    fn gc_map(&mut self, sp: &SafePoint) -> usize {
        let mut point = GcPoint {
            regs: vec![],
            frame: til_lir::frame_info(self.f, &self.layout(), self.tagged, &sp.live_in),
        };
        for v in &sp.live_in {
            if let Loc::Reg(c) = self.loc(*v) {
                if let Some(rep) = til_lir::loc_rep_reg(self.f, &self.layout(), *v) {
                    point.regs.push((c, rep));
                }
            }
        }
        point.regs.sort_by_key(|(r, _)| *r);
        self.maps.push(point);
        self.maps.len() - 1
    }

    /// Emits the return-address label and map comment after a call.
    fn after_call(&mut self, map: usize) {
        let k = map;
        let sm = map_label(&self.symbol, k);
        let ret = format!(".Lret_{}_{k}", self.target.fun_index);
        self.local(ret);
        let m = &self.maps[k];
        self.lines.push(format!(
            "\t# map {sm}: frame={} ra_off={} slots={:?} dead={:?}",
            m.frame.size, m.frame.ra_offset, m.frame.slots, m.frame.dead
        ));
    }

    // ----------------------------------------------------- selection

    fn instr(&mut self, ins: &LInstr) {
        match ins {
            LInstr::Mov { dst, src } => match src {
                ROp::I(i) => {
                    let d = match self.loc(*dst) {
                        Loc::Reg(c) => REG[c as usize],
                        Loc::Slot(_) => TMP,
                    };
                    self.ins(format!("movq ${i}, %{d}"), &[d]);
                    self.write(*dst, d);
                }
                ROp::V(v) => {
                    let s = self.fetch(*v, TMP);
                    self.write(*dst, s);
                }
            },
            LInstr::Alu { op, dst, a, b } => self.alu(*op, *dst, a, b),
            LInstr::Falu { op, dst, a, b } => {
                let ra = self.fetch(*a, TMP);
                self.ins(format!("movq %{ra}, %xmm0"), &[]);
                let rb = self.fetch(*b, TMP2);
                self.ins(format!("movq %{rb}, %xmm1"), &[]);
                match op {
                    Falu::Add => self.ins("addsd %xmm1, %xmm0".into(), &[]),
                    Falu::Sub => self.ins("subsd %xmm1, %xmm0".into(), &[]),
                    Falu::Mul => self.ins("mulsd %xmm1, %xmm0".into(), &[]),
                    Falu::Div => self.ins("divsd %xmm1, %xmm0".into(), &[]),
                    Falu::CmpEq | Falu::CmpNe | Falu::CmpLt | Falu::CmpLe => {
                        self.ins("ucomisd %xmm1, %xmm0".into(), &[]);
                        let set = match op {
                            Falu::CmpEq => "sete",
                            Falu::CmpNe => "setne",
                            Falu::CmpLt => "setb",
                            _ => "setbe",
                        };
                        self.ins(format!("{set} %al"), &[TMP]);
                        self.ins(format!("movzbq %al, %{TMP}"), &[TMP]);
                        self.write(*dst, TMP);
                        return;
                    }
                }
                self.ins(format!("movq %xmm0, %{TMP}"), &[TMP]);
                self.write(*dst, TMP);
            }
            LInstr::Itof { dst, a } => {
                let ra = self.fetch(*a, TMP);
                self.ins(format!("cvtsi2sdq %{ra}, %xmm0"), &[]);
                self.ins(format!("movq %xmm0, %{TMP}"), &[TMP]);
                self.write(*dst, TMP);
            }
            LInstr::Ld { dst, base, off } => {
                let rb = self.fetch(*base, TMP);
                let d = match self.loc(*dst) {
                    Loc::Reg(c) => REG[c as usize],
                    Loc::Slot(_) => TMP,
                };
                self.ins(format!("movq {off}(%{rb}), %{d}"), &[d]);
                self.write(*dst, d);
            }
            LInstr::St { src, base, off } => {
                let rs = self.fetch(*src, TMP);
                let rb = self.fetch(*base, TMP2);
                self.ins(format!("movq %{rs}, {off}(%{rb})"), &[]);
            }
            LInstr::LdGlobal { dst, gid } => {
                let off = 8 * gid;
                self.ins(format!("movq til_globals+{off}(%rip), %{TMP}"), &[TMP]);
                self.write(*dst, TMP);
            }
            LInstr::StGlobal { src, gid } => {
                let rs = self.fetch(*src, TMP);
                let off = 8 * gid;
                self.ins(format!("movq %{rs}, til_globals+{off}(%rip)"), &[]);
            }
            LInstr::LeaCode { dst, code } => {
                let sym = self
                    .target
                    .symbols
                    .get(&crate::link::fun_label(Some(*code)))
                    .cloned()
                    .unwrap_or_else(|| mangle(&crate::link::fun_label(Some(*code))));
                // Odd-encoded code value: 2*addr + 1.
                self.ins(format!("leaq {sym}(%rip), %{TMP}"), &[TMP]);
                self.ins(format!("leaq 1(%{TMP},%{TMP}), %{TMP}"), &[TMP]);
                self.write(*dst, TMP);
            }
            LInstr::LeaStatic { dst, obj } => {
                self.ins(format!("leaq til_static_{obj}(%rip), %{TMP}"), &[TMP]);
                self.write(*dst, TMP);
            }
            LInstr::Label(l) => {
                let name = self.lbl(*l);
                self.local(name);
            }
            LInstr::Br(l) => {
                let t = self.lbl(*l);
                self.op(format!("jmp {t}"), X64Op::Jmp(t));
            }
            LInstr::Beqz(v, l) => {
                let r = self.fetch(*v, TMP);
                self.ins(format!("testq %{r}, %{r}"), &[]);
                let t = self.lbl(*l);
                self.op(format!("jz {t}"), X64Op::Jcc(t));
            }
            LInstr::Bnez(v, l) => {
                let r = self.fetch(*v, TMP);
                self.ins(format!("testq %{r}, %{r}"), &[]);
                let t = self.lbl(*l);
                self.op(format!("jnz {t}"), X64Op::Jcc(t));
            }
            LInstr::Call {
                target,
                args,
                dst,
                sp,
            } => {
                let sym = match target {
                    CallTarget::Code(c) => Some(
                        self.target
                            .symbols
                            .get(&crate::link::fun_label(Some(*c)))
                            .cloned()
                            .unwrap_or_else(|| mangle(&crate::link::fun_label(Some(*c)))),
                    ),
                    CallTarget::Reg(v) => {
                        // Decode the odd-encoded code value into r11
                        // before the argument moves clobber its home.
                        let r = self.fetch(*v, TGT);
                        if r != TGT {
                            self.ins(format!("movq %{r}, %{TGT}"), &[TGT]);
                        }
                        self.ins(format!("sarq $1, %{TGT}"), &[TGT]);
                        None
                    }
                };
                self.arg_moves(args);
                let map = self.call_map(sp);
                let nargs = args.len().min(REG.len());
                match &sym {
                    Some(s) => self.op(
                        format!("call {s}"),
                        X64Op::Call {
                            target: Some(s.clone()),
                            nargs,
                            map: Some(map),
                        },
                    ),
                    None => self.op(
                        format!("call *%{TGT}"),
                        X64Op::Call {
                            target: None,
                            nargs,
                            map: Some(map),
                        },
                    ),
                }
                self.after_call(map);
                if let Some(d) = dst {
                    self.write(*d, TMP);
                }
            }
            LInstr::TailCall { target, args } => {
                let sym = match target {
                    CallTarget::Code(c) => Some(
                        self.target
                            .symbols
                            .get(&crate::link::fun_label(Some(*c)))
                            .cloned()
                            .unwrap_or_else(|| mangle(&crate::link::fun_label(Some(*c)))),
                    ),
                    CallTarget::Reg(v) => {
                        let r = self.fetch(*v, TGT);
                        if r != TGT {
                            self.ins(format!("movq %{r}, %{TGT}"), &[TGT]);
                        }
                        self.ins(format!("sarq $1, %{TGT}"), &[TGT]);
                        None
                    }
                };
                self.arg_moves(args);
                self.epilogue();
                match sym {
                    Some(s) => self.op(format!("jmp {s}"), X64Op::JmpReg(s)),
                    None => self.op(format!("jmp *%{TGT}"), X64Op::JmpReg(TGT.into())),
                }
            }
            LInstr::CallRt {
                f,
                args,
                dst,
                alloc,
                sp,
            } => {
                self.arg_moves(args);
                let map = if *alloc {
                    self.gc_map(sp)
                } else {
                    self.call_map(sp)
                };
                let sym = rt_symbol(*f);
                self.op(
                    format!("call {sym}"),
                    X64Op::Call {
                        target: Some(sym.to_string()),
                        nargs: args.len().min(REG.len()),
                        map: Some(map),
                    },
                );
                self.after_call(map);
                if let Some(d) = dst {
                    self.write(*d, TMP);
                }
            }
            LInstr::Ret(v) => {
                if let Some(v) = v {
                    let r = self.fetch(*v, TMP);
                    if r != TMP {
                        self.ins(format!("movq %{r}, %{TMP}"), &[TMP]);
                    }
                }
                self.epilogue();
                self.op("ret".into(), X64Op::Ret);
            }
            LInstr::Alloc {
                dst,
                head,
                fields,
                sp,
            } => {
                let size = 8 * (1 + fields.len() as i64);
                self.ins(format!("leaq {size}(%{HP}), %{TMP}"), &[TMP]);
                self.ins(format!("cmpq %{HL}, %{TMP}"), &[]);
                let ok = self.fresh_label("alc");
                self.op(format!("jbe {ok}"), X64Op::Jcc(ok.clone()));
                // GC: requested bytes in rax; the stub preserves all
                // registers and reloads r15/r14.
                self.ins(format!("movq ${size}, %{TMP}"), &[TMP]);
                let map = self.gc_map(sp);
                self.op(
                    "call til_rt_gc".into(),
                    X64Op::Call {
                        target: Some("til_rt_gc".into()),
                        nargs: 0,
                        map: Some(map),
                    },
                );
                self.after_call(map);
                self.local(ok);
                match head {
                    HeadSpec::Static(h) => {
                        self.ins(format!("movabsq ${h}, %{TMP}"), &[TMP]);
                    }
                    HeadSpec::Reg(v) => {
                        let r = self.fetch(*v, TMP);
                        if r != TMP {
                            self.ins(format!("movq %{r}, %{TMP}"), &[TMP]);
                        }
                    }
                }
                self.ins(format!("movq %{TMP}, 0(%{HP})"), &[]);
                for (fi, fld) in fields.iter().enumerate() {
                    let r = self.fetch_op(fld, TMP2);
                    let off = 8 * (1 + fi);
                    self.ins(format!("movq %{r}, {off}(%{HP})"), &[]);
                }
                self.write(*dst, HP);
                self.ins(format!("addq ${size}, %{HP}"), &[HP]);
            }
            LInstr::AllocArr {
                dst,
                kind,
                len,
                init,
                sp,
            } => {
                // rax = byte size = (len << 3) + 8.
                let lr = self.fetch_op(len, TMP);
                if lr != TMP {
                    self.ins(format!("movq %{lr}, %{TMP}"), &[TMP]);
                }
                self.ins(format!("shlq $3, %{TMP}"), &[TMP]);
                self.ins(format!("addq $8, %{TMP}"), &[TMP]);
                self.ins(format!("leaq (%{HP},%{TMP}), %{TMP2}"), &[TMP2]);
                self.ins(format!("cmpq %{HL}, %{TMP2}"), &[]);
                let ok = self.fresh_label("aar");
                self.op(format!("jbe {ok}"), X64Op::Jcc(ok.clone()));
                let map = self.gc_map(sp);
                self.op(
                    "call til_rt_gc".into(),
                    X64Op::Call {
                        target: Some("til_rt_gc".into()),
                        nargs: 0,
                        map: Some(map),
                    },
                );
                self.after_call(map);
                self.local(ok);
                let k = match kind {
                    ArrKind::Int => header::KIND_INTARRAY,
                    ArrKind::Float => header::KIND_FLOATARRAY,
                    ArrKind::Ptr => header::KIND_PTRARRAY,
                };
                self.ins(format!("movq %{TMP}, %{TMP2}"), &[TMP2]);
                self.ins(format!("subq $8, %{TMP2}"), &[TMP2]);
                self.ins(format!("orq ${k}, %{TMP2}"), &[TMP2]);
                self.ins(format!("movq %{TMP2}, 0(%{HP})"), &[]);
                // Init loop: r10 = init value, r11 = cursor, rax = end.
                let iv = self.fetch(*init, TMP2);
                if iv != TMP2 {
                    self.ins(format!("movq %{iv}, %{TMP2}"), &[TMP2]);
                }
                self.ins(format!("leaq (%{HP},%{TMP}), %{TMP}"), &[TMP]);
                self.ins(format!("leaq 8(%{HP}), %{TGT}"), &[TGT]);
                let top = self.fresh_label("loop");
                let done = self.fresh_label("done");
                self.local(top.clone());
                self.ins(format!("cmpq %{TMP}, %{TGT}"), &[]);
                self.op(format!("je {done}"), X64Op::Jcc(done.clone()));
                self.ins(format!("movq %{TMP2}, 0(%{TGT})"), &[]);
                self.ins(format!("addq $8, %{TGT}"), &[TGT]);
                self.op(format!("jmp {top}"), X64Op::Jmp(top));
                self.local(done);
                self.write(*dst, HP);
                self.ins(format!("movq %{TMP}, %{HP}"), &[HP]);
            }
            LInstr::PushHandler { lbl, idx } => {
                let base = self.out_bytes as i64
                    + 8 * (self.f.assign.nslots as i64 + 3 * *idx as i64);
                self.ins(format!("movq %{EXN}, {base}(%rsp)"), &[]);
                let t = self.lbl(*lbl);
                self.ins(format!("leaq {t}(%rip), %{TMP}"), &[TMP]);
                self.ins(format!("movq %{TMP}, {}(%rsp)", base + 8), &[]);
                self.ins(format!("movq %rsp, {}(%rsp)", base + 16), &[]);
                self.ins(format!("leaq {base}(%rsp), %{EXN}"), &[EXN]);
            }
            LInstr::PopHandler { .. } => {
                self.ins(format!("movq 0(%{EXN}), %{EXN}"), &[EXN]);
            }
            LInstr::HandlerEntry { dst } => {
                // The packet arrives in rax (the raise moved it there).
                self.write(*dst, TMP);
            }
            LInstr::Raise { packet } => {
                let p = self.fetch(*packet, TMP);
                if p != TMP {
                    self.ins(format!("movq %{p}, %{TMP}"), &[TMP]);
                }
                self.ins(format!("movq 8(%{EXN}), %{TGT}"), &[TGT]);
                self.ins(format!("movq 16(%{EXN}), %{TMP2}"), &[TMP2]);
                self.ins(format!("movq 0(%{EXN}), %{EXN}"), &[EXN]);
                // The rsp def lets the per-target mcv rules model the
                // reassignment (the only legal one: a terminal raise).
                self.ins(format!("movq %{TMP2}, %rsp"), &["rsp"]);
                self.op(format!("jmp *%{TGT}"), X64Op::JmpReg(TGT.into()));
            }
            LInstr::TrapIf { cond, trap } => {
                let r = self.fetch(*cond, TMP);
                self.ins(format!("testq %{r}, %{r}"), &[]);
                let sym = trap_symbol(*trap);
                self.op(format!("jnz {sym}"), X64Op::JmpReg(sym.to_string()));
            }
        }
    }

    /// Integer ALU selection: two-operand x86 through `rax`, with
    /// shift counts through `cl` (saving the allocatable `rcx`) and
    /// division through `rax`/`rdx` (saving the allocatable `rdx`).
    fn alu(&mut self, op: Alu, dst: VReg, a: &ROp, b: &ROp) {
        let ra = self.fetch_op(a, TMP);
        if ra != TMP {
            self.ins(format!("movq %{ra}, %{TMP}"), &[TMP]);
        }
        match op {
            Alu::Add | Alu::AddV | Alu::Sub | Alu::SubV | Alu::And | Alu::Or | Alu::Xor => {
                let mn = match op {
                    Alu::Add | Alu::AddV => "addq",
                    Alu::Sub | Alu::SubV => "subq",
                    Alu::And => "andq",
                    Alu::Or => "orq",
                    _ => "xorq",
                };
                match b {
                    ROp::I(i) => self.ins(format!("{mn} ${i}, %{TMP}"), &[TMP]),
                    ROp::V(_) => {
                        let rb = self.fetch_op(b, TMP2);
                        self.ins(format!("{mn} %{rb}, %{TMP}"), &[TMP]);
                    }
                }
                if matches!(op, Alu::AddV | Alu::SubV) {
                    let sym = trap_symbol(Trap::Overflow);
                    self.op(format!("jo {sym}"), X64Op::JmpReg(sym.to_string()));
                }
            }
            Alu::Mul | Alu::MulV => {
                let rb = self.fetch_op(b, TMP2);
                self.ins(format!("imulq %{rb}, %{TMP}"), &[TMP]);
                if matches!(op, Alu::MulV) {
                    let sym = trap_symbol(Trap::Overflow);
                    self.op(format!("jo {sym}"), X64Op::JmpReg(sym.to_string()));
                }
            }
            Alu::Div | Alu::Rem => {
                // idiv clobbers rdx (an allocatable register): save it
                // in r11 around the division.
                let rb = self.fetch_op(b, TMP2);
                if rb != TMP2 {
                    // The divisor may live in rdx itself; move it out
                    // of cqto's way.
                    self.ins(format!("movq %{rb}, %{TMP2}"), &[TMP2]);
                }
                self.ins(format!("testq %{TMP2}, %{TMP2}"), &[]);
                let sym = trap_symbol(Trap::Div);
                self.op(format!("jz {sym}"), X64Op::JmpReg(sym.to_string()));
                self.ins(format!("movq %rdx, %{TGT}"), &[TGT]);
                self.ins("cqto".into(), &["rdx"]);
                self.ins(format!("idivq %{TMP2}"), &[TMP, "rdx"]);
                if matches!(op, Alu::Rem) {
                    self.ins(format!("movq %rdx, %{TMP}"), &[TMP]);
                }
                self.ins(format!("movq %{TGT}, %rdx"), &["rdx"]);
            }
            Alu::Sll | Alu::Srl | Alu::Sra => {
                let mn = match op {
                    Alu::Sll => "shlq",
                    Alu::Srl => "shrq",
                    _ => "sarq",
                };
                match b {
                    ROp::I(i) => self.ins(format!("{mn} ${i}, %{TMP}"), &[TMP]),
                    ROp::V(_) => {
                        // Variable count must be in cl; rcx is
                        // allocatable, so save it in r10.
                        let rb = self.fetch_op(b, TMP2);
                        self.ins(format!("movq %rcx, %{TGT}"), &[TGT]);
                        self.ins(format!("movq %{rb}, %rcx"), &["rcx"]);
                        self.ins(format!("{mn} %cl, %{TMP}"), &[TMP]);
                        self.ins(format!("movq %{TGT}, %rcx"), &["rcx"]);
                    }
                }
            }
            Alu::CmpEq | Alu::CmpNe | Alu::CmpLt | Alu::CmpLe => {
                match b {
                    ROp::I(i) => self.ins(format!("cmpq ${i}, %{TMP}"), &[]),
                    ROp::V(_) => {
                        let rb = self.fetch_op(b, TMP2);
                        self.ins(format!("cmpq %{rb}, %{TMP}"), &[]);
                    }
                }
                let set = match op {
                    Alu::CmpEq => "sete",
                    Alu::CmpNe => "setne",
                    Alu::CmpLt => "setl",
                    _ => "setle",
                };
                self.ins(format!("{set} %al"), &[TMP]);
                self.ins(format!("movzbq %al, %{TMP}"), &[TMP]);
            }
        }
        self.write(dst, TMP);
    }
}

/// The runtime symbol a service call lowers to.
fn rt_symbol(f: RtFn) -> &'static str {
    match f {
        RtFn::Gc => "til_rt_gc",
        RtFn::PrintStr => "til_rt_print_str",
        RtFn::IntToStr => "til_rt_int_to_str",
        RtFn::FloatToStr => "til_rt_float_to_str",
        RtFn::StrCmp => "til_rt_str_cmp",
        RtFn::StrEq => "til_rt_str_eq",
        RtFn::StrConcat => "til_rt_str_concat",
        RtFn::StrSub => "til_rt_str_sub",
        RtFn::StrFromChar => "til_rt_str_from_char",
        RtFn::PolyEq => "til_rt_poly_eq",
        RtFn::Sqrt => "til_rt_sqrt",
        RtFn::Sin => "til_rt_sin",
        RtFn::Cos => "til_rt_cos",
        RtFn::Atan => "til_rt_atan",
        RtFn::Exp => "til_rt_exp",
        RtFn::Ln => "til_rt_ln",
        RtFn::Floor => "til_rt_floor",
        RtFn::Trunc => "til_rt_trunc",
    }
}

/// The trap-stub symbol a trap branch targets.
fn trap_symbol(t: Trap) -> &'static str {
    match t {
        Trap::Overflow => "til_rt_trap_overflow",
        Trap::Div => "til_rt_trap_div",
        Trap::Subscript => "til_rt_trap_subscript",
        Trap::Domain => "til_rt_trap_domain",
        Trap::Chr => "til_rt_trap_chr",
        Trap::Size => "til_rt_trap_size",
    }
}

/// Emits a whole RTL program as textual x86-64: allocates each
/// function against the x64 register file, lowers to LIR, selects,
/// and renders the statics.
pub fn emit_x64(p: &RtlProgram) -> X64Module {
    // Stable label → symbol map, entry first; collisions (possible
    // after mangling) disambiguated by function index.
    let mut symbols: HashMap<String, String> = HashMap::new();
    let mut used: HashMap<String, usize> = HashMap::new();
    for f in &p.funs {
        let label = crate::link::fun_label(f.name);
        let mut sym = mangle(&label);
        let n = used.entry(sym.clone()).or_insert(0);
        *n += 1;
        if *n > 1 {
            sym = format!("{sym}_{n}");
        }
        symbols.insert(label, sym);
    }
    let funs = p
        .funs
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let al = crate::regalloc::allocate_for(f, &X64_REG_FILE);
            let lir = crate::emit::lower_fun(f, &al, p.tagged);
            let t = X64Target {
                symbols: symbols.clone(),
                fun_index: i,
            };
            t.select_fun(
                &lir,
                &TargetCtx {
                    tagged: p.tagged,
                    statics_addr: &[],
                },
            )
        })
        .collect();
    let statics = p
        .statics
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut d = format!("\t.section .rodata\ntil_static_{i}:\n");
            match s {
                StaticObj::Str(st) => {
                    d.push_str(&format!(
                        "\t.quad {} # string header\n",
                        header::make(header::KIND_STRING, st.len() as u64, 0)
                    ));
                    d.push_str(&format!("\t.ascii {:?}\n", st));
                }
                StaticObj::Rep(_) => {
                    d.push_str("\t.quad 0 # runtime type representation (linker-built)\n");
                }
                StaticObj::ExnPacket(id) => {
                    d.push_str(&format!(
                        "\t.quad {} # exn packet header\n\t.quad {id}\n",
                        header::make(header::KIND_RECORD, 1, 0) | header::EXN_BIT
                    ));
                }
            }
            d
        })
        .collect();
    X64Module { funs, statics }
}

/// Structural validation of an emitted module: every jump target
/// resolves to a label defined in the same function, and every safe
/// point (call) carries an in-range stack map. Returns the first
/// violation.
pub fn validate(m: &X64Module) -> Result<(), String> {
    for f in &m.funs {
        let defined: std::collections::HashSet<&str> = f
            .ops
            .iter()
            .filter_map(|o| match o {
                X64Op::Local(l) => Some(l.as_str()),
                _ => None,
            })
            .collect();
        for op in &f.ops {
            match op {
                X64Op::Jmp(t) | X64Op::Jcc(t) if !defined.contains(t.as_str()) => {
                    return Err(format!("{}: jump to undefined label {t}", f.symbol));
                }
                X64Op::Call { map, target, .. } => match map {
                    None => {
                        return Err(format!(
                            "{}: call to {target:?} without a stack map",
                            f.symbol
                        ))
                    }
                    Some(k) if *k >= f.maps.len() => {
                        return Err(format!("{}: stack map index {k} out of range", f.symbol))
                    }
                    Some(_) => {}
                },
                _ => {}
            }
        }
    }
    Ok(())
}
