//! Target-independent dataflow core of the machine-code verifier: the
//! abstract word classes, their join, the block-flow vocabulary, and
//! the worklist fixpoint bookkeeping. The per-target *transfer rules*
//! — what each instruction does to the abstract state, and what each
//! safe point's tables must imply — live with their targets:
//! [`crate::mcv`] for the linked VM unit, [`crate::mcv::x64`] for the
//! textual x86-64 stream.

use std::collections::{HashMap, HashSet, VecDeque};

/// Abstract class of one machine word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Abs {
    /// Unreachable.
    Bot,
    /// Frame slot never written on this path.
    Uninit,
    /// Known immediate (also covers static addresses from `Lea*`).
    Const(i64),
    /// Raw untraced word: native int, float bits, comparison result.
    Untraced,
    /// GC-safe traced pointer (or pointer-filtered word).
    Traced,
    /// Baseline-mode tagged word.
    Tagged,
    /// Odd-encoded code value.
    Code,
    /// Heap-interior pointer (HP-derived or locative); dies at a GC.
    Interior,
    /// Exception-handler chain record on the stack.
    Handler,
    /// SP-derived stack address.
    StackAddr,
    /// Pointer that was live across a GC point the tables did not
    /// cover — the collector would not have updated it.
    Stale,
    /// Valid word whose tracedness is decided at run time (companion).
    Unknown,
    /// Any valid word (top).
    Any,
}

/// Join (= widen: the lattice is flat, so joins stabilize in one
/// step). `Stale` absorbs every value class: if a merged value is used
/// after the merge it was live on the stale path too, so the uncovered
/// table entry is a real bug.
pub fn join(a: Abs, b: Abs) -> Abs {
    use Abs::*;
    if a == b {
        return a;
    }
    match (a, b) {
        (Bot, x) | (x, Bot) => x,
        (Any, _) | (_, Any) => Any,
        (Stale, Handler) | (Handler, Stale) | (Stale, StackAddr) | (StackAddr, Stale) => Any,
        (Stale, _) | (_, Stale) => Stale,
        _ => Any,
    }
}

/// How a block-local step continues.
pub enum Flow {
    /// Fall through to the next instruction.
    Fall,
    /// Conditional branch: both the (in-range) target and fall-through.
    CondBranch(u32),
    /// Unconditional in-range jump.
    Jump(u32),
    /// No in-function successor (return, tail call, raise, trap).
    Stop,
}

/// Worklist fixpoint bookkeeping over block leaders: recorded entry
/// states, the pending queue, and the join-and-requeue step. The
/// target's driver discovers leaders, steps instructions, and calls
/// [`Worklist::flow_to`] for every edge (including non-CFG edges like
/// the VM verifier's protected-region → handler-entry flows).
pub struct Worklist<S> {
    /// Block leaders (entry + every branch target).
    pub leaders: HashSet<u32>,
    /// Best-known entry state per leader.
    pub states: HashMap<u32, S>,
    /// Leaders whose entry state changed since last stepped.
    pub work: VecDeque<u32>,
}

impl<S: Clone> Worklist<S> {
    /// Empty instance; seed with [`Worklist::flow_to`] at the entry.
    pub fn new() -> Self {
        Worklist {
            leaders: HashSet::new(),
            states: HashMap::new(),
            work: VecDeque::new(),
        }
    }

    /// Joins `new` into the recorded entry state of leader `pc` with
    /// the target's join (`join_into` returns whether anything
    /// changed), queueing the leader on change or first visit.
    pub fn flow_to(&mut self, pc: u32, new: &S, join_into: impl FnOnce(&mut S, &S) -> bool) {
        match self.states.get_mut(&pc) {
            Some(old) => {
                if join_into(old, new) {
                    self.work.push_back(pc);
                }
            }
            None => {
                self.states.insert(pc, new.clone());
                self.work.push_back(pc);
            }
        }
    }
}

impl<S: Clone> Default for Worklist<S> {
    fn default() -> Self {
        Self::new()
    }
}
