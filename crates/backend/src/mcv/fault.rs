//! Fault injection for the machine-code verifier.
//!
//! Mirrors `til_common::fault` (the Bform/closure-stage registry) one
//! level down: arm a named corruption and [`crate::link`] applies it to
//! the fully assembled unit — code and GC tables — immediately before
//! returning, so the `mc-verify` phase must catch it and attribute the
//! failure to the right function and pc. Each fault models a real
//! emitter/linker bug class:
//!
//! * `swap-spill-slot` — a call-site frame descriptor swaps the return
//!   address slot with a traced spill slot (§2.3 table corruption);
//! * `drop-gc-entry` — a GC point loses a traced-slot (or register)
//!   entry, so the collector would miss a root;
//! * `retarget-branch` — a local branch is retargeted into the middle
//!   of another function (control-flow integrity);
//! * `clobber-sp` — an epilogue restores SP short by one word
//!   (callee-save discipline);
//! * `drop-call-site` — a call loses its frame descriptor, so the
//!   stack walk could not parse the caller's frame;
//! * `claim-dead-live` — a call-site descriptor drops its dead-slot
//!   marks, claiming the call's uninitialized result slot holds a
//!   live value (the blanket Uninit/Stale tolerance the verifier used
//!   to extend to *every* listed slot masked exactly this corruption);
//! * `drop-handler-edge` — a call site inside a protected region loses
//!   a traced slot the handler depends on (the collector stops
//!   updating it across the call, so the raise path reads a stale
//!   pointer), or — when no slot tables exist, as in the tagged
//!   baseline — the handler-install `Lea` is retargeted into another
//!   function's interior (the handler branch of the CFI check).
//!
//! Arm programmatically with [`break_emit`] (guard-scoped) or
//! externally with the `TIL_BREAK_EMIT` environment variable. The
//! registry is process-global: tests that arm a fault must not run
//! concurrently with other compiles in the same process.

use std::sync::Mutex;
use til_runtime::{GcTables, LocRep};
use til_vm::{regs, Alu, FuncRange, Instr, Op};

/// Every fault name [`apply_armed`] understands.
pub const FAULTS: [&str; 7] = [
    "swap-spill-slot",
    "drop-gc-entry",
    "retarget-branch",
    "clobber-sp",
    "drop-call-site",
    "claim-dead-live",
    "drop-handler-edge",
];

static ARMED: Mutex<Option<String>> = Mutex::new(None);
static LAST: Mutex<Option<FaultReport>> = Mutex::new(None);

/// Where an armed fault actually landed, for attribution asserts: the
/// verifier's diagnostic must name this function, and flag a pc inside
/// it.
#[derive(Clone, Debug)]
pub struct FaultReport {
    /// The fault name that was applied.
    pub fault: String,
    /// Label of the function whose code/tables were corrupted.
    pub fun: String,
    /// The corrupted pc (instruction index in the linked unit).
    pub pc: u32,
}

/// Arms the named fault; disarms when the guard drops.
pub fn break_emit(name: &str) -> Injection {
    *ARMED.lock().unwrap() = Some(name.to_string());
    LAST.lock().unwrap().take();
    Injection(())
}

/// Armed-injection guard (see [`break_emit`]).
pub struct Injection(());

impl Drop for Injection {
    fn drop(&mut self) {
        ARMED.lock().unwrap().take();
    }
}

fn armed_name() -> Option<String> {
    if let Some(n) = ARMED.lock().unwrap().clone() {
        return Some(n);
    }
    std::env::var("TIL_BREAK_EMIT").ok().filter(|v| !v.is_empty())
}

/// The report of the most recently applied fault (cleared by
/// [`break_emit`]). `None` when the armed fault found no applicable
/// site in the unit.
pub fn last_report() -> Option<FaultReport> {
    LAST.lock().unwrap().clone()
}

fn fun_of(pc: u32, fun_ranges: &[FuncRange]) -> String {
    fun_ranges
        .iter()
        .find(|r| r.start <= pc && pc < r.end)
        .map(|r| r.name.clone())
        .unwrap_or_else(|| "<stub>".into())
}

/// Applies the armed fault (if any) to the assembled unit. No-op when
/// nothing is armed; records a [`FaultReport`] when a corruption was
/// actually applied.
pub fn apply_armed(code: &mut [Instr], tables: &mut GcTables, fun_ranges: &[FuncRange]) {
    let Some(name) = armed_name() else { return };
    let landed = match name.as_str() {
        "swap-spill-slot" => swap_spill_slot(tables),
        "drop-gc-entry" => drop_gc_entry(tables, fun_ranges),
        "retarget-branch" => retarget_branch(code, fun_ranges),
        "clobber-sp" => clobber_sp(code, fun_ranges),
        "drop-call-site" => drop_call_site(code, tables),
        "claim-dead-live" => claim_dead_live(tables),
        "drop-handler-edge" => drop_handler_edge(code, tables, fun_ranges),
        _ => None,
    };
    if let Some(pc) = landed {
        *LAST.lock().unwrap() = Some(FaultReport {
            fault: name,
            fun: fun_of(pc, fun_ranges),
            pc,
        });
    }
}

/// Swaps the return-address slot with a traced spill slot in the first
/// call-site frame descriptor that has one.
fn swap_spill_slot(tables: &mut GcTables) -> Option<u32> {
    let mut pcs: Vec<u32> = tables.call_sites.keys().copied().collect();
    pcs.sort_unstable();
    for pc in pcs {
        let fi = tables.call_sites.get_mut(&pc).unwrap();
        if let Some(entry) = fi
            .slots
            .iter_mut()
            .find(|(o, rep)| *o != fi.ra_offset && matches!(rep, LocRep::Trace))
        {
            std::mem::swap(&mut entry.0, &mut fi.ra_offset);
            // The check fires at the call instruction itself.
            return Some(pc - 1);
        }
    }
    None
}

/// Removes one traced entry from a GC point — preferring a frame slot
/// in a non-toplevel function that (a) the call-site descriptor at the
/// return address also lists as genuinely live across the call, and
/// (b) stays listed at a later GC point of the same function. Such a
/// slot carries a dynamic heap value threaded through an allocating
/// loop (a toplevel frame slot may hold a pointer into static data or
/// a value the verifier only knows as ⊤, so dropping its entry can be
/// unobservable), so the slot the table stops covering goes stale and
/// the loss is caught at a downstream check or use.
fn drop_gc_entry(tables: &mut GcTables, fun_ranges: &[FuncRange]) -> Option<u32> {
    let mut pcs: Vec<u32> = tables.gc_points.keys().copied().collect();
    pcs.sort_unstable();
    let fun_end = |pc: u32| {
        fun_ranges
            .iter()
            .find(|r| r.start <= pc && pc < r.end)
            .map_or(0, |r| r.end)
    };
    // The entry function (lowest code range) is the toplevel.
    let entry_start = fun_ranges.iter().map(|r| r.start).min().unwrap_or(0);
    let entry_end = fun_ranges
        .iter()
        .find(|r| r.start == entry_start)
        .map_or(0, |r| r.end);
    for &pc in &pcs {
        if pc >= entry_start && pc < entry_end {
            continue;
        }
        let Some(cs) = tables.call_sites.get(&(pc + 1)) else {
            continue;
        };
        let end = fun_end(pc);
        let across_and_looped = |o: u32| {
            cs.slots.iter().any(|(so, _)| *so == o)
                && !cs.dead.contains(&o)
                && tables.gc_points.iter().any(|(&q, g)| {
                    q > pc && q < end && g.frame.slots.iter().any(|(so, _)| *so == o)
                })
        };
        let at = tables.gc_points[&pc]
            .frame
            .slots
            .iter()
            .position(|(o, _)| across_and_looped(*o));
        if let Some(at) = at {
            let p = tables.gc_points.get_mut(&pc).unwrap();
            p.frame.slots.remove(at);
            return Some(pc);
        }
    }
    for &pc in &pcs {
        if !tables.call_sites.contains_key(&(pc + 1)) {
            continue;
        }
        let p = tables.gc_points.get_mut(&pc).unwrap();
        if !p.frame.slots.is_empty() {
            p.frame.slots.remove(0);
            return Some(pc);
        }
    }
    for &pc in &pcs {
        let p = tables.gc_points.get_mut(&pc).unwrap();
        if !p.frame.slots.is_empty() {
            p.frame.slots.remove(0);
            return Some(pc);
        }
        if !p.regs.is_empty() {
            p.regs.remove(0);
            return Some(pc);
        }
    }
    None
}

/// Retargets the first intra-function branch into the interior of
/// another function.
fn retarget_branch(code: &mut [Instr], fun_ranges: &[FuncRange]) -> Option<u32> {
    for (i, r) in fun_ranges.iter().enumerate() {
        let victim = fun_ranges
            .iter()
            .enumerate()
            .find(|(j, v)| *j != i && v.end - v.start >= 2)?;
        let bad = victim.1.start + 1;
        for pc in r.start..r.end {
            let local = |t: u32| t >= r.start && t < r.end;
            match &mut code[pc as usize] {
                Instr::Br(t) | Instr::Beqz(_, t) | Instr::Bnez(_, t) if local(*t) => {
                    *t = bad;
                    return Some(pc);
                }
                _ => {}
            }
        }
    }
    None
}

/// Shrinks the first epilogue's SP restore by one word.
fn clobber_sp(code: &mut [Instr], fun_ranges: &[FuncRange]) -> Option<u32> {
    for r in fun_ranges {
        for pc in r.start..r.end {
            if let Instr::Alu {
                op: Alu::Add,
                dst,
                a,
                b: Op::I(n),
            } = &mut code[pc as usize]
            {
                if *dst == regs::SP && *a == regs::SP && *n > 0 {
                    *n -= 8;
                    return Some(pc);
                }
            }
        }
    }
    None
}

/// Clears the dead-slot marks of the first call-site descriptor that
/// has any: the descriptor now claims the call's own result slot (the
/// only slot the emitter ever marks dead) holds a live value during
/// the callee's stack walk, though nothing has written it yet.
fn claim_dead_live(tables: &mut GcTables) -> Option<u32> {
    let mut pcs: Vec<u32> = tables.call_sites.keys().copied().collect();
    pcs.sort_unstable();
    for pc in pcs {
        let fi = tables.call_sites.get_mut(&pc).unwrap();
        if !fi.dead.is_empty() {
            fi.dead.clear();
            // The check fires at the call instruction itself.
            return Some(pc - 1);
        }
    }
    None
}

/// Breaks a handler edge. Preferred flavor: a call site inside a
/// protected region (between a handler-install `Lea` and its target)
/// loses a traced, genuinely-live slot that is also listed at a table
/// entry at or past the handler entry — the collector stops updating
/// the slot across the call, so on the raise path the handler reads a
/// pointer the tables left stale, and the verifier flags the first
/// downstream claim or use. Fallback (the tagged baseline keeps no
/// slot tables): retarget the handler-install `Lea` into another
/// function's interior, tripping the CFI check at exactly the seeded
/// pc.
fn drop_handler_edge(
    code: &mut [Instr],
    tables: &mut GcTables,
    fun_ranges: &[FuncRange],
) -> Option<u32> {
    // Handler regions: (install pc, handler entry, function end).
    let mut regions: Vec<(u32, u32, u32)> = Vec::new();
    for r in fun_ranges {
        for pc in r.start..r.end {
            if let Instr::Lea { target, .. } = code[pc as usize] {
                if target > pc && target < r.end {
                    regions.push((pc, target, r.end));
                }
            }
        }
    }
    // The preferred flavor skips the toplevel (lowest code range):
    // its slots often hold static data the verifier classes as
    // constants, which a missed collector update cannot disturb.
    let entry_start = fun_ranges.iter().map(|r| r.start).min().unwrap_or(0);
    let entry_end = fun_ranges
        .iter()
        .find(|r| r.start == entry_start)
        .map_or(0, |r| r.end);
    for &(lea, target, end) in &regions {
        if lea >= entry_start && lea < entry_end {
            continue;
        }
        for pc in lea..target {
            if !matches!(code[pc as usize], Instr::Jsr(_) | Instr::JsrR(_)) {
                continue;
            }
            let Some(fi) = tables.call_sites.get(&(pc + 1)) else {
                continue;
            };
            let listed_from_handler = |o: u32| {
                tables.gc_points.iter().any(|(&q, g)| {
                    q >= target && q < end && g.frame.slots.iter().any(|(so, _)| *so == o)
                }) || tables.call_sites.iter().any(|(&q, f)| {
                    q > target && q <= end && f.slots.iter().any(|(so, _)| *so == o)
                })
            };
            let at = fi.slots.iter().position(|(o, rep)| {
                matches!(rep, LocRep::Trace) && !fi.dead.contains(o) && listed_from_handler(*o)
            });
            if let Some(at) = at {
                tables.call_sites.get_mut(&(pc + 1)).unwrap().slots.remove(at);
                return Some(pc);
            }
        }
    }
    for &(lea, _, _) in &regions {
        let me = fun_ranges.iter().find(|r| r.start <= lea && lea < r.end)?;
        if let Some(victim) = fun_ranges
            .iter()
            .find(|v| v.start != me.start && v.end - v.start >= 2)
        {
            if let Instr::Lea { target, .. } = &mut code[lea as usize] {
                *target = victim.start + 1;
                return Some(lea);
            }
        }
    }
    None
}

/// Removes the frame descriptor of the first `Jsr`/`JsrR` call site.
fn drop_call_site(code: &[Instr], tables: &mut GcTables) -> Option<u32> {
    let mut pcs: Vec<u32> = tables.call_sites.keys().copied().collect();
    pcs.sort_unstable();
    for pc in pcs {
        if pc == 0 {
            continue;
        }
        if matches!(code[pc as usize - 1], Instr::Jsr(_) | Instr::JsrR(_)) {
            tables.call_sites.remove(&pc);
            return Some(pc - 1);
        }
    }
    None
}
