//! Per-target mcv rules for the textual x86-64 backend, instantiating
//! the shared [`super::dataflow`] worklist over the structured
//! [`X64Op`] stream the emitter mirrors alongside the text.
//!
//! The x64 target is never linked or executed here, so the rules are
//! the *structural* half of the VM verifier's contract — the part
//! checkable from the instruction stream alone:
//!
//! 1. **rsp discipline** — the tracked rsp delta (bytes below the
//!    entry rsp) is exactly zero at every `ret` and tail-call `jmp`,
//!    never rises above the frame base, and is reassigned from a
//!    register only on the terminal raise path.
//! 2. **Arguments defined before calls** — every argument register a
//!    call reads was written on *every* path since the last clobber
//!    (ordinary calls clobber all allocatable registers; the
//!    `til_rt_*` runtime stubs preserve them, matching the VM's
//!    runtime-service contract). Indirect calls additionally need the
//!    decoded target in `r11`.
//! 3. **Control-flow integrity** — every `jmp`/`jcc` lands on a label
//!    defined once in the same function, and every direct call names a
//!    function of the module or a runtime stub.
//! 4. **Safe-point coverage** — every call carries an in-range stack
//!    map (shared with [`crate::targets::x64::validate`], kept here so
//!    the rules stand alone).
//!
//! Handler-entry blocks have no in-stream edge (they are reached only
//! through a raise, which restores the install-time rsp and delivers
//! the packet in `rax`), so after the main fixpoint drains, any
//! unvisited label is seeded with exactly that state and the fixpoint
//! resumes — the x64 counterpart of the VM verifier's
//! protected-region → handler-entry flows.
//!
//! The value-class half (traced vs. untraced, stale-pointer detection,
//! table re-derivation against an abstract heap) needs the linked
//! image and stays VM-side in [`crate::mcv`].

use super::dataflow::{Flow, Worklist};
use crate::targets::x64::{X64Fun, X64Module, X64Op, REG};
use std::collections::{HashMap, HashSet};
use til_common::{Diagnostic, Result};

/// Abstract state at one op: the rsp delta and the registers written
/// since the last clobber.
#[derive(Clone, PartialEq)]
struct St {
    /// Bytes rsp sits below its entry value; `None` once reassigned
    /// from a register (legal only on the terminal raise path) or once
    /// paths disagree.
    delta: Option<i64>,
    /// Registers (names without `%`) defined on every path here since
    /// the last full clobber.
    defined: HashSet<String>,
}

impl St {
    fn join_from(&mut self, other: &St) -> bool {
        let mut changed = false;
        if self.delta != other.delta && self.delta.is_some() {
            self.delta = None;
            changed = true;
        }
        let before = self.defined.len();
        self.defined.retain(|r| other.defined.contains(r));
        changed || self.defined.len() != before
    }
}

/// Runs the x64 rules over every function of an emitted module.
pub fn verify(m: &X64Module) -> Result<()> {
    let fun_syms: HashSet<&str> = m.funs.iter().map(|f| f.symbol.as_str()).collect();
    for f in &m.funs {
        verify_fun(f, &fun_syms)?;
    }
    Ok(())
}

fn fail(f: &X64Fun, i: usize, msg: &str) -> Diagnostic {
    Diagnostic::ice(
        "mc-verify-x64",
        format!("{}: op {i} ({:?}): {msg}", f.symbol, f.ops[i]),
    )
}

fn verify_fun(f: &X64Fun, fun_syms: &HashSet<&str>) -> Result<()> {
    // Label → op index, each defined exactly once.
    let mut at: HashMap<&str, u32> = HashMap::new();
    for (i, op) in f.ops.iter().enumerate() {
        if let X64Op::Local(l) = op {
            if at.insert(l.as_str(), i as u32).is_some() {
                return Err(fail(f, i, "duplicate label"));
            }
        }
    }
    // Every label is a leader: fall-through into one is a join.
    let mut flow: Worklist<St> = Worklist::new();
    flow.leaders.insert(0);
    for (i, op) in f.ops.iter().enumerate() {
        if matches!(op, X64Op::Local(_)) {
            flow.leaders.insert(i as u32);
        }
    }
    let entry = St {
        delta: Some(0),
        defined: REG
            .iter()
            .take(f.nparams.min(REG.len()))
            .map(|r| (*r).to_string())
            .collect(),
    };
    flow.flow_to(0, &entry, |o, n| o.join_from(n));
    loop {
        while let Some(leader) = flow.work.pop_front() {
            let mut st = flow.states[&leader].clone();
            let mut i = leader as usize;
            loop {
                if i >= f.ops.len() {
                    return Err(fail(f, i - 1, "control falls off the end of the function"));
                }
                if i as u32 != leader && flow.leaders.contains(&(i as u32)) {
                    flow.flow_to(i as u32, &st, |o, n| o.join_from(n));
                    break;
                }
                match step(f, i, &mut st, &at, fun_syms)? {
                    Flow::Fall => i += 1,
                    Flow::CondBranch(t) => {
                        flow.flow_to(t, &st, |o, n| o.join_from(n));
                        i += 1;
                    }
                    Flow::Jump(t) => {
                        flow.flow_to(t, &st, |o, n| o.join_from(n));
                        break;
                    }
                    Flow::Stop => break,
                }
            }
        }
        // A label no in-stream edge reaches is a handler entry: a
        // raise restored rsp to its install-time value (the frame is
        // intact below the prologue) and delivered the packet in rax.
        let orphan = f.ops.iter().enumerate().find_map(|(i, op)| {
            if matches!(op, X64Op::Local(_)) && !flow.states.contains_key(&(i as u32)) {
                Some(i as u32)
            } else {
                None
            }
        });
        match orphan {
            Some(i) => {
                let seed = St {
                    delta: Some(f.frame_bytes as i64),
                    defined: std::iter::once("rax".to_string()).collect(),
                };
                flow.flow_to(i, &seed, |o, n| o.join_from(n));
            }
            None => break,
        }
    }
    Ok(())
}

fn step(
    f: &X64Fun,
    i: usize,
    st: &mut St,
    at: &HashMap<&str, u32>,
    fun_syms: &HashSet<&str>,
) -> Result<Flow> {
    match &f.ops[i] {
        X64Op::Local(_) => Ok(Flow::Fall),
        X64Op::Other { defs } => {
            for d in defs {
                if d == "rsp" {
                    // Only the raise sequence assigns rsp from a
                    // register; the path must terminate without
                    // touching the frame.
                    st.delta = None;
                } else {
                    st.defined.insert(d.clone());
                }
            }
            Ok(Flow::Fall)
        }
        X64Op::Rsp(d) => {
            match st.delta {
                Some(cur) => {
                    let next = cur - d;
                    if next < 0 {
                        return Err(fail(f, i, "rsp adjusted above the frame base"));
                    }
                    st.delta = Some(next);
                }
                None => return Err(fail(f, i, "rsp adjustment with unknown delta")),
            }
            Ok(Flow::Fall)
        }
        X64Op::Ret => {
            if st.delta != Some(0) {
                return Err(fail(
                    f,
                    i,
                    &format!("return with rsp delta {:?} (frame not popped)", st.delta),
                ));
            }
            Ok(Flow::Stop)
        }
        X64Op::Jmp(t) => match at.get(t.as_str()) {
            Some(&target) => Ok(Flow::Jump(target)),
            None => Err(fail(f, i, &format!("jump to undefined label {t}"))),
        },
        X64Op::Jcc(t) => match at.get(t.as_str()) {
            Some(&target) => Ok(Flow::CondBranch(target)),
            None => Err(fail(f, i, &format!("jump to undefined label {t}"))),
        },
        X64Op::JmpReg(t) => {
            if t.starts_with("til_rt_trap_") {
                // Conditional side exit to a trap stub; fall through.
                return Ok(Flow::Fall);
            }
            // Tail call (direct symbol or decoded target in r11) or
            // the terminal jump of a raise (delta already unknown).
            if let Some(d) = st.delta {
                if d != 0 {
                    return Err(fail(
                        f,
                        i,
                        &format!("tail call with rsp delta {d} (frame not popped)"),
                    ));
                }
            }
            Ok(Flow::Stop)
        }
        X64Op::Call { target, nargs, map } => {
            match map {
                None => return Err(fail(f, i, "call without a stack map")),
                Some(k) if *k >= f.maps.len() => {
                    return Err(fail(f, i, &format!("stack map index {k} out of range")))
                }
                Some(_) => {}
            }
            for r in REG.iter().take((*nargs).min(REG.len())) {
                if !st.defined.contains(*r) {
                    return Err(fail(
                        f,
                        i,
                        &format!("argument register %{r} not defined on every path to the call"),
                    ));
                }
            }
            match target {
                Some(s) if s.starts_with("til_rt_") => {
                    // Runtime stubs preserve every register (the VM's
                    // runtime-service contract); only rax is written.
                    st.defined.insert("rax".to_string());
                }
                Some(s) => {
                    if !fun_syms.contains(s.as_str()) {
                        return Err(fail(f, i, &format!("call to unknown symbol {s}")));
                    }
                    st.defined.clear();
                    st.defined.insert("rax".to_string());
                }
                None => {
                    if !st.defined.contains("r11") {
                        return Err(fail(
                            f,
                            i,
                            "indirect call without a decoded target in %r11",
                        ));
                    }
                    st.defined.clear();
                    st.defined.insert("rax".to_string());
                }
            }
            Ok(Flow::Fall)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use til_runtime::{FrameInfo, GcPoint};

    fn fun(ops: Vec<X64Op>, maps: usize, frame_bytes: u32, nparams: usize) -> X64Fun {
        X64Fun {
            symbol: "til_t".into(),
            lines: Vec::new(),
            ops,
            maps: (0..maps)
                .map(|_| GcPoint {
                    regs: vec![],
                    frame: FrameInfo {
                        size: frame_bytes + 8,
                        ra_offset: frame_bytes,
                        slots: vec![],
                        dead: vec![],
                    },
                })
                .collect(),
            frame_bytes,
            nparams,
        }
    }

    fn check(f: X64Fun) -> Result<()> {
        let m = X64Module {
            funs: vec![f],
            statics: vec![],
        };
        verify(&m)
    }

    fn defs(rs: &[&str]) -> X64Op {
        X64Op::Other {
            defs: rs.iter().map(|r| (*r).to_string()).collect(),
        }
    }

    #[test]
    fn balanced_frame_and_defined_args_pass() {
        let f = fun(
            vec![
                X64Op::Rsp(-24),
                defs(&["rdi"]),
                X64Op::Call {
                    target: Some("til_rt_gc".into()),
                    nargs: 1,
                    map: Some(0),
                },
                X64Op::Rsp(24),
                X64Op::Ret,
            ],
            1,
            24,
            0,
        );
        assert!(check(f).is_ok());
    }

    #[test]
    fn unbalanced_return_is_flagged() {
        let f = fun(vec![X64Op::Rsp(-24), X64Op::Ret], 0, 24, 0);
        let e = check(f).unwrap_err();
        assert!(e.message.contains("frame not popped"), "{}", e.message);
    }

    #[test]
    fn undefined_argument_register_is_flagged() {
        let f = fun(
            vec![
                // Ordinary call clobbers, so rsi (set before it) is no
                // longer defined at the second call.
                defs(&["rdi"]),
                defs(&["rsi"]),
                X64Op::Call {
                    target: Some("til_t".into()),
                    nargs: 1,
                    map: Some(0),
                },
                X64Op::Call {
                    target: Some("til_t".into()),
                    nargs: 2,
                    map: Some(0),
                },
                X64Op::Ret,
            ],
            1,
            0,
            1,
        );
        let e = check(f).unwrap_err();
        assert!(
            e.message.contains("not defined on every path to the call"),
            "{}",
            e.message
        );
    }

    #[test]
    fn trap_jump_falls_through_and_raise_path_allows_unknown_delta() {
        let f = fun(
            vec![
                X64Op::Rsp(-24),
                X64Op::JmpReg("til_rt_trap_overflow".into()),
                defs(&["rax", "r11", "rsp"]),
                X64Op::JmpReg("r11".into()),
            ],
            0,
            24,
            0,
        );
        assert!(check(f).is_ok());
    }

    #[test]
    fn orphan_label_is_verified_as_a_handler_entry() {
        // The handler block is reachable only through a raise, yet its
        // unbalanced ret must still be caught.
        let f = fun(
            vec![
                X64Op::Rsp(-24),
                X64Op::Rsp(24),
                X64Op::Ret,
                X64Op::Local(".L0_b1".into()),
                X64Op::Ret,
            ],
            0,
            24,
            0,
        );
        let e = check(f).unwrap_err();
        assert!(e.message.contains("frame not popped"), "{}", e.message);
    }
}
