//! Liveness analysis over RTL (basic blocks + backward dataflow),
//! feeding both register allocation and the GC tables' per-site
//! live-slot filtering (paper §2.3: "additional liveness information
//! ... to avoid tracing pointers that are no longer needed").

use std::collections::{HashMap, HashSet};
use til_rtl::{RtlFun, VReg};

pub use til_rtl::analysis::{defs, uses};

/// Per-instruction live-out sets for a function.
pub struct Liveness {
    /// `live_out[i]` = vregs live immediately after instruction `i`.
    pub live_out: Vec<HashSet<VReg>>,
    /// `live_in[i]`.
    pub live_in: Vec<HashSet<VReg>>,
}

/// Computes liveness. Computed-representation vregs are kept alive with
/// their dependents (the GC needs the representation wherever the value
/// is live).
pub fn liveness(f: &RtlFun) -> Liveness {
    let n = f.instrs.len();
    // Successors — the shared model in `til_rtl::analysis`, which adds
    // a handler edge from *every* instruction in a protected region
    // (any of them may raise: calls, traps, plain arithmetic), so
    // values live only into a handler are live across every potential
    // raise point and land in listed frame slots.
    let succ = til_rtl::analysis::successors(f);
    // Rep dependencies: value vreg -> rep vreg.
    let mut rep_dep: HashMap<VReg, VReg> = HashMap::new();
    for (v, r) in &f.reps {
        if let til_rtl::RRep::Computed(rv) = r {
            rep_dep.insert(*v, *rv);
        }
    }
    let succs = |i: usize| -> &[usize] { &succ[i] };
    let mut live_in: Vec<HashSet<VReg>> = vec![HashSet::new(); n];
    let mut live_out: Vec<HashSet<VReg>> = vec![HashSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            let mut out: HashSet<VReg> = HashSet::new();
            for &s in succs(i) {
                out.extend(live_in[s].iter().copied());
            }
            let mut inn = out.clone();
            if let Some(d) = defs(&f.instrs[i]) {
                inn.remove(&d);
            }
            for u in uses(&f.instrs[i]) {
                inn.insert(u);
                if let Some(rv) = rep_dep.get(&u) {
                    inn.insert(*rv);
                }
            }
            // A defined value's rep must be live at the definition too.
            if let Some(d) = defs(&f.instrs[i]) {
                if out.contains(&d) {
                    if let Some(rv) = rep_dep.get(&d) {
                        inn.insert(*rv);
                    }
                }
            }
            if inn != live_in[i] || out != live_out[i] {
                live_in[i] = inn;
                live_out[i] = out;
                changed = true;
            }
        }
    }
    Liveness { live_out, live_in }
}
