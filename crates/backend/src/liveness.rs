//! Liveness analysis over RTL (basic blocks + backward dataflow),
//! feeding both register allocation and the GC tables' per-site
//! live-slot filtering (paper §2.3: "additional liveness information
//! ... to avoid tracing pointers that are no longer needed").

use std::collections::{HashMap, HashSet};
use til_rtl::{Lbl, RInstr, RtlFun, VReg};

pub use til_rtl::analysis::{defs, uses};

/// Per-instruction live-out sets for a function.
pub struct Liveness {
    /// `live_out[i]` = vregs live immediately after instruction `i`.
    pub live_out: Vec<HashSet<VReg>>,
    /// `live_in[i]`.
    pub live_in: Vec<HashSet<VReg>>,
}

/// Computes liveness. Computed-representation vregs are kept alive with
/// their dependents (the GC needs the representation wherever the value
/// is live).
pub fn liveness(f: &RtlFun) -> Liveness {
    let n = f.instrs.len();
    // Successors.
    let mut label_at: HashMap<Lbl, usize> = HashMap::new();
    for (i, ins) in f.instrs.iter().enumerate() {
        if let RInstr::Label(l) = ins {
            label_at.insert(*l, i);
        }
    }
    // Rep dependencies: value vreg -> rep vreg.
    let mut rep_dep: HashMap<VReg, VReg> = HashMap::new();
    for (v, r) in &f.reps {
        if let til_rtl::RRep::Computed(rv) = r {
            rep_dep.insert(*v, *rv);
        }
    }
    let succs = |i: usize| -> Vec<usize> {
        match &f.instrs[i] {
            RInstr::Br(l) => vec![label_at[l]],
            RInstr::Beqz(_, l) | RInstr::Bnez(_, l) => {
                let mut s = vec![label_at[l]];
                if i + 1 < n {
                    s.push(i + 1);
                }
                s
            }
            RInstr::Ret(_) | RInstr::TailCall { .. } | RInstr::Raise { .. } => vec![],
            RInstr::PushHandler { lbl, .. } => {
                // The handler is reachable from anywhere in the
                // protected region; modelling the edge here is sound.
                let mut s = vec![label_at[lbl]];
                if i + 1 < n {
                    s.push(i + 1);
                }
                s
            }
            _ => {
                if i + 1 < n {
                    vec![i + 1]
                } else {
                    vec![]
                }
            }
        }
    };
    let mut live_in: Vec<HashSet<VReg>> = vec![HashSet::new(); n];
    let mut live_out: Vec<HashSet<VReg>> = vec![HashSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            let mut out: HashSet<VReg> = HashSet::new();
            for s in succs(i) {
                out.extend(live_in[s].iter().copied());
            }
            let mut inn = out.clone();
            if let Some(d) = defs(&f.instrs[i]) {
                inn.remove(&d);
            }
            for u in uses(&f.instrs[i]) {
                inn.insert(u);
                if let Some(rv) = rep_dep.get(&u) {
                    inn.insert(*rv);
                }
            }
            // A defined value's rep must be live at the definition too.
            if let Some(d) = defs(&f.instrs[i]) {
                if out.contains(&d) {
                    if let Some(rv) = rep_dep.get(&d) {
                        inn.insert(*rv);
                    }
                }
            }
            if inn != live_in[i] || out != live_out[i] {
                live_in[i] = inn;
                live_out[i] = out;
                changed = true;
            }
        }
    }
    Liveness { live_out, live_in }
}
