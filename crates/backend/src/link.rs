//! The linker/loader: lays out the globals and static data, emits the
//! entry and trap stubs, concatenates the functions, patches
//! relocations, assembles the final GC tables, and produces a runnable
//! machine image.

use crate::emit::{emit_fun, EmittedFun, FunSig, Reloc};
use crate::regalloc::allocate;
use std::collections::HashMap;
use til_common::{Diagnostic, Result, Tracer, Var};
use til_runtime::{rep, FrameInfo, GcMode, GcTables, LocRep, RepExpr, RtData};
use til_rtl::{RtlProgram, StaticObj, HEAP_BASE};
use til_vm::{code_value, header, regs, FuncRange, Instr, Layout, Op, RtFn, Trap};

/// A linked, loadable program.
pub struct Linked {
    /// The code segment.
    pub code: Vec<Instr>,
    /// Memory layout.
    pub layout: Layout,
    /// GC tables.
    pub tables: GcTables,
    /// Initial memory contents `(byte address, word)`.
    pub image: Vec<(u64, u64)>,
    /// Trap stub addresses.
    pub traps: HashMap<Trap, u32>,
    /// Datatype table for the runtime.
    pub data_table: Vec<RtData>,
    /// Collector mode.
    pub mode: GcMode,
    /// Code size in bytes (instructions × 8).
    pub code_bytes: usize,
    /// Static data bytes.
    pub static_bytes: usize,
    /// Per-function code ranges (sorted by start; emitted alongside
    /// the GC tables). Drives the execution profiler's per-function
    /// attribution and the census's closure detection; pc values below
    /// the first range are linker stub code.
    pub fun_ranges: Vec<FuncRange>,
    /// Calling-convention signatures, one per entry of `fun_ranges`
    /// (same order). Consumed by the machine-code verifier
    /// ([`crate::mcv`]); not part of the runnable image.
    pub sigs: Vec<FunSig>,
    /// Sorted pcs of the heap-pointer bumps completing
    /// exception-packet allocations. The execution profiler charges
    /// the HP delta observed after these instructions to its `"(rt)"`
    /// bucket, so packet construction is visible as runtime allocation
    /// instead of vanishing into the raising function's total.
    pub exn_alloc_pcs: Vec<u32>,
}

/// Link-time configuration.
#[derive(Clone, Copy, Debug)]
pub struct LinkOptions {
    /// Semispace size in bytes.
    pub semi_bytes: u64,
    /// Stack size in bytes.
    pub stack_bytes: u64,
    /// Worker threads for per-function register allocation and
    /// emission (the layout, relocation and table assembly that
    /// follow are sequential, so the image is identical for every
    /// value).
    pub jobs: usize,
}

impl Default for LinkOptions {
    fn default() -> Self {
        LinkOptions {
            semi_bytes: 16 << 20,
            stack_bytes: 4 << 20,
            jobs: 1,
        }
    }
}

/// Exception ids for the trap stubs (fixed by the front end's builtin
/// exception environment).
const TRAPS: [(Trap, u32); 6] = [
    (Trap::Overflow, 3),
    (Trap::Div, 2),
    (Trap::Subscript, 4),
    (Trap::Domain, 7),
    (Trap::Chr, 6),
    (Trap::Size, 5),
];

struct Statics {
    image: Vec<(u64, u64)>,
    next: u64,
    addrs: Vec<u64>,
    interned_reps: HashMap<String, u64>,
    interned_strs: HashMap<String, u64>,
    packets: HashMap<u32, u64>,
}

impl Statics {
    fn alloc_words(&mut self, words: &[u64]) -> u64 {
        let addr = self.next;
        for (i, w) in words.iter().enumerate() {
            self.image.push((addr + 8 * i as u64, *w));
        }
        self.next += 8 * words.len() as u64;
        addr
    }

    fn string(&mut self, s: &str) -> u64 {
        if let Some(&a) = self.interned_strs.get(s) {
            return a;
        }
        let bytes = s.as_bytes();
        let mut words = vec![header::make(header::KIND_STRING, bytes.len() as u64, 0)];
        for chunk in bytes.chunks(8) {
            let mut w = 0u64;
            for (j, b) in chunk.iter().enumerate() {
                w |= (*b as u64) << (j * 8);
            }
            words.push(w);
        }
        let a = self.alloc_words(&words);
        self.interned_strs.insert(s.to_string(), a);
        a
    }

    fn packet(&mut self, exn: u32) -> u64 {
        if let Some(&a) = self.packets.get(&exn) {
            return a;
        }
        let a = self.alloc_words(&[
            header::make(header::KIND_RECORD, 1, 0) | header::EXN_BIT,
            exn as u64,
        ]);
        self.packets.insert(exn, a);
        a
    }

    /// Materializes a ground representation; returns its value
    /// (immediate or address).
    fn rep_value(&mut self, e: &RepExpr) -> u64 {
        match e {
            RepExpr::Int => rep::INT,
            RepExpr::Float => rep::FLOAT,
            RepExpr::Str => rep::STR,
            RepExpr::Exn => rep::EXN,
            RepExpr::Arrow => rep::ARROW,
            structured => {
                let key = format!("{structured:?}");
                if let Some(&a) = self.interned_reps.get(&key) {
                    return a;
                }
                let words = match structured {
                    RepExpr::Record(fs) => {
                        let mut w = vec![0, rep::TAG_RECORD, fs.len() as u64];
                        for f in fs {
                            let v = self.rep_value(f);
                            w.push(v);
                        }
                        w[0] = header::make(header::KIND_RECORD, (w.len() - 1) as u64, 0);
                        w
                    }
                    RepExpr::Array(el) => {
                        let v = self.rep_value(el);
                        vec![
                            header::make(header::KIND_RECORD, 2, 0),
                            rep::TAG_ARRAY,
                            v,
                        ]
                    }
                    RepExpr::Data(id, args) => {
                        let mut w = vec![0, rep::TAG_DATA, *id as u64, args.len() as u64];
                        for a in args {
                            let v = self.rep_value(a);
                            w.push(v);
                        }
                        w[0] = header::make(header::KIND_RECORD, (w.len() - 1) as u64, 0);
                        w
                    }
                    _ => unreachable!("immediates handled above"),
                };
                let a = self.alloc_words(&words);
                self.interned_reps.insert(key, a);
                a
            }
        }
    }
}

/// Links an RTL program into a runnable image. When `tracer` is given,
/// per-function `emit` spans are recorded (buffered per worker, merged
/// in function order).
pub fn link(p: &RtlProgram, opts: &LinkOptions, tracer: Option<&Tracer>) -> Result<Linked> {
    // ---- Static data layout: globals first, then objects.
    let globals_bytes = 8 * p.globals.len() as u64;
    let mut st = Statics {
        image: Vec::new(),
        next: (globals_bytes + 7) & !7,
        addrs: Vec::new(),
        interned_reps: HashMap::new(),
        interned_strs: HashMap::new(),
        packets: HashMap::new(),
    };
    for obj in &p.statics {
        let addr = match obj {
            StaticObj::Str(s) => st.string(s),
            StaticObj::Rep(e) => st.rep_value(e),
            StaticObj::ExnPacket(id) => st.packet(*id),
        };
        st.addrs.push(addr);
    }
    // The uncaught-exception message and root handler record.
    let uncaught_msg = st.string("uncaught exception\n");
    let root_handler = st.alloc_words(&[0, 0, 0]); // patched below
    if st.next >= HEAP_BASE {
        return Err(Diagnostic::ice(
            "link",
            format!(
                "static segment ({} bytes) exceeds the heap base ({HEAP_BASE})",
                st.next
            ),
        ));
    }
    let statics_addr = st.addrs.clone();
    let static_bytes = (st.next - globals_bytes) as usize;

    // ---- Allocate and emit every function (independent per
    // function; joined in function order).
    let emit_span = tracer.map(|t| t.span("emit-functions"));
    let emitted: Vec<EmittedFun> =
        til_common::par::map_traced(opts.jobs, &p.funs, tracer, |_, f, t| {
            let mut span = t.map(|t| t.span(format!("emit {}", fun_label(f.name))));
            let al = allocate(f);
            let e = emit_fun(f, &al, p.tagged, &statics_addr);
            if let Some(s) = span.as_mut() {
                s.counter("instrs", e.instrs.len() as i64);
            }
            e
        });
    drop(emit_span);

    // ---- Stub layout:
    //   0: mov EXN, root_handler
    //   1: jsr main
    //   2: halt                (stack-walk stop, normal exit)
    //   3: uncaught: mov r0, msg; rtcall print; halt
    //   then trap stubs, then functions.
    let mut code: Vec<Instr> = Vec::new();
    code.push(Instr::Mov {
        dst: regs::EXN,
        src: Op::I(root_handler as i64),
    });
    let jsr_main_at = code.len();
    code.push(Instr::Jsr(0));
    let halt_at = code.len() as u32;
    code.push(Instr::Halt);
    let uncaught_at = code.len() as u32;
    code.push(Instr::Mov {
        dst: 0,
        src: Op::I(uncaught_msg as i64),
    });
    code.push(Instr::RtCall(RtFn::PrintStr));
    code.push(Instr::Halt);
    // Trap stubs: load the static packet, raise.
    let mut traps: HashMap<Trap, u32> = HashMap::new();
    let mut st2 = st;
    for (t, exn) in TRAPS {
        let packet = st2.packet(exn);
        traps.insert(t, code.len() as u32);
        code.push(Instr::Mov {
            dst: 0,
            src: Op::I(packet as i64),
        });
        // raise sequence
        code.push(Instr::Ld {
            dst: regs::TMP,
            base: regs::EXN,
            off: 8,
        });
        code.push(Instr::Ld {
            dst: regs::TMP2,
            base: regs::EXN,
            off: 16,
        });
        code.push(Instr::Ld {
            dst: regs::EXN,
            base: regs::EXN,
            off: 0,
        });
        code.push(Instr::Mov {
            dst: regs::SP,
            src: Op::R(regs::TMP2),
        });
        code.push(Instr::Jmp(regs::TMP));
    }
    if st2.next >= HEAP_BASE {
        return Err(Diagnostic::ice("link", "static segment overflow"));
    }

    // ---- Function bases (and the profiler's range map).
    let mut base_of: HashMap<Option<Var>, u32> = HashMap::new();
    let mut fun_ranges: Vec<FuncRange> = Vec::new();
    let mut next = code.len() as u32;
    for e in &emitted {
        base_of.insert(e.name, next);
        fun_ranges.push(FuncRange {
            name: fun_label(e.name),
            start: next,
            end: next + e.instrs.len() as u32,
        });
        next += e.instrs.len() as u32;
    }
    let code_label = |v: Var| -> Result<u32> {
        base_of
            .get(&Some(v))
            .copied()
            .ok_or_else(|| Diagnostic::ice("link", format!("undefined code {v}")))
    };

    // ---- Concatenate with relocation.
    let mut tables = GcTables::default();
    tables.stops.insert(halt_at);
    let mut exn_alloc_pcs: Vec<u32> = Vec::new();
    for e in &emitted {
        let base = base_of[&e.name];
        debug_assert_eq!(base as usize, code.len());
        for (i, ins) in e.instrs.iter().enumerate() {
            let mut ins = ins.clone();
            // Shift local branch targets.
            match &mut ins {
                Instr::Br(t) | Instr::Beqz(_, t) | Instr::Bnez(_, t) | Instr::Jsr(t) => {
                    *t += base;
                }
                Instr::Lea { target, .. } => *target += base,
                _ => {}
            }
            let _ = i;
            code.push(ins);
        }
        for (at, r) in &e.relocs {
            let idx = base as usize + at;
            match r {
                Reloc::CodeTarget(v) => {
                    let t = code_label(*v)?;
                    match &mut code[idx] {
                        Instr::Jsr(x) | Instr::Br(x) => *x = t,
                        other => {
                            return Err(Diagnostic::ice(
                                "link",
                                format!("bad CodeTarget reloc on {other}"),
                            ))
                        }
                    }
                }
                Reloc::CodeImm(v) => {
                    let t = code_label(*v)?;
                    match &mut code[idx] {
                        Instr::Mov { src, .. } => *src = Op::I(code_value(t) as i64),
                        other => {
                            return Err(Diagnostic::ice(
                                "link",
                                format!("bad CodeImm reloc on {other}"),
                            ))
                        }
                    }
                }
                Reloc::TrapTarget(t) => {
                    let target = traps[t];
                    match &mut code[idx] {
                        Instr::Bnez(_, x) | Instr::Beqz(_, x) | Instr::Br(x) => *x = target,
                        other => {
                            return Err(Diagnostic::ice(
                                "link",
                                format!("bad TrapTarget reloc on {other}"),
                            ))
                        }
                    }
                }
            }
        }
        for (at, _, fi) in &e.call_sites {
            tables.call_sites.insert(base + *at as u32, fi.clone());
        }
        for (at, _, gp) in &e.gc_points {
            tables.gc_points.insert(base + *at as u32, gp.clone());
        }
        for at in &e.exn_allocs {
            exn_alloc_pcs.push(base + *at as u32);
        }
    }
    // Patch the main call.
    let main = base_of[&None];
    code[jsr_main_at] = Instr::Jsr(main);
    let sigs: Vec<FunSig> = emitted.iter().map(|e| e.sig.clone()).collect();

    // Seeded corruption of the assembled unit, for testing the
    // machine-code verifier's detection and attribution (no-op unless
    // armed via `mcv::fault::break_emit` / `TIL_BREAK_EMIT`).
    crate::mcv::fault::apply_armed(&mut code, &mut tables, &fun_ranges);

    // ---- Layout + image.
    let layout = Layout {
        globals_end: HEAP_BASE,
        heap_base: HEAP_BASE,
        semi_bytes: opts.semi_bytes,
        stack_limit: HEAP_BASE + 2 * opts.semi_bytes,
        stack_top: HEAP_BASE + 2 * opts.semi_bytes + opts.stack_bytes,
    };
    let mut image = st2.image.clone();
    // Root handler: [prev=0, uncaught stub, initial sp].
    image.push((root_handler, 0));
    image.push((root_handler + 8, code_value(uncaught_at)));
    image.push((root_handler + 16, layout.stack_top));

    // Globals table for the collector (nearly tag-free mode).
    for (gid, g) in p.globals.iter().enumerate() {
        if g.traced {
            tables.globals.push((8 * gid as u64, LocRep::Trace));
        }
    }

    let code_bytes = code.len() * 8;
    Ok(Linked {
        code,
        layout,
        tables,
        image,
        traps,
        data_table: p.data_table.clone(),
        mode: if p.tagged {
            GcMode::Tagged
        } else {
            GcMode::NearlyTagFree
        },
        code_bytes,
        static_bytes,
        fun_ranges,
        sigs,
        exn_alloc_pcs,
    })
}

/// Display label for a function: the entry function (`name == None`)
/// is `"main"`; compiled functions use their deterministic `Var` name.
pub fn fun_label(name: Option<Var>) -> String {
    match name {
        None => "main".into(),
        Some(v) => v.to_string(),
    }
}

impl Linked {
    /// Creates a machine loaded with this program.
    pub fn machine(&self) -> til_vm::Machine {
        let mut m = til_vm::Machine::new(self.code.clone(), self.layout.clone());
        for (addr, w) in &self.image {
            m.wr(*addr, *w).expect("image within memory");
        }
        m.traps = self.traps.iter().map(|(t, a)| (*t, *a)).collect();
        m
    }

    /// Creates the matching runtime.
    pub fn runtime(&self) -> til_runtime::Rt {
        til_runtime::Rt::new(self.mode, self.tables.clone(), self.data_table.clone())
    }

    /// Approximate executable size in bytes: code + GC tables + static
    /// data (the paper's Table 5 measure, minus the fixed runtime).
    pub fn executable_bytes(&self) -> usize {
        self.code_bytes + self.tables.byte_size() + self.static_bytes
    }
}

/// A placeholder referenced by `FrameInfo` imports.
#[allow(dead_code)]
fn _unused(_f: FrameInfo) {}
