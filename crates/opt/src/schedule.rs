//! The pass schedule (paper §3.3): first iterate the *reduction*
//! optimizations to a fixpoint — dead-code elimination, constant
//! folding, inlining functions called once, CSE, redundant-switch
//! elimination, invariant removal — then run switch-continuation
//! inlining, sinking, uncurrying, comparison elimination, fix
//! minimization, and (small-function) inlining; the entire process is
//! iterated two or more times. Polymorphic-instance specialization is
//! interleaved so that ground applications of recursive polymorphic
//! functions monomorphize (see `specialize.rs`).
//!
//! With `verify` set, the Bform typechecker runs after *every* pass —
//! the paper's headline engineering practice ("type-checking the
//! output of each optimization ... helps us identify and eliminate
//! bugs in the compiler").

use crate::flatten::flatten_args;
use crate::invariant::{hoist_constants, invariant_removal};
use crate::minfix::minimize_fix;
use crate::signs::sign_analysis;
use crate::simplify::{simplify, simplify_with_signs, SimplifyOpts};
use crate::sink::sink;
use crate::specialize::{count_polymorphic, count_typecases, specialize};
use crate::switch_cont::inline_switch_continuations;
use crate::uncurry::uncurry;
use til_bform::{typecheck_bform, BProgram};
use til_common::{Diagnostic, Result, VarSupply};

/// Optimizer configuration.
#[derive(Clone, Copy, Debug)]
pub struct OptOptions {
    /// Master switch: false skips the whole optimizer.
    pub enabled: bool,
    /// The paper's loop-oriented set (CSE, invariant removal, hoisting,
    /// comparison elimination, redundant-switch elimination) — the
    /// Table 7 / Figure 12 ablation toggle.
    pub loop_opts: bool,
    /// Allow inlining (once + small) and uncurrying.
    pub inline: bool,
    /// Argument flattening (worker/wrapper; paper §3.2).
    pub flatten: bool,
    /// Size bound for small-function inlining.
    pub max_inline_size: usize,
    /// Specialize polymorphic instances at ground types.
    pub specialize: bool,
    /// Enable sinking.
    pub sink: bool,
    /// Enable fix minimization.
    pub minfix: bool,
    /// Enable switch-continuation inlining.
    pub switch_cont: bool,
    /// Outer iterations (paper: "two or more times").
    pub rounds: usize,
    /// Typecheck after every pass.
    pub verify: bool,
}

impl OptOptions {
    /// Full TIL optimization.
    pub fn til() -> OptOptions {
        OptOptions {
            enabled: true,
            loop_opts: true,
            inline: true,
            flatten: true,
            max_inline_size: 60,
            specialize: true,
            sink: true,
            minfix: true,
            switch_cont: true,
            rounds: 3,
            verify: false,
        }
    }

    /// TIL without the loop-oriented optimizations (Table 7).
    pub fn til_no_loop_opts() -> OptOptions {
        OptOptions {
            loop_opts: false,
            ..OptOptions::til()
        }
    }

    /// The baseline comparator's optimizer: inlining and uncurrying
    /// only (SML/NJ's defaults did not include the loop-oriented set —
    /// Appel reports CSE "was not useful" there, §6).
    pub fn baseline() -> OptOptions {
        OptOptions {
            enabled: true,
            loop_opts: false,
            inline: true,
            flatten: false,
            max_inline_size: 40,
            specialize: true,
            sink: false,
            minfix: true,
            switch_cont: false,
            rounds: 2,
            verify: false,
        }
    }

    /// No optimization at all.
    pub fn none() -> OptOptions {
        OptOptions {
            enabled: false,
            loop_opts: false,
            inline: false,
            flatten: false,
            max_inline_size: 0,
            specialize: false,
            sink: false,
            minfix: false,
            switch_cont: false,
            rounds: 0,
            verify: false,
        }
    }
}

/// What the optimizer did.
#[derive(Clone, Debug, Default)]
pub struct OptStats {
    /// Total passes executed.
    pub passes: usize,
    /// Reduction-fixpoint iterations used.
    pub reduce_iterations: usize,
    /// Polymorphic functions remaining after optimization (the paper
    /// reports 0 across its whole suite).
    pub remaining_polymorphic: usize,
    /// `typecase` expressions remaining after optimization.
    pub remaining_typecases: usize,
    /// Program size (Bform nodes) before optimization.
    pub size_before: usize,
    /// Program size after optimization.
    pub size_after: usize,
}

/// Runs the full schedule.
pub fn optimize(
    p: &mut BProgram,
    vs: &mut VarSupply,
    opts: &OptOptions,
) -> Result<OptStats> {
    let mut stats = OptStats {
        size_before: p.body.size(),
        ..OptStats::default()
    };
    if !opts.enabled {
        stats.remaining_polymorphic = count_polymorphic(&p.body);
        stats.remaining_typecases = count_typecases(&p.body);
        stats.size_after = stats.size_before;
        return Ok(stats);
    }
    let verify = |p: &BProgram, pass: &str| -> Result<()> {
        if opts.verify {
            typecheck_bform(p).map_err(|d| {
                Diagnostic::ice(
                    "optimize",
                    format!("pass `{pass}` broke typing: {d}"),
                )
            })?;
        }
        Ok(())
    };
    for _round in 0..opts.rounds.max(1) {
        // Reduction fixpoint.
        let reduce = SimplifyOpts {
            inline_once: opts.inline,
            ..SimplifyOpts::reduce(opts.loop_opts)
        };
        for _ in 0..12 {
            stats.reduce_iterations += 1;
            stats.passes += 1;
            let signs = if opts.loop_opts {
                sign_analysis(p)
            } else {
                Default::default()
            };
            let changed = simplify_with_signs(p, vs, &reduce, &signs);
            verify(p, "simplify-reduce")?;
            let mut more = false;
            if opts.loop_opts {
                stats.passes += 1;
                more |= invariant_removal(p);
                verify(p, "invariant-removal")?;
            }
            if !changed && !more {
                break;
            }
        }
        // Second group.
        if opts.specialize {
            stats.passes += 1;
            specialize(p, vs);
            verify(p, "specialize")?;
        }
        if opts.switch_cont {
            stats.passes += 1;
            inline_switch_continuations(p, vs);
            verify(p, "switch-continuations")?;
        }
        if opts.sink {
            stats.passes += 1;
            sink(p);
            verify(p, "sink")?;
        }
        if opts.inline {
            stats.passes += 1;
            uncurry(p, vs);
            verify(p, "uncurry")?;
        }
        if opts.flatten {
            stats.passes += 1;
            flatten_args(p, vs);
            verify(p, "flatten-args")?;
        }
        if opts.minfix {
            stats.passes += 1;
            minimize_fix(p);
            verify(p, "minimize-fix")?;
        }
        if opts.inline {
            stats.passes += 1;
            let inline_opts = SimplifyOpts::inline(opts.max_inline_size, opts.loop_opts);
            simplify(p, vs, &inline_opts);
            verify(p, "simplify-inline")?;
        }
        if opts.loop_opts {
            stats.passes += 1;
            hoist_constants(p);
            verify(p, "hoist-constants")?;
        }
    }
    // Final cleanup reduction.
    let reduce = SimplifyOpts {
        inline_once: opts.inline,
        ..SimplifyOpts::reduce(opts.loop_opts)
    };
    for _ in 0..6 {
        stats.passes += 1;
        if !simplify(p, vs, &reduce) {
            break;
        }
        verify(p, "simplify-final")?;
    }
    stats.remaining_polymorphic = count_polymorphic(&p.body);
    stats.remaining_typecases = count_typecases(&p.body);
    stats.size_after = p.body.size();
    Ok(stats)
}
