//! The pass schedule (paper §3.3): first iterate the *reduction*
//! optimizations to a fixpoint — dead-code elimination, constant
//! folding, inlining functions called once, CSE, redundant-switch
//! elimination, invariant removal — then run switch-continuation
//! inlining, sinking, uncurrying, comparison elimination, fix
//! minimization, and (small-function) inlining; the entire process is
//! iterated two or more times. Polymorphic-instance specialization is
//! interleaved so that ground applications of recursive polymorphic
//! functions monomorphize (see `specialize.rs`).
//!
//! With `verify` set, the Bform typechecker runs after *every* pass —
//! the paper's headline engineering practice ("type-checking the
//! output of each optimization ... helps us identify and eliminate
//! bugs in the compiler"). A verify failure is attributed to the pass
//! that produced it and comes with pretty-printed before/after IR
//! dumps, turning any miscompile into a one-pass bisection; see
//! [`fault`] for the injection hook that keeps this machinery tested.

use crate::flatten::flatten_args;
use crate::invariant::{hoist_constants, invariant_removal};
use crate::minfix::minimize_fix;
use crate::signs::sign_analysis;
use crate::simplify::{simplify, simplify_with_signs, SimplifyOpts};
use crate::sink::sink;
use crate::specialize::{count_polymorphic, count_typecases, specialize};
use crate::switch_cont::inline_switch_continuations;
use crate::uncurry::uncurry;
use til_bform::{typecheck_bform, BProgram};
use til_common::{Diagnostic, Result, Tracer, VarSupply};

/// Optimizer configuration.
#[derive(Clone, Copy, Debug)]
pub struct OptOptions {
    /// Master switch: false skips the whole optimizer.
    pub enabled: bool,
    /// The paper's loop-oriented set (CSE, invariant removal, hoisting,
    /// comparison elimination, redundant-switch elimination) — the
    /// Table 7 / Figure 12 ablation toggle.
    pub loop_opts: bool,
    /// Allow inlining (once + small) and uncurrying.
    pub inline: bool,
    /// Argument flattening (worker/wrapper; paper §3.2).
    pub flatten: bool,
    /// Size bound for small-function inlining.
    pub max_inline_size: usize,
    /// Specialize polymorphic instances at ground types.
    pub specialize: bool,
    /// Enable sinking.
    pub sink: bool,
    /// Enable fix minimization.
    pub minfix: bool,
    /// Enable switch-continuation inlining.
    pub switch_cont: bool,
    /// Outer iterations (paper: "two or more times").
    pub rounds: usize,
    /// Typecheck after every pass.
    pub verify: bool,
}

impl OptOptions {
    /// Full TIL optimization.
    pub fn til() -> OptOptions {
        OptOptions {
            enabled: true,
            loop_opts: true,
            inline: true,
            flatten: true,
            max_inline_size: 60,
            specialize: true,
            sink: true,
            minfix: true,
            switch_cont: true,
            rounds: 3,
            verify: false,
        }
    }

    /// TIL without the loop-oriented optimizations (Table 7).
    pub fn til_no_loop_opts() -> OptOptions {
        OptOptions {
            loop_opts: false,
            ..OptOptions::til()
        }
    }

    /// The baseline comparator's optimizer: inlining and uncurrying
    /// only (SML/NJ's defaults did not include the loop-oriented set —
    /// Appel reports CSE "was not useful" there, §6).
    pub fn baseline() -> OptOptions {
        OptOptions {
            enabled: true,
            loop_opts: false,
            inline: true,
            flatten: false,
            max_inline_size: 40,
            specialize: true,
            sink: false,
            minfix: true,
            switch_cont: false,
            rounds: 2,
            verify: false,
        }
    }

    /// No optimization at all.
    pub fn none() -> OptOptions {
        OptOptions {
            enabled: false,
            loop_opts: false,
            inline: false,
            flatten: false,
            max_inline_size: 0,
            specialize: false,
            sink: false,
            minfix: false,
            switch_cont: false,
            rounds: 0,
            verify: false,
        }
    }
}

/// Aggregate record of every execution of one named pass.
#[derive(Clone, Debug, Default)]
pub struct PassStat {
    /// Pass name as attributed in verify diagnostics.
    pub name: &'static str,
    /// Times the pass ran.
    pub runs: usize,
    /// Total wall-clock seconds across runs.
    pub seconds: f64,
    /// Bform nodes removed (sum of shrinkage across runs).
    pub nodes_eliminated: u64,
    /// Bform nodes introduced (sum of growth across runs — inlining
    /// and flattening legitimately grow the program).
    pub nodes_added: u64,
}

/// What the optimizer did.
#[derive(Clone, Debug, Default)]
pub struct OptStats {
    /// Total passes executed.
    pub passes: usize,
    /// Reduction-fixpoint iterations used.
    pub reduce_iterations: usize,
    /// Polymorphic functions remaining after optimization (the paper
    /// reports 0 across its whole suite).
    pub remaining_polymorphic: usize,
    /// `typecase` expressions remaining after optimization.
    pub remaining_typecases: usize,
    /// Program size (Bform nodes) before optimization.
    pub size_before: usize,
    /// Program size after optimization.
    pub size_after: usize,
    /// Per-pass aggregates, in first-execution order.
    pub pass_stats: Vec<PassStat>,
}

impl OptStats {
    fn record(
        &mut self,
        name: &'static str,
        seconds: f64,
        size_before: usize,
        size_after: usize,
    ) {
        self.passes += 1;
        let stat = match self.pass_stats.iter_mut().find(|s| s.name == name) {
            Some(s) => s,
            None => {
                self.pass_stats.push(PassStat {
                    name,
                    ..PassStat::default()
                });
                self.pass_stats.last_mut().unwrap()
            }
        };
        stat.runs += 1;
        stat.seconds += seconds;
        stat.nodes_eliminated += size_before.saturating_sub(size_after) as u64;
        stat.nodes_added += size_after.saturating_sub(size_before) as u64;
    }
}

/// Fault injection: deliberately break a named pass so the verify
/// machinery itself stays tested.
///
/// When armed for pass `P` (programmatically via [`fault::break_pass`]
/// or with the `TIL_BREAK_PASS` environment variable), the scheduler
/// corrupts the program immediately after `P` runs by inserting a
/// reference to an unbound variable — a minimal, always-ill-typed
/// mutation. With `verify` on, the very next typecheck must then fail
/// *attributed to `P`*, proving the pass-bisection diagnostics work
/// end to end.
///
/// The arming registry is shared with every other pass-running stage
/// (it lives in [`til_common::fault`]), so the same hook also breaks
/// closure-stage passes by name.
pub mod fault {
    pub use til_common::fault::{armed, break_pass, Injection};
}

/// Scheduler context: runs one pass, times it, applies fault
/// injection, and — with `verify` — typechecks the result, attributing
/// failures to the pass and dumping before/after IR.
struct Runner<'a> {
    verify: bool,
    tracer: Option<&'a Tracer>,
    stats: OptStats,
}

impl Runner<'_> {
    fn run_pass(
        &mut self,
        p: &mut BProgram,
        vs: &mut VarSupply,
        name: &'static str,
        pass: impl FnOnce(&mut BProgram, &mut VarSupply) -> bool,
    ) -> Result<bool> {
        let size_before = p.body.size();
        let snapshot = if self.verify { Some(p.clone()) } else { None };
        let start = std::time::Instant::now();
        let changed = pass(p, vs);
        let seconds = start.elapsed().as_secs_f64();
        if fault::armed(name) {
            inject_unbound_var(p, vs);
        }
        let size_after = p.body.size();
        self.stats.record(name, seconds, size_before, size_after);
        if let Some(t) = self.tracer {
            t.event(
                name,
                seconds,
                &[
                    ("nodes-before", size_before as i64),
                    ("nodes-after", size_after as i64),
                ],
            );
        }
        if let Some(before) = snapshot {
            typecheck_bform(p).map_err(|d| attribute(name, &before, p, d))?;
        }
        Ok(changed)
    }
}

/// The minimal always-ill-typed mutation used by [`fault`]: bind a
/// fresh variable to another fresh — hence unbound — variable.
fn inject_unbound_var(p: &mut BProgram, vs: &mut VarSupply) {
    use til_bform::{Atom, BExp, BRhs};
    let body = std::mem::replace(&mut p.body, BExp::Ret(Atom::Int(0)));
    p.body = BExp::Let {
        var: vs.fresh_named("injected"),
        rhs: BRhs::Atom(Atom::Var(vs.fresh_named("unbound"))),
        body: Box::new(body),
    };
}

/// Builds the pass-attributed verify diagnostic via the shared
/// forensics helper: names the pass and writes pretty-printed
/// before/after IR dumps.
fn attribute(
    pass: &str,
    before: &BProgram,
    after: &BProgram,
    d: Diagnostic,
) -> Diagnostic {
    til_common::verify::attribute_pass_failure(
        "optimize",
        pass,
        &til_bform::print::program(before),
        &til_bform::print::program(after),
        "bform",
        d,
    )
}

/// Runs the full schedule.
pub fn optimize(
    p: &mut BProgram,
    vs: &mut VarSupply,
    opts: &OptOptions,
) -> Result<OptStats> {
    optimize_traced(p, vs, opts, None)
}

/// Runs the full schedule, reporting each pass as a span on `tracer`
/// (with node-count counters) when one is supplied.
pub fn optimize_traced(
    p: &mut BProgram,
    vs: &mut VarSupply,
    opts: &OptOptions,
    tracer: Option<&Tracer>,
) -> Result<OptStats> {
    let size_before = p.body.size();
    if !opts.enabled {
        return Ok(OptStats {
            size_before,
            size_after: size_before,
            remaining_polymorphic: count_polymorphic(&p.body),
            remaining_typecases: count_typecases(&p.body),
            ..OptStats::default()
        });
    }
    let mut r = Runner {
        verify: opts.verify,
        tracer,
        stats: OptStats {
            size_before,
            ..OptStats::default()
        },
    };
    for _round in 0..opts.rounds.max(1) {
        // Reduction fixpoint.
        let reduce = SimplifyOpts {
            inline_once: opts.inline,
            ..SimplifyOpts::reduce(opts.loop_opts)
        };
        for _ in 0..12 {
            r.stats.reduce_iterations += 1;
            let changed = r.run_pass(p, vs, "simplify-reduce", |p, vs| {
                let signs = if opts.loop_opts {
                    sign_analysis(p)
                } else {
                    Default::default()
                };
                simplify_with_signs(p, vs, &reduce, &signs)
            })?;
            let mut more = false;
            if opts.loop_opts {
                more |= r.run_pass(p, vs, "invariant-removal", |p, _| invariant_removal(p))?;
            }
            if !changed && !more {
                break;
            }
        }
        // Second group.
        if opts.specialize {
            r.run_pass(p, vs, "specialize", |p, vs| {
                specialize(p, vs);
                true
            })?;
        }
        if opts.switch_cont {
            r.run_pass(p, vs, "switch-continuations", |p, vs| {
                inline_switch_continuations(p, vs);
                true
            })?;
        }
        if opts.sink {
            r.run_pass(p, vs, "sink", |p, _| {
                sink(p);
                true
            })?;
        }
        if opts.inline {
            r.run_pass(p, vs, "uncurry", |p, vs| {
                uncurry(p, vs);
                true
            })?;
        }
        if opts.flatten {
            r.run_pass(p, vs, "flatten-args", |p, vs| {
                flatten_args(p, vs);
                true
            })?;
        }
        if opts.minfix {
            r.run_pass(p, vs, "minimize-fix", |p, _| {
                minimize_fix(p);
                true
            })?;
        }
        if opts.inline {
            let inline_opts = SimplifyOpts::inline(opts.max_inline_size, opts.loop_opts);
            r.run_pass(p, vs, "simplify-inline", |p, vs| {
                simplify(p, vs, &inline_opts)
            })?;
        }
        if opts.loop_opts {
            r.run_pass(p, vs, "hoist-constants", |p, _| {
                hoist_constants(p);
                true
            })?;
        }
    }
    // Final cleanup reduction.
    let reduce = SimplifyOpts {
        inline_once: opts.inline,
        ..SimplifyOpts::reduce(opts.loop_opts)
    };
    for _ in 0..6 {
        let changed = r.run_pass(p, vs, "simplify-final", |p, vs| simplify(p, vs, &reduce))?;
        if !changed {
            break;
        }
    }
    let mut stats = r.stats;
    stats.remaining_polymorphic = count_polymorphic(&p.body);
    stats.remaining_typecases = count_typecases(&p.body);
    stats.size_after = p.body.size();
    Ok(stats)
}
