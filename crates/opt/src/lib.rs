//! The TIL optimizer (paper §3.3): conventional functional-language
//! optimizations (inlining, uncurrying, dead-code elimination, constant
//! folding, sinking, switch-continuation inlining, fix minimization)
//! plus the loop-oriented set (CSE, redundant-switch elimination,
//! invariant removal, hoisting, redundant-comparison elimination), all
//! running on typed Bform with optional typechecking between passes.

pub mod census;
pub mod clone;
pub mod flatten;
pub mod invariant;
pub mod minfix;
pub mod schedule;
pub mod signs;
pub mod simplify;
pub mod sink;
pub mod specialize;
pub mod switch_cont;
pub mod uncurry;
pub mod util;

pub use schedule::{fault, optimize, optimize_traced, OptOptions, OptStats, PassStat};
pub use simplify::{simplify, SimplifyOpts};
