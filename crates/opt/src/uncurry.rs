//! Uncurrying (paper §3.3): a function whose body immediately returns
//! an inner function is rewritten into a single multi-argument worker
//! plus a small currying wrapper; the wrapper is then inlined at
//! saturated call sites by the small-function inliner, which turns
//! curried (possibly recursive) calls into direct worker calls.

use crate::census::census;
use til_bform::{Atom, BExp, BFun, BProgram, BRhs};
use til_common::{Var, VarSupply};
use til_lmli::con::Con;

/// Runs one uncurrying round; returns true if any function changed.
pub fn uncurry(p: &mut BProgram, vs: &mut VarSupply) -> bool {
    let mut changed = false;
    let body = std::mem::replace(&mut p.body, BExp::Ret(Atom::Int(0)));
    p.body = exp(body, vs, &mut changed);
    changed
}

fn exp(e: BExp, vs: &mut VarSupply, changed: &mut bool) -> BExp {
    match e {
        BExp::Ret(a) => BExp::Ret(a),
        BExp::Let { var, rhs, body } => {
            let mut rhs = rhs;
            map_rhss_once(&mut rhs, vs, changed);
            BExp::Let {
                var,
                rhs,
                body: Box::new(exp(*body, vs, changed)),
            }
        }
        BExp::Fix { funs, body } => {
            let mut out: Vec<BFun> = Vec::with_capacity(funs.len());
            for mut f in funs {
                let b = std::mem::replace(&mut f.body, BExp::Ret(Atom::Int(0)));
                f.body = exp(b, vs, changed);
                match try_uncurry(&f, vs) {
                    Some((worker, wrapper)) => {
                        *changed = true;
                        out.push(worker);
                        out.push(wrapper);
                    }
                    None => out.push(f),
                }
            }
            BExp::Fix {
                funs: out,
                body: Box::new(exp(*body, vs, changed)),
            }
        }
    }
}

fn map_rhss_once(r: &mut BRhs, vs: &mut VarSupply, changed: &mut bool) {
    // Recurse into nested expressions inside this RHS.
    let mut holder = BExp::Let {
        var: Var::from_raw(u32::MAX, None),
        rhs: std::mem::replace(r, BRhs::Atom(Atom::Int(0))),
        body: Box::new(BExp::Ret(Atom::Int(0))),
    };
    // Reuse map over nested exps via specialize::map_rhss on the holder
    // is not applicable (it visits rhss, not rewrites exps); do direct.
    if let BExp::Let { rhs, .. } = &mut holder {
        for sub in nested_exps(rhs) {
            let owned = std::mem::replace(sub, BExp::Ret(Atom::Int(0)));
            *sub = exp(owned, vs, changed);
        }
        *r = std::mem::replace(rhs, BRhs::Atom(Atom::Int(0)));
    }
}

fn nested_exps(r: &mut BRhs) -> Vec<&mut BExp> {
    use til_bform::BSwitch;
    match r {
        BRhs::Switch(sw) => match sw {
            BSwitch::Int { arms, default, .. } => arms
                .iter_mut()
                .map(|(_, a)| a)
                .chain(std::iter::once(&mut **default))
                .collect(),
            BSwitch::Data { arms, default, .. } => arms
                .iter_mut()
                .map(|(_, _, a)| a)
                .chain(default.iter_mut().map(|d| &mut **d))
                .collect(),
            BSwitch::Str { arms, default, .. } => arms
                .iter_mut()
                .map(|(_, a)| a)
                .chain(std::iter::once(&mut **default))
                .collect(),
            BSwitch::Exn { arms, default, .. } => arms
                .iter_mut()
                .map(|(_, _, a)| a)
                .chain(std::iter::once(&mut **default))
                .collect(),
        },
        BRhs::Typecase {
            int, float, ptr, ..
        } => vec![int, float, ptr],
        BRhs::Handle { body, handler, .. } => vec![body, handler],
        _ => vec![],
    }
}

/// `f = λp. fix g = λq. body in ret g`  becomes a worker
/// `f_unc = λ(p, q). body` plus `f` rebuilt as a currying wrapper.
fn try_uncurry(f: &BFun, vs: &mut VarSupply) -> Option<(BFun, BFun)> {
    let BExp::Fix { funs, body } = &f.body else {
        return None;
    };
    if funs.len() != 1 {
        return None;
    }
    let g = &funs[0];
    if !g.cparams.is_empty() {
        return None;
    }
    let BExp::Ret(Atom::Var(rv)) = &**body else {
        return None;
    };
    if *rv != g.var {
        return None;
    }
    // The inner function must not be self-referential (its recursion,
    // if any, goes through `f`).
    if census(&g.body).uses(g.var) > 0 {
        return None;
    }
    if f.params.is_empty() || g.params.is_empty() {
        return None;
    }
    // Don't re-uncurry a currying wrapper we created: its inner body is
    // already a single direct call.
    if let BExp::Let { rhs, body: b2, .. } = &g.body {
        if matches!(rhs, BRhs::App { .. }) && matches!(&**b2, BExp::Ret(_)) {
            return None;
        }
    }
    let worker_var = vs.fresh_named(&format!("{}_unc", f.var));
    let worker = BFun {
        var: worker_var,
        cparams: f.cparams.clone(),
        params: f.params.iter().chain(g.params.iter()).cloned().collect(),
        ret: g.ret.clone(),
        body: g.body.clone(),
    };
    // Wrapper with fresh parameter names.
    let wp: Vec<(Var, Con)> = f
        .params
        .iter()
        .map(|(v, c)| (vs.rename(*v), c.clone()))
        .collect();
    let wq: Vec<(Var, Con)> = g
        .params
        .iter()
        .map(|(v, c)| (vs.rename(*v), c.clone()))
        .collect();
    let gw = vs.rename(g.var);
    let res = vs.fresh_named("r");
    let call = BExp::Let {
        var: res,
        rhs: BRhs::App {
            f: Atom::Var(worker_var),
            cargs: f.cparams.iter().map(|c| Con::Var(*c)).collect(),
            args: wp
                .iter()
                .chain(wq.iter())
                .map(|(v, _)| Atom::Var(*v))
                .collect(),
        },
        body: Box::new(BExp::Ret(Atom::Var(res))),
    };
    let wrapper_body = BExp::Fix {
        funs: vec![BFun {
            var: gw,
            cparams: vec![],
            params: wq,
            ret: g.ret.clone(),
            body: call,
        }],
        body: Box::new(BExp::Ret(Atom::Var(gw))),
    };
    let wrapper = BFun {
        var: f.var,
        cparams: f.cparams.clone(),
        params: wp,
        ret: f.ret.clone(),
        body: wrapper_body,
    };
    Some((worker, wrapper))
}
