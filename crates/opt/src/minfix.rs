//! Fix minimization (paper §3.3): break each `fix` nest into its
//! strongly connected components and re-nest them in dependency order.
//! Separating non-recursive functions from recursive ones improves
//! both inlining (non-recursive singletons become inlinable) and
//! dead-code elimination.

use crate::census::census;
use std::collections::HashMap;
use til_bform::{Atom, BExp, BFun, BProgram, BRhs};
use til_common::Var;

/// Runs fix minimization; returns true if any nest was split.
pub fn minimize_fix(p: &mut BProgram) -> bool {
    let mut changed = false;
    let body = std::mem::replace(&mut p.body, BExp::Ret(Atom::Int(0)));
    p.body = exp(body, &mut changed);
    changed
}

fn exp(e: BExp, changed: &mut bool) -> BExp {
    match e {
        BExp::Ret(a) => BExp::Ret(a),
        BExp::Let { var, mut rhs, body } => {
            rewrite_nested(&mut rhs, changed);
            BExp::Let {
                var,
                rhs,
                body: Box::new(exp(*body, changed)),
            }
        }
        BExp::Fix { funs, body } => {
            let funs: Vec<BFun> = funs
                .into_iter()
                .map(|mut f| {
                    let b = std::mem::replace(&mut f.body, BExp::Ret(Atom::Int(0)));
                    f.body = exp(b, changed);
                    f
                })
                .collect();
            let body = exp(*body, changed);
            if funs.len() <= 1 {
                return BExp::Fix {
                    funs,
                    body: Box::new(body),
                };
            }
            // Dependency graph: i -> j if fun i's body references fun j.
            let idx: HashMap<Var, usize> =
                funs.iter().enumerate().map(|(i, f)| (f.var, i)).collect();
            let edges: Vec<Vec<usize>> = funs
                .iter()
                .map(|f| {
                    let c = census(&f.body);
                    funs.iter()
                        .enumerate()
                        .filter(|(_, g)| c.uses(g.var) > 0)
                        .map(|(j, _)| j)
                        .collect()
                })
                .collect();
            let sccs = tarjan(funs.len(), &edges);
            if sccs.len() <= 1 {
                return BExp::Fix {
                    funs,
                    body: Box::new(body),
                };
            }
            *changed = true;
            // Tarjan emits SCCs in reverse topological order (callees
            // first); nest so that later components see earlier ones.
            let mut slots: Vec<Option<BFun>> = funs.into_iter().map(Some).collect();
            let mut out = body;
            for comp in sccs.into_iter().rev() {
                let group: Vec<BFun> = comp
                    .into_iter()
                    .map(|i| slots[i].take().expect("each fun in one SCC"))
                    .collect();
                out = BExp::Fix {
                    funs: group,
                    body: Box::new(out),
                };
            }
            let _ = idx;
            out
        }
    }
}

fn rewrite_nested(r: &mut BRhs, changed: &mut bool) {
    use til_bform::BSwitch;
    let subs: Vec<&mut BExp> = match r {
        BRhs::Switch(sw) => match sw {
            BSwitch::Int { arms, default, .. } => arms
                .iter_mut()
                .map(|(_, a)| a)
                .chain(std::iter::once(&mut **default))
                .collect(),
            BSwitch::Data { arms, default, .. } => arms
                .iter_mut()
                .map(|(_, _, a)| a)
                .chain(default.iter_mut().map(|d| &mut **d))
                .collect(),
            BSwitch::Str { arms, default, .. } => arms
                .iter_mut()
                .map(|(_, a)| a)
                .chain(std::iter::once(&mut **default))
                .collect(),
            BSwitch::Exn { arms, default, .. } => arms
                .iter_mut()
                .map(|(_, _, a)| a)
                .chain(std::iter::once(&mut **default))
                .collect(),
        },
        BRhs::Typecase {
            int, float, ptr, ..
        } => vec![int, float, ptr],
        BRhs::Handle { body, handler, .. } => vec![body, handler],
        _ => vec![],
    };
    for sub in subs {
        let owned = std::mem::replace(sub, BExp::Ret(Atom::Int(0)));
        *sub = exp(owned, changed);
    }
}

/// Tarjan's SCC algorithm; returns components in reverse topological
/// order (callees before callers).
fn tarjan(n: usize, edges: &[Vec<usize>]) -> Vec<Vec<usize>> {
    struct St<'a> {
        edges: &'a [Vec<usize>],
        index: Vec<Option<usize>>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        counter: usize,
        out: Vec<Vec<usize>>,
    }
    fn strong(v: usize, st: &mut St) {
        st.index[v] = Some(st.counter);
        st.low[v] = st.counter;
        st.counter += 1;
        st.stack.push(v);
        st.on_stack[v] = true;
        for &w in &st.edges[v].to_vec() {
            if st.index[w].is_none() {
                strong(w, st);
                st.low[v] = st.low[v].min(st.low[w]);
            } else if st.on_stack[w] {
                st.low[v] = st.low[v].min(st.index[w].unwrap());
            }
        }
        if st.low[v] == st.index[v].unwrap() {
            let mut comp = Vec::new();
            loop {
                let w = st.stack.pop().unwrap();
                st.on_stack[w] = false;
                comp.push(w);
                if w == v {
                    break;
                }
            }
            st.out.push(comp);
        }
    }
    let mut st = St {
        edges,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        counter: 0,
        out: Vec::new(),
    };
    for v in 0..n {
        if st.index[v].is_none() {
            strong(v, &mut st);
        }
    }
    st.out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tarjan_splits_chain() {
        // 0 -> 1 -> 2, no cycles: three components, callees first.
        let edges = vec![vec![1], vec![2], vec![]];
        let sccs = tarjan(3, &edges);
        assert_eq!(sccs.len(), 3);
        assert_eq!(sccs[0], vec![2]);
        assert_eq!(sccs[2], vec![0]);
    }

    #[test]
    fn tarjan_keeps_cycles_together() {
        // 0 <-> 1, 2 isolated.
        let edges = vec![vec![1], vec![0], vec![]];
        let sccs = tarjan(3, &edges);
        assert_eq!(sccs.iter().filter(|c| c.len() == 2).count(), 1);
    }
}
