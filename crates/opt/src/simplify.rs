//! The environment-passing simplifier: one traversal implementing the
//! paper's *reduction* optimizations (§3.3) — constant folding (of
//! arithmetic, switches, typecases, and known-record projections), copy
//! propagation, common-subexpression elimination, dead-code
//! elimination, redundant-switch elimination, redundant-comparison
//! elimination (relation propagation + rule-of-signs ranges), inlining
//! of functions called once, and (optionally, scheduled separately from
//! once-inlining) size-bounded inlining of small non-recursive
//! functions. Each sub-optimization is individually toggleable so the
//! Table 7 loop-optimization ablation can disable exactly the paper's
//! loop-oriented set.

use crate::census::{census, Census};
use crate::clone::{alpha_clone, splice_ret, subst_cons_exp};
use std::collections::{HashMap, HashSet};
use til_bform::{Atom, BExp, BFun, BProgram, BRhs, BSwitch};
use til_common::{Var, VarSupply};
use til_lmli::con::{Con, RepClass};
use til_lmli::data::MDataEnv;
use til_lmli::prim::MPrim;
use til_lmli::rep_tag;

/// Which sub-optimizations run.
#[derive(Clone, Copy, Debug)]
pub struct SimplifyOpts {
    /// Constant folding / algebraic identities / typecase reduction.
    pub const_fold: bool,
    /// Dead pure bindings and dead functions are removed.
    pub dead_code: bool,
    /// Common-subexpression elimination (loop-oriented; Table 7).
    pub cse: bool,
    /// Inline non-escaping functions called exactly once.
    pub inline_once: bool,
    /// Clone-inline small non-recursive functions. Never enable
    /// together with `inline_once` in the same run.
    pub inline_small: bool,
    /// Size bound for small-function inlining.
    pub max_inline_size: usize,
    /// Propagate switch-arm facts (redundant switch elim; Table 7).
    pub redundant_switch: bool,
    /// Fold comparisons entailed by propagated relations and ranges
    /// (array-bounds-check removal; Table 7).
    pub compare_elim: bool,
}

impl SimplifyOpts {
    /// The reduction-pass configuration (paper's first group).
    pub fn reduce(loop_opts: bool) -> SimplifyOpts {
        SimplifyOpts {
            const_fold: true,
            dead_code: true,
            cse: loop_opts,
            inline_once: true,
            inline_small: false,
            max_inline_size: 0,
            redundant_switch: loop_opts,
            compare_elim: loop_opts,
        }
    }

    /// The small-inlining configuration (paper's second group).
    pub fn inline(max_size: usize, loop_opts: bool) -> SimplifyOpts {
        SimplifyOpts {
            const_fold: true,
            dead_code: true,
            cse: loop_opts,
            inline_once: false,
            inline_small: true,
            max_inline_size: max_size,
            redundant_switch: loop_opts,
            compare_elim: loop_opts,
        }
    }
}

/// Runs the simplifier once over the program; returns true if anything
/// changed.
pub fn simplify(p: &mut BProgram, vs: &mut VarSupply, opts: &SimplifyOpts) -> bool {
    simplify_with_signs(p, vs, opts, &HashMap::new())
}

/// Like [`simplify`], seeded with interprocedural lower bounds from the
/// rule-of-signs analysis (paper §3.3) so comparison elimination can
/// discharge `i < 0` tests on loop counters.
pub fn simplify_with_signs(
    p: &mut BProgram,
    vs: &mut VarSupply,
    opts: &SimplifyOpts,
    signs: &HashMap<Var, i64>,
) -> bool {
    let cen = census(&p.body);
    let boundary = vs.count();
    let mut facts = Facts::default();
    if opts.compare_elim {
        for (v, lo) in signs {
            facts.narrow(*v, Some(*lo), None);
        }
    }
    let mut s = Simp {
        census_boundary: boundary,
        vs,
        data: &p.data,
        opts,
        census: cen,
        changed: false,
        env: HashMap::new(),
        cse: HashMap::new(),
        used: HashSet::new(),
        once: HashMap::new(),
        small: HashMap::new(),
        facts,
        inline_budget: 1000,
    };
    let body = std::mem::replace(&mut p.body, BExp::Ret(Atom::Int(0)));
    p.body = s.exp(body);
    s.changed
}

#[derive(Clone, Debug)]
enum Def {
    Atom(Atom),
    Record(Vec<Atom>),
    ConVal {
        data: til_lambda::DataId,
        tag: usize,
        fields: Vec<Atom>,
    },
    Boxed(Atom),
    FloatConst(f64),
    Cmp(MPrim, Atom, Atom),
    Len,
    ArrOfLen(Atom),
    Fun,
}

/// Integer facts: per-variable ranges (rule of signs generalized to
/// intervals) and strict/non-strict order relations between atoms.
#[derive(Clone, Debug, Default)]
pub struct Facts {
    range: HashMap<Var, (Option<i64>, Option<i64>)>,
    lt: Vec<(Atom, Atom)>,
    le: Vec<(Atom, Atom)>,
}

impl Facts {
    /// Sets (intersects) a variable's known range.
    pub fn narrow(&mut self, v: Var, lo: Option<i64>, hi: Option<i64>) {
        let e = self.range.entry(v).or_insert((None, None));
        if let Some(l) = lo {
            e.0 = Some(e.0.map_or(l, |x| x.max(l)));
        }
        if let Some(h) = hi {
            e.1 = Some(e.1.map_or(h, |x| x.min(h)));
        }
    }

    fn range_of(&self, a: &Atom) -> (Option<i64>, Option<i64>) {
        match a {
            Atom::Int(n) => (Some(*n), Some(*n)),
            Atom::Var(v) => self.range.get(v).copied().unwrap_or((None, None)),
        }
    }

    /// Records `a < b`.
    pub fn add_lt(&mut self, a: Atom, b: Atom) {
        self.lt.push((a, b));
        // Range consequences against constants.
        if let (Atom::Var(v), Atom::Int(n)) = (a, b) {
            self.narrow(v, None, Some(n - 1));
        }
        if let (Atom::Int(n), Atom::Var(v)) = (a, b) {
            self.narrow(v, Some(n + 1), None);
        }
    }

    /// Records `a <= b`.
    pub fn add_le(&mut self, a: Atom, b: Atom) {
        self.le.push((a, b));
        if let (Atom::Var(v), Atom::Int(n)) = (a, b) {
            self.narrow(v, None, Some(n));
        }
        if let (Atom::Int(n), Atom::Var(v)) = (a, b) {
            self.narrow(v, Some(n), None);
        }
    }

    /// Can we prove `a < b`?
    pub fn proves_lt(&self, a: &Atom, b: &Atom) -> bool {
        let (_, ahi) = self.range_of(a);
        let (blo, _) = self.range_of(b);
        if let (Some(ah), Some(bl)) = (ahi, blo) {
            if ah < bl {
                return true;
            }
        }
        if self.lt.iter().any(|(x, y)| x == a && y == b) {
            return true;
        }
        // One step of transitivity: a < c <= b or a <= c < b.
        for (x, c) in &self.lt {
            if x == a
                && (self.le.iter().any(|(p, q)| p == c && q == b)
                    || self.lt.iter().any(|(p, q)| p == c && q == b)
                    || c == b)
            {
                return true;
            }
        }
        for (x, c) in &self.le {
            if x == a && self.lt.iter().any(|(p, q)| p == c && q == b) {
                return true;
            }
        }
        false
    }

    /// Can we prove `a <= b`?
    pub fn proves_le(&self, a: &Atom, b: &Atom) -> bool {
        if a == b {
            return true;
        }
        let (_, ahi) = self.range_of(a);
        let (blo, _) = self.range_of(b);
        if let (Some(ah), Some(bl)) = (ahi, blo) {
            if ah <= bl {
                return true;
            }
        }
        self.le.iter().any(|(x, y)| x == a && y == b) || self.proves_lt(a, b)
    }
}

enum Outcome {
    /// The binding reduces to an atom (copy-propagated away).
    Atom(Atom),
    /// The binding expands to an expression whose final `Ret` feeds the
    /// bound variable (switch folding, inlining).
    Inline(BExp),
    /// An ordinary right-hand side.
    Rhs(BRhs),
}

struct Simp<'a> {
    /// Variables with ids at or above this were created during this
    /// pass (inliner clones); the pass-start census knows nothing about
    /// them, so dead-code decisions must not trust its zero counts.
    census_boundary: u32,
    vs: &'a mut VarSupply,
    data: &'a MDataEnv,
    opts: &'a SimplifyOpts,
    census: Census,
    changed: bool,
    env: HashMap<Var, Def>,
    cse: HashMap<String, Var>,
    used: HashSet<Var>,
    once: HashMap<Var, BFun>,
    small: HashMap<Var, BFun>,
    facts: Facts,
    inline_budget: usize,
}

impl<'a> Simp<'a> {
    fn is_enum(&self, id: til_lambda::DataId) -> bool {
        self.data.is_enum(id)
    }

    fn resolve(&self, a: Atom) -> Atom {
        let mut a = a;
        for _ in 0..64 {
            match a {
                Atom::Var(v) => match self.env.get(&v) {
                    Some(Def::Atom(next)) => a = *next,
                    _ => return a,
                },
                Atom::Int(_) => return a,
            }
        }
        a
    }

    fn mark(&mut self, a: &Atom) {
        if let Atom::Var(v) = a {
            self.used.insert(*v);
        }
    }

    fn mark_rhs(&mut self, r: &BRhs) {
        match r {
            BRhs::Atom(a) | BRhs::Select(_, a) | BRhs::Raise { exn: a, .. } => self.mark(a),
            BRhs::Float(_) | BRhs::Str(_) => {}
            BRhs::Record(atoms) | BRhs::Con { args: atoms, .. } => {
                for a in atoms {
                    self.mark(a);
                }
            }
            BRhs::ExnCon { arg, .. } => {
                if let Some(a) = arg {
                    self.mark(a);
                }
            }
            BRhs::Prim { args, .. } => {
                for a in args {
                    self.mark(a);
                }
            }
            BRhs::App { f, args, .. } => {
                self.mark(f);
                for a in args {
                    self.mark(a);
                }
            }
            // Arm interiors were marked while they were rebuilt; only
            // the scrutinee remains.
            BRhs::Switch(sw) => match sw {
                BSwitch::Int { scrut, .. }
                | BSwitch::Data { scrut, .. }
                | BSwitch::Str { scrut, .. }
                | BSwitch::Exn { scrut, .. } => self.mark(&scrut.clone()),
            },
            BRhs::Typecase { .. } | BRhs::Handle { .. } => {}
        }
    }

    fn exp(&mut self, e: BExp) -> BExp {
        match e {
            BExp::Ret(a) => {
                let a = self.resolve(a);
                self.mark(&a);
                BExp::Ret(a)
            }
            BExp::Let { var, rhs, body } => self.do_let(var, rhs, *body),
            BExp::Fix { funs, body } => self.do_fix(funs, *body),
        }
    }

    fn do_fix(&mut self, funs: Vec<BFun>, body: BExp) -> BExp {
        let nest: Vec<Var> = funs.iter().map(|f| f.var).collect();
        // Whole-nest dead-code elimination: if every reference to every
        // function of the nest comes from within the nest itself, the
        // entire (possibly mutually recursive) group is unreachable.
        if self.opts.dead_code && nest.iter().all(|v| v.id() < self.census_boundary) {
            let mut internal = Census::default();
            for f in &funs {
                let c = census(&f.body);
                for v in &nest {
                    *internal.calls.entry(*v).or_insert(0) += c.calls(*v);
                    *internal.escapes.entry(*v).or_insert(0) += c.escapes(*v);
                }
            }
            if nest
                .iter()
                .all(|v| self.census.uses(*v) == internal.uses(*v))
            {
                self.changed = true;
                return self.exp(body);
            }
        }
        let mut kept = Vec::new();
        for f in funs {
            // Drop functions nobody references.
            if self.opts.dead_code
                && f.var.id() < self.census_boundary
                && self.census.uses(f.var) == 0
            {
                self.changed = true;
                continue;
            }
            let body_census = census(&f.body);
            let nest_recursive = nest.iter().any(|v| body_census.uses(*v) > 0);
            if self.opts.inline_once
                && !nest_recursive
                && self.census.calls(f.var) == 1
                && self.census.escapes(f.var) == 0
            {
                // Stash for inlining at its unique call site.
                self.once.insert(f.var, f);
                self.changed = true;
                continue;
            }
            self.env.insert(f.var, Def::Fun);
            kept.push(f);
        }
        // Register small functions for clone-inlining *before* the
        // bodies are simplified, so a sibling wrapper (worker/wrapper
        // pairs from uncurrying and argument flattening) inlines into
        // its worker's recursive call this same pass. Cloning keeps the
        // original, so only *self*-recursive functions are excluded.
        if self.opts.inline_small {
            let mut cands: Vec<&BFun> = Vec::new();
            for f in &kept {
                let self_recursive = census(&f.body).uses(f.var) > 0;
                if !self_recursive && f.body.size() <= self.opts.max_inline_size {
                    cands.push(f);
                }
            }
            // Mutually recursive candidate pairs would ping-pong the
            // inliner forever; keep only the smaller of each pair (the
            // wrapper).
            let mut excluded: Vec<Var> = Vec::new();
            for i in 0..cands.len() {
                for j in (i + 1)..cands.len() {
                    let f = cands[i];
                    let g = cands[j];
                    let f_calls_g = census(&f.body).uses(g.var) > 0;
                    let g_calls_f = census(&g.body).uses(f.var) > 0;
                    if f_calls_g && g_calls_f {
                        if f.body.size() >= g.body.size() {
                            excluded.push(f.var);
                        } else {
                            excluded.push(g.var);
                        }
                    }
                }
            }
            let chosen: Vec<BFun> = cands
                .into_iter()
                .filter(|f| !excluded.contains(&f.var))
                .cloned()
                .collect();
            for f in chosen {
                self.small.insert(f.var, f);
            }
        }
        // Simplify the retained bodies.
        let mut out_funs = Vec::with_capacity(kept.len());
        for mut f in kept {
            let saved_facts = self.facts.clone();
            let saved_cse = self.cse.clone();
            let b = std::mem::replace(&mut f.body, BExp::Ret(Atom::Int(0)));
            f.body = self.exp(b);
            self.facts = saved_facts;
            self.cse = saved_cse;
            out_funs.push(f);
        }
        let body = self.exp(body);
        if out_funs.is_empty() {
            body
        } else {
            BExp::Fix {
                funs: out_funs,
                body: Box::new(body),
            }
        }
    }

    fn do_let(&mut self, var: Var, rhs: BRhs, body: BExp) -> BExp {
        match self.simplify_rhs(var, rhs) {
            Outcome::Atom(a) => {
                self.changed = true;
                self.env.insert(var, Def::Atom(a));
                self.exp(body)
            }
            Outcome::Inline(e) => {
                self.changed = true;
                let grafted = splice_ret(e, &mut |a| BExp::Let {
                    var,
                    rhs: BRhs::Atom(a),
                    body: Box::new(BExp::Ret(Atom::Int(0))), // placeholder
                });
                // Re-stitch the real continuation: the placeholder body
                // above is replaced by the actual `body` expression.
                let grafted = replace_placeholder(grafted, var, body);
                self.exp(grafted)
            }
            Outcome::Rhs(r) => {
                // Record knowledge about var.
                self.record_def(var, &r);
                // CSE.
                if self.opts.cse {
                    if let Some(key) = cse_key(&r) {
                        if let Some(prev) = self.cse.get(&key) {
                            self.changed = true;
                            self.env.insert(var, Def::Atom(Atom::Var(*prev)));
                            return self.exp(body);
                        }
                        self.cse.insert(key, var);
                    }
                }
                let bodyout = self.exp(body);
                let pure = r.is_pure(&|_| false);
                if self.opts.dead_code && pure && !self.used.contains(&var) {
                    self.changed = true;
                    return bodyout;
                }
                self.mark_rhs(&r);
                BExp::Let {
                    var,
                    rhs: r,
                    body: Box::new(bodyout),
                }
            }
        }
    }

    fn record_def(&mut self, var: Var, r: &BRhs) {
        match r {
            BRhs::Record(atoms) => {
                self.env.insert(var, Def::Record(atoms.clone()));
            }
            BRhs::Con {
                data, tag, args, ..
            } => {
                self.env.insert(
                    var,
                    Def::ConVal {
                        data: *data,
                        tag: *tag,
                        fields: args.clone(),
                    },
                );
            }
            BRhs::Float(f) => {
                self.env.insert(var, Def::FloatConst(*f));
            }
            BRhs::Prim { prim, args, .. } => match prim {
                MPrim::BoxFloat => {
                    self.env.insert(var, Def::Boxed(args[0]));
                }
                MPrim::ILt | MPrim::ILe | MPrim::IGt | MPrim::IGe | MPrim::IEq | MPrim::INe => {
                    self.env.insert(var, Def::Cmp(*prim, args[0], args[1]));
                }
                MPrim::ALen | MPrim::StrSize => {
                    self.env.insert(var, Def::Len);
                    self.facts.narrow(var, Some(0), None);
                }
                MPrim::IANew | MPrim::FANew | MPrim::PANew => {
                    self.env.insert(var, Def::ArrOfLen(args[0]));
                }
                MPrim::IMod => {
                    // x mod y has the sign of y; for a positive constant
                    // modulus the result is in [0, y-1].
                    if let Atom::Int(m) = args[1] {
                        if m > 0 {
                            self.facts.narrow(var, Some(0), Some(m - 1));
                        }
                    }
                }
                _ => {}
            },
            _ => {}
        }
    }

    /// Simplifies one right-hand side (operands already need resolving).
    fn simplify_rhs(&mut self, bound: Var, r: BRhs) -> Outcome {
        let _ = bound;
        match r {
            BRhs::Atom(a) => Outcome::Atom(self.resolve(a)),
            BRhs::Float(f) => Outcome::Rhs(BRhs::Float(f)),
            BRhs::Str(s) => Outcome::Rhs(BRhs::Str(s)),
            BRhs::Record(atoms) => Outcome::Rhs(BRhs::Record(
                atoms.into_iter().map(|a| self.resolve(a)).collect(),
            )),
            BRhs::Select(i, a) => {
                let a = self.resolve(a);
                if self.opts.const_fold {
                    if let til_bform::Atom::Var(v) = a {
                        if let Some(Def::Record(fields)) = self.env.get(&v) {
                            if i < fields.len() {
                                return Outcome::Atom(self.resolve(fields[i]));
                            }
                        }
                    }
                }
                Outcome::Rhs(BRhs::Select(i, a))
            }
            BRhs::Con {
                data,
                cargs,
                tag,
                args,
            } => Outcome::Rhs(BRhs::Con {
                data,
                cargs,
                tag,
                args: args.into_iter().map(|a| self.resolve(a)).collect(),
            }),
            BRhs::ExnCon { exn, arg } => Outcome::Rhs(BRhs::ExnCon {
                exn,
                arg: arg.map(|a| self.resolve(a)),
            }),
            BRhs::Prim { prim, cargs, args } => {
                let args: Vec<til_bform::Atom> =
                    args.into_iter().map(|a| self.resolve(a)).collect();
                self.fold_prim(prim, cargs, args)
            }
            BRhs::App { f, cargs, args } => {
                let f = self.resolve(f);
                let args: Vec<til_bform::Atom> =
                    args.into_iter().map(|a| self.resolve(a)).collect();
                if let til_bform::Atom::Var(fv) = f {
                    if self.opts.inline_once {
                        if let Some(fun) = self.once.remove(&fv) {
                            return Outcome::Inline(self.build_inline(fun, &cargs, &args, false));
                        }
                    }
                    if self.opts.inline_small && self.inline_budget > 0 {
                        if let Some(fun) = self.small.get(&fv).cloned() {
                            self.inline_budget -= 1;
                            return Outcome::Inline(self.build_inline(fun, &cargs, &args, true));
                        }
                    }
                }
                Outcome::Rhs(BRhs::App { f, cargs, args })
            }
            BRhs::Raise { exn, con } => Outcome::Rhs(BRhs::Raise {
                exn: self.resolve(exn),
                con,
            }),
            BRhs::Handle { body, var, handler } => {
                let saved = (self.facts.clone(), self.cse.clone());
                let body = self.exp(*body);
                self.facts = saved.0.clone();
                self.cse = saved.1.clone();
                let handler = self.exp(*handler);
                self.facts = saved.0;
                self.cse = saved.1;
                // A handle whose body cannot raise could drop the
                // handler; conservatively keep it.
                Outcome::Rhs(BRhs::Handle {
                    body: Box::new(body),
                    var,
                    handler: Box::new(handler),
                })
            }
            BRhs::Typecase {
                scrut,
                int,
                float,
                ptr,
                con,
            } => {
                let enum_fn = |id: til_lambda::DataId| self.is_enum(id);
                let s = scrut.normalize(&enum_fn);
                if self.opts.const_fold {
                    match rep_tag(&s, &enum_fn) {
                        RepClass::Int => return Outcome::Inline(*int),
                        RepClass::Float => return Outcome::Inline(*float),
                        RepClass::Ptr => return Outcome::Inline(*ptr),
                        RepClass::Unknown => {}
                    }
                }
                let saved = (self.facts.clone(), self.cse.clone());
                let int = Box::new(self.exp(*int));
                self.facts = saved.0.clone();
                self.cse = saved.1.clone();
                let float = Box::new(self.exp(*float));
                self.facts = saved.0.clone();
                self.cse = saved.1.clone();
                let ptr = Box::new(self.exp(*ptr));
                self.facts = saved.0;
                self.cse = saved.1;
                Outcome::Rhs(BRhs::Typecase {
                    scrut: s,
                    int,
                    float,
                    ptr,
                    con,
                })
            }
            BRhs::Switch(sw) => self.fold_switch(sw),
        }
    }

    fn build_inline(
        &mut self,
        fun: BFun,
        cargs: &[Con],
        args: &[til_bform::Atom],
        clone: bool,
    ) -> BExp {
        let mut body = if clone {
            let mut env = HashMap::new();
            // Params must map to fresh names too.
            let mut fun2 = fun.clone();
            let nparams: Vec<(Var, Con)> = fun2
                .params
                .iter()
                .map(|(v, c)| {
                    let nv = self.vs.rename(*v);
                    env.insert(*v, nv);
                    (nv, c.clone())
                })
                .collect();
            fun2.params = nparams;
            fun2.body = alpha_clone(&fun.body, &mut env, self.vs);
            let mut e = fun2.body;
            // Bind parameters.
            for ((p, _), a) in fun2.params.iter().zip(args).rev() {
                e = BExp::Let {
                    var: *p,
                    rhs: BRhs::Atom(*a),
                    body: Box::new(e),
                };
            }
            let cmap: HashMap<til_lmli::con::CVar, Con> = fun2
                .cparams
                .iter()
                .copied()
                .zip(cargs.iter().cloned())
                .collect();
            subst_cons_exp(&mut e, &cmap);
            return e;
        } else {
            fun.body
        };
        let cmap: HashMap<til_lmli::con::CVar, Con> = fun
            .cparams
            .iter()
            .copied()
            .zip(cargs.iter().cloned())
            .collect();
        subst_cons_exp(&mut body, &cmap);
        for ((p, _), a) in fun.params.iter().zip(args).rev() {
            body = BExp::Let {
                var: *p,
                rhs: BRhs::Atom(*a),
                body: Box::new(body),
            };
        }
        body
    }

    // ---------------------------------------------------------- prims

    fn fold_prim(&mut self, prim: MPrim, cargs: Vec<Con>, args: Vec<Atom>) -> Outcome {
        if !self.opts.const_fold {
            return Outcome::Rhs(BRhs::Prim { prim, cargs, args });
        }
        let int2 = |args: &[Atom]| match (args[0], args[1]) {
            (Atom::Int(a), Atom::Int(b)) => Some((a, b)),
            _ => None,
        };
        // Constant folding and identities.
        match prim {
            MPrim::IAdd => {
                if let Some((a, b)) = int2(&args) {
                    if let Some(v) = a.checked_add(b) {
                        return Outcome::Atom(Atom::Int(v));
                    }
                }
                if args[1] == Atom::Int(0) {
                    return Outcome::Atom(args[0]);
                }
                if args[0] == Atom::Int(0) {
                    return Outcome::Atom(args[1]);
                }
            }
            MPrim::ISub => {
                if let Some((a, b)) = int2(&args) {
                    if let Some(v) = a.checked_sub(b) {
                        return Outcome::Atom(Atom::Int(v));
                    }
                }
                if args[1] == Atom::Int(0) {
                    return Outcome::Atom(args[0]);
                }
            }
            MPrim::IMul => {
                if let Some((a, b)) = int2(&args) {
                    if let Some(v) = a.checked_mul(b) {
                        return Outcome::Atom(Atom::Int(v));
                    }
                }
                if args[1] == Atom::Int(1) {
                    return Outcome::Atom(args[0]);
                }
                if args[0] == Atom::Int(1) {
                    return Outcome::Atom(args[1]);
                }
                if args[0] == Atom::Int(0) || args[1] == Atom::Int(0) {
                    return Outcome::Atom(Atom::Int(0));
                }
            }
            MPrim::IDiv => {
                if let Some((a, b)) = int2(&args) {
                    if b != 0 && !(a == i64::MIN && b == -1) {
                        return Outcome::Atom(Atom::Int(a.div_euclid(b)));
                    }
                }
                if args[1] == Atom::Int(1) {
                    return Outcome::Atom(args[0]);
                }
            }
            MPrim::IMod => {
                if let Some((a, b)) = int2(&args) {
                    if b != 0 && !(a == i64::MIN && b == -1) {
                        return Outcome::Atom(Atom::Int(a.rem_euclid(b)));
                    }
                }
            }
            MPrim::INeg => {
                if let Atom::Int(a) = args[0] {
                    if let Some(v) = a.checked_neg() {
                        return Outcome::Atom(Atom::Int(v));
                    }
                }
            }
            MPrim::IAbs => {
                if let Atom::Int(a) = args[0] {
                    if let Some(v) = a.checked_abs() {
                        return Outcome::Atom(Atom::Int(v));
                    }
                }
            }
            MPrim::AndB | MPrim::OrB | MPrim::XorB | MPrim::Lsl | MPrim::Lsr | MPrim::Asr => {
                if let Some((a, b)) = int2(&args) {
                    let v = match prim {
                        MPrim::AndB => a & b,
                        MPrim::OrB => a | b,
                        MPrim::XorB => a ^ b,
                        MPrim::Lsl => ((a as u64) << (b as u64 & 63)) as i64,
                        MPrim::Lsr => ((a as u64) >> (b as u64 & 63)) as i64,
                        _ => a >> (b as u64 & 63),
                    };
                    return Outcome::Atom(Atom::Int(v));
                }
            }
            MPrim::NotB => {
                if let Atom::Int(a) = args[0] {
                    return Outcome::Atom(Atom::Int(!a));
                }
            }
            MPrim::ILt | MPrim::ILe | MPrim::IGt | MPrim::IGe | MPrim::IEq | MPrim::INe => {
                if let Some(v) = self.fold_compare(prim, &args[0], &args[1]) {
                    return Outcome::Atom(Atom::Int(v as i64));
                }
            }
            MPrim::ALen => {
                if let Atom::Var(v) = args[0] {
                    if let Some(Def::ArrOfLen(n)) = self.env.get(&v) {
                        return Outcome::Atom(self.resolve(*n));
                    }
                }
            }
            MPrim::UnboxFloat => {
                if let Atom::Var(v) = args[0] {
                    if let Some(Def::Boxed(inner)) = self.env.get(&v) {
                        return Outcome::Atom(self.resolve(*inner));
                    }
                }
            }
            MPrim::FAdd | MPrim::FSub | MPrim::FMul | MPrim::FDiv => {
                if let (Some(a), Some(b)) = (self.float_of(&args[0]), self.float_of(&args[1])) {
                    let v = match prim {
                        MPrim::FAdd => a + b,
                        MPrim::FSub => a - b,
                        MPrim::FMul => a * b,
                        _ => a / b,
                    };
                    if v.is_finite() {
                        return Outcome::Rhs(BRhs::Float(v));
                    }
                }
            }
            MPrim::FNeg => {
                if let Some(a) = self.float_of(&args[0]) {
                    return Outcome::Rhs(BRhs::Float(-a));
                }
            }
            MPrim::FLt | MPrim::FLe | MPrim::FGt | MPrim::FGe | MPrim::FEq | MPrim::FNe => {
                if let (Some(a), Some(b)) = (self.float_of(&args[0]), self.float_of(&args[1])) {
                    let v = match prim {
                        MPrim::FLt => a < b,
                        MPrim::FLe => a <= b,
                        MPrim::FGt => a > b,
                        MPrim::FGe => a >= b,
                        MPrim::FEq => a == b,
                        _ => a != b,
                    };
                    return Outcome::Atom(Atom::Int(v as i64));
                }
            }
            MPrim::ItoF => {
                if let Atom::Int(a) = args[0] {
                    return Outcome::Rhs(BRhs::Float(a as f64));
                }
            }
            MPrim::PolyEq => {
                // Intensional-polymorphism payoff: equality at a known
                // representation becomes a primitive comparison.
                let enum_fn = |id: til_lambda::DataId| self.is_enum(id);
                let c = cargs[0].normalize(&enum_fn);
                match &c {
                    Con::Int => {
                        return self.fold_prim(MPrim::IEq, vec![], args);
                    }
                    Con::Str => {
                        return Outcome::Rhs(BRhs::Prim {
                            prim: MPrim::SEq,
                            cargs: vec![],
                            args,
                        });
                    }
                    Con::Boxed => {
                        // Unbox both then compare.
                        let u1 = self.vs.fresh_named("u");
                        let u2 = self.vs.fresh_named("u");
                        let res = self.vs.fresh_named("feq");
                        return Outcome::Inline(BExp::Let {
                            var: u1,
                            rhs: BRhs::Prim {
                                prim: MPrim::UnboxFloat,
                                cargs: vec![],
                                args: vec![args[0]],
                            },
                            body: Box::new(BExp::Let {
                                var: u2,
                                rhs: BRhs::Prim {
                                    prim: MPrim::UnboxFloat,
                                    cargs: vec![],
                                    args: vec![args[1]],
                                },
                                body: Box::new(BExp::Let {
                                    var: res,
                                    rhs: BRhs::Prim {
                                        prim: MPrim::FEq,
                                        cargs: vec![],
                                        args: vec![Atom::Var(u1), Atom::Var(u2)],
                                    },
                                    body: Box::new(BExp::Ret(Atom::Var(res))),
                                }),
                            }),
                        });
                    }
                    Con::Record(fs) if fs.is_empty() => return Outcome::Atom(Atom::Int(1)),
                    Con::Array(_) | Con::SpecArray(_) => {
                        return Outcome::Rhs(BRhs::Prim {
                            prim: MPrim::PtrEq,
                            cargs,
                            args,
                        });
                    }
                    _ => {}
                }
                return Outcome::Rhs(BRhs::Prim {
                    prim,
                    cargs: vec![c],
                    args,
                });
            }
            MPrim::PtrEq if args[0] == args[1] => {
                return Outcome::Atom(Atom::Int(1));
            }
            MPrim::StrSize => {}
            _ => {}
        }
        Outcome::Rhs(BRhs::Prim { prim, cargs, args })
    }

    fn float_of(&self, a: &Atom) -> Option<f64> {
        match a {
            Atom::Var(v) => match self.env.get(v) {
                Some(Def::FloatConst(f)) => Some(*f),
                _ => None,
            },
            Atom::Int(_) => None,
        }
    }

    fn fold_compare(&self, prim: MPrim, a: &Atom, b: &Atom) -> Option<bool> {
        // Constant comparisons always fold; fact-based folding is the
        // loop-oriented comparison elimination and is gated.
        if let (Atom::Int(x), Atom::Int(y)) = (a, b) {
            return Some(match prim {
                MPrim::ILt => x < y,
                MPrim::ILe => x <= y,
                MPrim::IGt => x > y,
                MPrim::IGe => x >= y,
                MPrim::IEq => x == y,
                _ => x != y,
            });
        }
        match prim {
            MPrim::ILt if a == b => return Some(false),
            MPrim::IGt if a == b => return Some(false),
            MPrim::ILe | MPrim::IGe | MPrim::IEq if a == b => return Some(true),
            MPrim::INe if a == b => return Some(false),
            _ => {}
        }
        if !self.opts.compare_elim {
            return None;
        }
        let f = &self.facts;
        match prim {
            MPrim::ILt => {
                if f.proves_lt(a, b) {
                    Some(true)
                } else if f.proves_le(b, a) {
                    Some(false)
                } else {
                    None
                }
            }
            MPrim::ILe => {
                if f.proves_le(a, b) {
                    Some(true)
                } else if f.proves_lt(b, a) {
                    Some(false)
                } else {
                    None
                }
            }
            MPrim::IGt => {
                if f.proves_lt(b, a) {
                    Some(true)
                } else if f.proves_le(a, b) {
                    Some(false)
                } else {
                    None
                }
            }
            MPrim::IGe => {
                if f.proves_le(b, a) {
                    Some(true)
                } else if f.proves_lt(a, b) {
                    Some(false)
                } else {
                    None
                }
            }
            MPrim::IEq => {
                if f.proves_lt(a, b) || f.proves_lt(b, a) {
                    Some(false)
                } else {
                    None
                }
            }
            MPrim::INe => {
                if f.proves_lt(a, b) || f.proves_lt(b, a) {
                    Some(true)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    // -------------------------------------------------------- switches

    fn fold_switch(&mut self, sw: BSwitch) -> Outcome {
        match sw {
            BSwitch::Int {
                scrut,
                arms,
                default,
                con,
            } => {
                let scrut = self.resolve(scrut);
                if self.opts.const_fold {
                    if let Atom::Int(k) = scrut {
                        for (v, arm) in &arms {
                            if *v == k {
                                return Outcome::Inline(arm.clone());
                            }
                        }
                        return Outcome::Inline(*default);
                    }
                }
                // Rebuild arms with branch facts.
                let mut out_arms = Vec::with_capacity(arms.len());
                for (k, arm) in arms {
                    let saved = (self.facts.clone(), self.cse.clone());
                    let saved_def = scrut.as_var().and_then(|v| self.env.get(&v).cloned());
                    if self.opts.redundant_switch {
                        if let Atom::Var(v) = scrut {
                            self.push_scrut_fact(v, k);
                        }
                    }
                    let arm = self.exp(arm);
                    self.facts = saved.0;
                    self.cse = saved.1;
                    if let Atom::Var(v) = scrut {
                        match saved_def {
                            Some(ref d) => {
                                self.env.insert(v, d.clone());
                            }
                            None => {
                                self.env.remove(&v);
                            }
                        }
                    }
                    out_arms.push((k, arm));
                }
                let saved = (self.facts.clone(), self.cse.clone());
                if self.opts.redundant_switch && out_arms.len() == 1 {
                    // Binary comparison switch: the default is the
                    // negation when the scrutinee is a comparison.
                    if let Atom::Var(v) = scrut {
                        self.push_negated_fact(v, out_arms[0].0);
                    }
                }
                let default = Box::new(self.exp(*default));
                self.facts = saved.0;
                self.cse = saved.1;
                Outcome::Rhs(BRhs::Switch(BSwitch::Int {
                    scrut,
                    arms: out_arms,
                    default,
                    con,
                }))
            }
            BSwitch::Data {
                scrut,
                data,
                cargs,
                arms,
                default,
                con,
            } => {
                let scrut = self.resolve(scrut);
                if self.opts.const_fold {
                    if let Atom::Var(v) = scrut {
                        if let Some(Def::ConVal {
                            data: d2,
                            tag,
                            fields,
                        }) = self.env.get(&v).cloned()
                        {
                            if d2 == data {
                                for (t, binders, arm) in &arms {
                                    if *t == tag {
                                        let mut e = arm.clone();
                                        for (b, f) in binders.iter().zip(&fields).rev() {
                                            e = BExp::Let {
                                                var: *b,
                                                rhs: BRhs::Atom(*f),
                                                body: Box::new(e),
                                            };
                                        }
                                        return Outcome::Inline(e);
                                    }
                                }
                                if let Some(d) = default {
                                    return Outcome::Inline(*d);
                                }
                            }
                        }
                    }
                }
                let mut out_arms = Vec::with_capacity(arms.len());
                for (tag, binders, arm) in arms {
                    let saved = (self.facts.clone(), self.cse.clone());
                    let saved_def = scrut.as_var().and_then(|v| self.env.get(&v).cloned());
                    if self.opts.redundant_switch {
                        if let Atom::Var(v) = scrut {
                            self.env.insert(
                                v,
                                Def::ConVal {
                                    data,
                                    tag,
                                    fields: binders.iter().map(|b| Atom::Var(*b)).collect(),
                                },
                            );
                        }
                    }
                    let arm = self.exp(arm);
                    self.facts = saved.0;
                    self.cse = saved.1;
                    if let Atom::Var(v) = scrut {
                        match saved_def {
                            Some(ref d) => {
                                self.env.insert(v, d.clone());
                            }
                            None => {
                                self.env.remove(&v);
                            }
                        }
                    }
                    out_arms.push((tag, binders, arm));
                }
                let default = match default {
                    Some(d) => {
                        let saved = (self.facts.clone(), self.cse.clone());
                        let d = self.exp(*d);
                        self.facts = saved.0;
                        self.cse = saved.1;
                        Some(Box::new(d))
                    }
                    None => None,
                };
                Outcome::Rhs(BRhs::Switch(BSwitch::Data {
                    scrut,
                    data,
                    cargs,
                    arms: out_arms,
                    default,
                    con,
                }))
            }
            BSwitch::Str {
                scrut,
                arms,
                default,
                con,
            } => {
                let scrut = self.resolve(scrut);
                let mut out_arms = Vec::with_capacity(arms.len());
                for (k, arm) in arms {
                    let saved = (self.facts.clone(), self.cse.clone());
                    let arm = self.exp(arm);
                    self.facts = saved.0;
                    self.cse = saved.1;
                    out_arms.push((k, arm));
                }
                let saved = (self.facts.clone(), self.cse.clone());
                let default = Box::new(self.exp(*default));
                self.facts = saved.0;
                self.cse = saved.1;
                Outcome::Rhs(BRhs::Switch(BSwitch::Str {
                    scrut,
                    arms: out_arms,
                    default,
                    con,
                }))
            }
            BSwitch::Exn {
                scrut,
                arms,
                default,
                con,
            } => {
                let scrut = self.resolve(scrut);
                let mut out_arms = Vec::with_capacity(arms.len());
                for (id, binder, arm) in arms {
                    let saved = (self.facts.clone(), self.cse.clone());
                    let arm = self.exp(arm);
                    self.facts = saved.0;
                    self.cse = saved.1;
                    out_arms.push((id, binder, arm));
                }
                let saved = (self.facts.clone(), self.cse.clone());
                let default = Box::new(self.exp(*default));
                self.facts = saved.0;
                self.cse = saved.1;
                Outcome::Rhs(BRhs::Switch(BSwitch::Exn {
                    scrut,
                    arms: out_arms,
                    default,
                    con,
                }))
            }
        }
    }

    /// Inside the arm `scrut = k`: substitute the constant and, when
    /// the scrutinee is a comparison result, push the relation.
    fn push_scrut_fact(&mut self, v: Var, k: i64) {
        if let Some(Def::Cmp(prim, a, b)) = self.env.get(&v).cloned() {
            let truth = k != 0;
            self.push_cmp_fact(prim, a, b, truth);
        }
        self.env.insert(v, Def::Atom(Atom::Int(k)));
    }

    /// Inside the default of a single-arm switch on `scrut = k`: the
    /// comparison took the other value.
    fn push_negated_fact(&mut self, v: Var, k: i64) {
        if let Some(Def::Cmp(prim, a, b)) = self.env.get(&v).cloned() {
            // In the default branch the value is != k; for 0/1-valued
            // comparisons that means the negation of (k != 0).
            let truth = k == 0;
            self.push_cmp_fact(prim, a, b, truth);
        }
    }

    fn push_cmp_fact(&mut self, prim: MPrim, a: Atom, b: Atom, truth: bool) {
        match (prim, truth) {
            (MPrim::ILt, true) | (MPrim::IGe, false) => self.facts.add_lt(a, b),
            (MPrim::ILt, false) | (MPrim::IGe, true) => self.facts.add_le(b, a),
            (MPrim::ILe, true) | (MPrim::IGt, false) => self.facts.add_le(a, b),
            (MPrim::ILe, false) | (MPrim::IGt, true) => self.facts.add_lt(b, a),
            (MPrim::IEq, true) => {
                self.facts.add_le(a, b);
                self.facts.add_le(b, a);
            }
            _ => {}
        }
    }
}

/// Replaces the placeholder `Ret 0` body of the freshly grafted binding
/// of `var` with the real continuation.
fn replace_placeholder(e: BExp, var: Var, cont: BExp) -> BExp {
    match e {
        BExp::Let { var: v, rhs, body } => {
            if v == var {
                if let BRhs::Atom(_) = rhs {
                    if matches!(*body, BExp::Ret(Atom::Int(0))) {
                        return BExp::Let {
                            var: v,
                            rhs,
                            body: Box::new(cont),
                        };
                    }
                }
            }
            BExp::Let {
                var: v,
                rhs,
                body: Box::new(replace_placeholder(*body, var, cont)),
            }
        }
        BExp::Fix { funs, body } => BExp::Fix {
            funs,
            body: Box::new(replace_placeholder(*body, var, cont)),
        },
        BExp::Ret(a) => BExp::Ret(a),
    }
}

fn atom_key(a: &Atom) -> String {
    match a {
        Atom::Var(v) => format!("v{}", v.id()),
        Atom::Int(n) => format!("i{n}"),
    }
}

/// A CSE key for RHSs that are safe to share: pure primitives and
/// primitives that can only raise (§3.3), selections, and immutable
/// allocations (records, constructors, strings — SML gives them no
/// identity).
fn cse_key(r: &BRhs) -> Option<String> {
    match r {
        BRhs::Prim { prim, cargs, args } => {
            if (prim.is_pure() || prim.only_raises()) && !matches!(prim, MPrim::ALen) {
                let asl: Vec<String> = args.iter().map(atom_key).collect();
                Some(format!("p{prim}({});{:?}", asl.join(","), cargs))
            } else if matches!(prim, MPrim::ALen) {
                let asl: Vec<String> = args.iter().map(atom_key).collect();
                Some(format!("len({})", asl.join(",")))
            } else {
                None
            }
        }
        BRhs::Select(i, a) => Some(format!("s{i}({})", atom_key(a))),
        BRhs::Record(atoms) => {
            let asl: Vec<String> = atoms.iter().map(atom_key).collect();
            Some(format!("r({})", asl.join(",")))
        }
        BRhs::Con {
            data,
            cargs,
            tag,
            args,
        } => {
            let asl: Vec<String> = args.iter().map(atom_key).collect();
            Some(format!("c{}#{tag}({});{cargs:?}", data.0, asl.join(",")))
        }
        BRhs::Str(s) => Some(format!("str{s:?}")),
        _ => None,
    }
}
