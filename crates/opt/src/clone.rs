//! Alpha-renaming clones and constructor substitution over Bform.
//!
//! Inlining duplicates function bodies; every binder in the clone must
//! be freshened to preserve Bform's globally-unique-binders invariant.
//! Inlining a *polymorphic* function additionally substitutes the
//! call's constructor arguments for the function's constructor
//! parameters everywhere in the clone.

use std::collections::HashMap;
use til_bform::{Atom, BExp, BFun, BRhs, BSwitch};
use til_common::{Var, VarSupply};
use til_lmli::con::{CVar, Con};

/// Substitutes constructors through an expression in place.
pub fn subst_cons_exp(e: &mut BExp, map: &HashMap<CVar, Con>) {
    if map.is_empty() {
        return;
    }
    match e {
        BExp::Ret(_) => {}
        BExp::Let { rhs, body, .. } => {
            subst_cons_rhs(rhs, map);
            subst_cons_exp(body, map);
        }
        BExp::Fix { funs, body } => {
            for f in funs {
                // Inner binders shadow (ids are unique, so no capture).
                for (_, c) in &mut f.params {
                    *c = c.subst(map);
                }
                f.ret = f.ret.subst(map);
                subst_cons_exp(&mut f.body, map);
            }
            subst_cons_exp(body, map);
        }
    }
}

fn subst_cons_rhs(r: &mut BRhs, map: &HashMap<CVar, Con>) {
    match r {
        BRhs::Atom(_) | BRhs::Float(_) | BRhs::Str(_) | BRhs::Record(_) | BRhs::Select(..) => {}
        BRhs::Con { cargs, .. } => {
            for c in cargs {
                *c = c.subst(map);
            }
        }
        BRhs::ExnCon { .. } => {}
        BRhs::Prim { cargs, .. } => {
            for c in cargs {
                *c = c.subst(map);
            }
        }
        BRhs::App { cargs, .. } => {
            for c in cargs {
                *c = c.subst(map);
            }
        }
        BRhs::Raise { con, .. } => *con = con.subst(map),
        BRhs::Handle { body, handler, .. } => {
            subst_cons_exp(body, map);
            subst_cons_exp(handler, map);
        }
        BRhs::Typecase {
            scrut,
            int,
            float,
            ptr,
            con,
        } => {
            *scrut = scrut.subst(map);
            *con = con.subst(map);
            subst_cons_exp(int, map);
            subst_cons_exp(float, map);
            subst_cons_exp(ptr, map);
        }
        BRhs::Switch(sw) => match sw {
            BSwitch::Int { arms, default, con, .. } => {
                *con = con.subst(map);
                for (_, a) in arms {
                    subst_cons_exp(a, map);
                }
                subst_cons_exp(default, map);
            }
            BSwitch::Data {
                cargs,
                arms,
                default,
                con,
                ..
            } => {
                for c in cargs.iter_mut() {
                    *c = c.subst(map);
                }
                *con = con.subst(map);
                for (_, _, a) in arms {
                    subst_cons_exp(a, map);
                }
                if let Some(d) = default {
                    subst_cons_exp(d, map);
                }
            }
            BSwitch::Str { arms, default, con, .. } => {
                *con = con.subst(map);
                for (_, a) in arms {
                    subst_cons_exp(a, map);
                }
                subst_cons_exp(default, map);
            }
            BSwitch::Exn { arms, default, con, .. } => {
                *con = con.subst(map);
                for (_, _, a) in arms {
                    subst_cons_exp(a, map);
                }
                subst_cons_exp(default, map);
            }
        },
    }
}

/// Clones an expression with every binder freshened and free variables
/// redirected through `env` (bound variables are added to `env` as the
/// clone proceeds).
pub fn alpha_clone(e: &BExp, env: &mut HashMap<Var, Var>, vs: &mut VarSupply) -> BExp {
    match e {
        BExp::Ret(a) => BExp::Ret(ren_atom(a, env)),
        BExp::Let { var, rhs, body } => {
            let rhs = clone_rhs(rhs, env, vs);
            let nv = vs.rename(*var);
            env.insert(*var, nv);
            BExp::Let {
                var: nv,
                rhs,
                body: Box::new(alpha_clone(body, env, vs)),
            }
        }
        BExp::Fix { funs, body } => {
            let names: Vec<Var> = funs
                .iter()
                .map(|f| {
                    let nv = vs.rename(f.var);
                    env.insert(f.var, nv);
                    nv
                })
                .collect();
            let funs = funs
                .iter()
                .zip(names)
                .map(|(f, nv)| {
                    let params: Vec<(Var, Con)> = f
                        .params
                        .iter()
                        .map(|(v, c)| {
                            let np = vs.rename(*v);
                            env.insert(*v, np);
                            (np, c.clone())
                        })
                        .collect();
                    BFun {
                        var: nv,
                        cparams: f.cparams.clone(),
                        params,
                        ret: f.ret.clone(),
                        body: alpha_clone(&f.body, env, vs),
                    }
                })
                .collect();
            BExp::Fix {
                funs,
                body: Box::new(alpha_clone(body, env, vs)),
            }
        }
    }
}

fn ren_atom(a: &Atom, env: &HashMap<Var, Var>) -> Atom {
    match a {
        Atom::Var(v) => Atom::Var(env.get(v).copied().unwrap_or(*v)),
        Atom::Int(n) => Atom::Int(*n),
    }
}

fn clone_rhs(r: &BRhs, env: &mut HashMap<Var, Var>, vs: &mut VarSupply) -> BRhs {
    match r {
        BRhs::Atom(a) => BRhs::Atom(ren_atom(a, env)),
        BRhs::Float(f) => BRhs::Float(*f),
        BRhs::Str(s) => BRhs::Str(s.clone()),
        BRhs::Record(atoms) => BRhs::Record(atoms.iter().map(|a| ren_atom(a, env)).collect()),
        BRhs::Select(i, a) => BRhs::Select(*i, ren_atom(a, env)),
        BRhs::Con {
            data,
            cargs,
            tag,
            args,
        } => BRhs::Con {
            data: *data,
            cargs: cargs.clone(),
            tag: *tag,
            args: args.iter().map(|a| ren_atom(a, env)).collect(),
        },
        BRhs::ExnCon { exn, arg } => BRhs::ExnCon {
            exn: *exn,
            arg: arg.as_ref().map(|a| ren_atom(a, env)),
        },
        BRhs::Prim { prim, cargs, args } => BRhs::Prim {
            prim: *prim,
            cargs: cargs.clone(),
            args: args.iter().map(|a| ren_atom(a, env)).collect(),
        },
        BRhs::App { f, cargs, args } => BRhs::App {
            f: ren_atom(f, env),
            cargs: cargs.clone(),
            args: args.iter().map(|a| ren_atom(a, env)).collect(),
        },
        BRhs::Raise { exn, con } => BRhs::Raise {
            exn: ren_atom(exn, env),
            con: con.clone(),
        },
        BRhs::Handle { body, var, handler } => {
            let body = alpha_clone(body, env, vs);
            let nv = vs.rename(*var);
            env.insert(*var, nv);
            BRhs::Handle {
                body: Box::new(body),
                var: nv,
                handler: Box::new(alpha_clone(handler, env, vs)),
            }
        }
        BRhs::Typecase {
            scrut,
            int,
            float,
            ptr,
            con,
        } => BRhs::Typecase {
            scrut: scrut.clone(),
            int: Box::new(alpha_clone(int, env, vs)),
            float: Box::new(alpha_clone(float, env, vs)),
            ptr: Box::new(alpha_clone(ptr, env, vs)),
            con: con.clone(),
        },
        BRhs::Switch(sw) => BRhs::Switch(match sw {
            BSwitch::Int {
                scrut,
                arms,
                default,
                con,
            } => BSwitch::Int {
                scrut: ren_atom(scrut, env),
                arms: arms
                    .iter()
                    .map(|(k, a)| (*k, alpha_clone(a, env, vs)))
                    .collect(),
                default: Box::new(alpha_clone(default, env, vs)),
                con: con.clone(),
            },
            BSwitch::Data {
                scrut,
                data,
                cargs,
                arms,
                default,
                con,
            } => BSwitch::Data {
                scrut: ren_atom(scrut, env),
                data: *data,
                cargs: cargs.clone(),
                arms: arms
                    .iter()
                    .map(|(tag, binders, a)| {
                        let nb: Vec<Var> = binders
                            .iter()
                            .map(|v| {
                                let nv = vs.rename(*v);
                                env.insert(*v, nv);
                                nv
                            })
                            .collect();
                        (*tag, nb, alpha_clone(a, env, vs))
                    })
                    .collect(),
                default: default.as_ref().map(|d| Box::new(alpha_clone(d, env, vs))),
                con: con.clone(),
            },
            BSwitch::Str {
                scrut,
                arms,
                default,
                con,
            } => BSwitch::Str {
                scrut: ren_atom(scrut, env),
                arms: arms
                    .iter()
                    .map(|(k, a)| (k.clone(), alpha_clone(a, env, vs)))
                    .collect(),
                default: Box::new(alpha_clone(default, env, vs)),
                con: con.clone(),
            },
            BSwitch::Exn {
                scrut,
                arms,
                default,
                con,
            } => BSwitch::Exn {
                scrut: ren_atom(scrut, env),
                arms: arms
                    .iter()
                    .map(|(id, binder, a)| {
                        let nb = binder.map(|v| {
                            let nv = vs.rename(v);
                            env.insert(v, nv);
                            nv
                        });
                        (*id, nb, alpha_clone(a, env, vs))
                    })
                    .collect(),
                default: Box::new(alpha_clone(default, env, vs)),
                con: con.clone(),
            },
        }),
    }
}

/// Walks the linear spine of `e` to its final `Ret` and replaces it
/// with `k(atom)` — the inliner's splice (function bodies have exactly
/// one spine-level `Ret` by construction).
pub fn splice_ret(e: BExp, k: &mut dyn FnMut(Atom) -> BExp) -> BExp {
    match e {
        BExp::Ret(a) => k(a),
        BExp::Let { var, rhs, body } => BExp::Let {
            var,
            rhs,
            body: Box::new(splice_ret(*body, k)),
        },
        BExp::Fix { funs, body } => BExp::Fix {
            funs,
            body: Box::new(splice_ret(*body, k)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_freshens_binders() {
        let mut vs = VarSupply::new();
        let x = vs.fresh();
        let e = BExp::Let {
            var: x,
            rhs: BRhs::Record(vec![Atom::Int(1)]),
            body: Box::new(BExp::Ret(Atom::Var(x))),
        };
        let mut env = HashMap::new();
        let c = alpha_clone(&e, &mut env, &mut vs);
        let BExp::Let { var, body, .. } = c else {
            panic!()
        };
        assert_ne!(var, x);
        let BExp::Ret(Atom::Var(v)) = *body else {
            panic!()
        };
        assert_eq!(v, var);
    }

    #[test]
    fn splice_replaces_final_ret() {
        let mut vs = VarSupply::new();
        let x = vs.fresh();
        let e = BExp::Let {
            var: x,
            rhs: BRhs::Atom(Atom::Int(5)),
            body: Box::new(BExp::Ret(Atom::Var(x))),
        };
        let out = splice_ret(e, &mut |a| {
            BExp::Let {
                var: Var::from_raw(99, None),
                rhs: BRhs::Atom(a),
                body: Box::new(BExp::Ret(Atom::Int(0))),
            }
        });
        let BExp::Let { body, .. } = out else { panic!() };
        assert!(matches!(*body, BExp::Let { .. }));
    }

    #[test]
    fn subst_cons_rewrites_cargs() {
        let mut vs = VarSupply::new();
        let x = vs.fresh();
        let a = CVar(7);
        let mut e = BExp::Let {
            var: x,
            rhs: BRhs::App {
                f: Atom::Int(0),
                cargs: vec![Con::Var(a)],
                args: vec![],
            },
            body: Box::new(BExp::Ret(Atom::Var(x))),
        };
        let mut map = HashMap::new();
        map.insert(a, Con::Int);
        subst_cons_exp(&mut e, &map);
        let BExp::Let { rhs, .. } = &e else { panic!() };
        let BRhs::App { cargs, .. } = rhs else {
            panic!()
        };
        assert_eq!(cargs[0], Con::Int);
    }
}
