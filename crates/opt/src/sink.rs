//! Sinking (paper §3.3): a pure binding used in only one branch of a
//! switch is pushed into that branch (but never into a function body),
//! so branches that don't need the value don't pay for it.

use crate::census::{census, Census};
use til_bform::{Atom, BExp, BProgram, BRhs, BSwitch};
use til_common::Var;

/// Runs one sinking round; returns true if anything moved.
pub fn sink(p: &mut BProgram) -> bool {
    let mut changed = false;
    let body = std::mem::replace(&mut p.body, BExp::Ret(Atom::Int(0)));
    p.body = exp(body, &mut changed);
    changed
}

fn exp(e: BExp, changed: &mut bool) -> BExp {
    match e {
        BExp::Ret(a) => BExp::Ret(a),
        BExp::Fix { funs, body } => BExp::Fix {
            funs: funs
                .into_iter()
                .map(|mut f| {
                    let b = std::mem::replace(&mut f.body, BExp::Ret(Atom::Int(0)));
                    f.body = exp(b, changed);
                    f
                })
                .collect(),
            body: Box::new(exp(*body, changed)),
        },
        BExp::Let { var, rhs, body } => {
            let rhs = rhs_rec(rhs, changed);
            let body = exp(*body, changed);
            // Try to sink this binding into a following switch arm.
            if rhs.is_pure(&|_| false) && !nested(&rhs) {
                let (out, moved) = try_sink(var, &rhs, body);
                if moved {
                    *changed = true;
                }
                return out;
            }
            BExp::Let {
                var,
                rhs,
                body: Box::new(body),
            }
        }
    }
}

fn nested(r: &BRhs) -> bool {
    matches!(
        r,
        BRhs::Switch(_) | BRhs::Typecase { .. } | BRhs::Handle { .. }
    )
}

/// If `body`'s spine reaches a switch and `var` is used in exactly one
/// arm (and nowhere else), push `var = rhs` into that arm. Returns the
/// resulting expression and whether a move happened.
fn try_sink(var: Var, rhs: &BRhs, body: BExp) -> (BExp, bool) {
    // Walk the spine: intervening bindings must not use var.
    fn uses_var(c: &Census, v: Var) -> usize {
        c.uses(v)
    }
    // Locate the first switch along the spine. `Result` here is
    // control flow (Ok = sunk, Err = expression handed back
    // unchanged), not error handling — both sides carry the tree.
    #[allow(clippy::result_large_err)]
    fn go(var: Var, rhs: &BRhs, e: BExp) -> Result<BExp, BExp> {
        match e {
            BExp::Let {
                var: v2,
                rhs: BRhs::Switch(sw),
                body: after,
            } => {
                // var must not occur after the switch or in other arms
                // or the scrutinee.
                let after_uses = uses_var(&census(&after), var);
                if after_uses > 0 {
                    return Err(BExp::Let {
                        var: v2,
                        rhs: BRhs::Switch(sw),
                        body: after,
                    });
                }
                match sink_into_switch(var, rhs, sw) {
                    Ok(sw2) => Ok(BExp::Let {
                        var: v2,
                        rhs: BRhs::Switch(sw2),
                        body: after,
                    }),
                    Err(sw) => Err(BExp::Let {
                        var: v2,
                        rhs: BRhs::Switch(sw),
                        body: after,
                    }),
                }
            }
            BExp::Let {
                var: v2,
                rhs: r2,
                body: after,
            } => {
                // The intervening binding must not use var.
                let mut used = false;
                crate::util::rhs_atoms(&r2, &mut |a| {
                    if *a == Atom::Var(var) {
                        used = true;
                    }
                });
                if used || nested(&r2) {
                    return Err(BExp::Let {
                        var: v2,
                        rhs: r2,
                        body: after,
                    });
                }
                match go(var, rhs, *after) {
                    Ok(e2) => Ok(BExp::Let {
                        var: v2,
                        rhs: r2,
                        body: Box::new(e2),
                    }),
                    Err(e2) => Err(BExp::Let {
                        var: v2,
                        rhs: r2,
                        body: Box::new(e2),
                    }),
                }
            }
            other => Err(other),
        }
    }
    match go(var, rhs, body) {
        Ok(new_body) => (new_body, true),
        Err(body) => (
            BExp::Let {
                var,
                rhs: rhs.clone(),
                body: Box::new(body),
            },
            false,
        ),
    }
}

// `Result` is control flow (Ok = sunk, Err = switch handed back
// unchanged), not error handling — both sides carry the tree.
#[allow(clippy::result_large_err)]
fn sink_into_switch(var: Var, rhs: &BRhs, sw: BSwitch) -> Result<BSwitch, BSwitch> {
    macro_rules! arm_uses {
        ($arms:expr, $default:expr, $scrut:expr) => {{
            if *$scrut == Atom::Var(var) {
                None
            } else {
                let mut hot: Option<usize> = None;
                let mut total = 0usize;
                for (i, a) in $arms.iter().enumerate() {
                    let n = census(a).uses(var);
                    if n > 0 {
                        total += 1;
                        hot = Some(i);
                    }
                }
                let dn = census($default).uses(var);
                if dn > 0 {
                    total += 1;
                    hot = Some(usize::MAX);
                }
                if total == 1 {
                    hot
                } else {
                    None
                }
            }
        }};
    }
    let push = |e: BExp| -> BExp {
        BExp::Let {
            var,
            rhs: rhs.clone(),
            body: Box::new(e),
        }
    };
    match sw {
        BSwitch::Int {
            scrut,
            mut arms,
            mut default,
            con,
        } => {
            let arm_exps: Vec<&BExp> = arms.iter().map(|(_, a)| a).collect();
            match arm_uses!(arm_exps, &*default, &scrut) {
                Some(usize::MAX) => {
                    let d = std::mem::replace(&mut *default, BExp::Ret(Atom::Int(0)));
                    *default = push(d);
                    Ok(BSwitch::Int {
                        scrut,
                        arms,
                        default,
                        con,
                    })
                }
                Some(i) => {
                    let a = std::mem::replace(&mut arms[i].1, BExp::Ret(Atom::Int(0)));
                    arms[i].1 = push(a);
                    Ok(BSwitch::Int {
                        scrut,
                        arms,
                        default,
                        con,
                    })
                }
                None => Err(BSwitch::Int {
                    scrut,
                    arms,
                    default,
                    con,
                }),
            }
        }
        BSwitch::Data {
            scrut,
            data,
            cargs,
            mut arms,
            default,
            con,
        } => {
            // Only handle the no-default case uniformly; with a default
            // we bail out (rare after optimization).
            let Some(mut default_box) = default else {
                let arm_exps: Vec<&BExp> = arms.iter().map(|(_, _, a)| a).collect();
                let hot = {
                    if scrut == Atom::Var(var) {
                        None
                    } else {
                        let mut hot: Option<usize> = None;
                        let mut total = 0usize;
                        for (i, a) in arm_exps.iter().enumerate() {
                            if census(a).uses(var) > 0 {
                                total += 1;
                                hot = Some(i);
                            }
                        }
                        if total == 1 {
                            hot
                        } else {
                            None
                        }
                    }
                };
                return match hot {
                    Some(i) => {
                        let a = std::mem::replace(&mut arms[i].2, BExp::Ret(Atom::Int(0)));
                        arms[i].2 = push(a);
                        Ok(BSwitch::Data {
                            scrut,
                            data,
                            cargs,
                            arms,
                            default: None,
                            con,
                        })
                    }
                    None => Err(BSwitch::Data {
                        scrut,
                        data,
                        cargs,
                        arms,
                        default: None,
                        con,
                    }),
                };
            };
            let arm_exps: Vec<&BExp> = arms.iter().map(|(_, _, a)| a).collect();
            match arm_uses!(arm_exps, &*default_box, &scrut) {
                Some(usize::MAX) => {
                    let d = std::mem::replace(&mut *default_box, BExp::Ret(Atom::Int(0)));
                    *default_box = push(d);
                    Ok(BSwitch::Data {
                        scrut,
                        data,
                        cargs,
                        arms,
                        default: Some(default_box),
                        con,
                    })
                }
                Some(i) => {
                    let a = std::mem::replace(&mut arms[i].2, BExp::Ret(Atom::Int(0)));
                    arms[i].2 = push(a);
                    Ok(BSwitch::Data {
                        scrut,
                        data,
                        cargs,
                        arms,
                        default: Some(default_box),
                        con,
                    })
                }
                None => Err(BSwitch::Data {
                    scrut,
                    data,
                    cargs,
                    arms,
                    default: Some(default_box),
                    con,
                }),
            }
        }
        other => Err(other),
    }
}

fn rhs_rec(r: BRhs, changed: &mut bool) -> BRhs {
    match r {
        BRhs::Switch(sw) => BRhs::Switch(match sw {
            BSwitch::Int {
                scrut,
                arms,
                default,
                con,
            } => BSwitch::Int {
                scrut,
                arms: arms
                    .into_iter()
                    .map(|(k, a)| (k, exp(a, changed)))
                    .collect(),
                default: Box::new(exp(*default, changed)),
                con,
            },
            BSwitch::Data {
                scrut,
                data,
                cargs,
                arms,
                default,
                con,
            } => BSwitch::Data {
                scrut,
                data,
                cargs,
                arms: arms
                    .into_iter()
                    .map(|(t, b, a)| (t, b, exp(a, changed)))
                    .collect(),
                default: default.map(|d| Box::new(exp(*d, changed))),
                con,
            },
            BSwitch::Str {
                scrut,
                arms,
                default,
                con,
            } => BSwitch::Str {
                scrut,
                arms: arms
                    .into_iter()
                    .map(|(k, a)| (k, exp(a, changed)))
                    .collect(),
                default: Box::new(exp(*default, changed)),
                con,
            },
            BSwitch::Exn {
                scrut,
                arms,
                default,
                con,
            } => BSwitch::Exn {
                scrut,
                arms: arms
                    .into_iter()
                    .map(|(id, b, a)| (id, b, exp(a, changed)))
                    .collect(),
                default: Box::new(exp(*default, changed)),
                con,
            },
        }),
        BRhs::Typecase {
            scrut,
            int,
            float,
            ptr,
            con,
        } => BRhs::Typecase {
            scrut,
            int: Box::new(exp(*int, changed)),
            float: Box::new(exp(*float, changed)),
            ptr: Box::new(exp(*ptr, changed)),
            con,
        },
        BRhs::Handle { body, var, handler } => BRhs::Handle {
            body: Box::new(exp(*body, changed)),
            var,
            handler: Box::new(exp(*handler, changed)),
        },
        other => other,
    }
}
