//! Argument flattening (paper §3.2), realized as a worker/wrapper
//! transformation on Bform: a function whose single parameter is a
//! (small) record gets a multi-argument *worker* taking the components
//! "in registers"; the original name becomes a tiny wrapper that
//! unpacks the record and is inlined away at every direct call site —
//! after which the record construction at the caller constant-folds
//! into oblivion (no allocation, no memory traffic). Call sites where
//! the function's type is hidden behind a constructor variable keep
//! the wrapper's universal one-record convention, so the flattened
//! convention never leaks into generic positions.

use til_bform::{Atom, BExp, BFun, BProgram, BRhs, BSwitch};
use til_common::{Var, VarSupply};
use til_lmli::con::Con;

/// Maximum record size that is flattened.
pub const MAX_FLAT: usize = 9;

/// Runs one flattening round; returns true if any function split.
pub fn flatten_args(p: &mut BProgram, vs: &mut VarSupply) -> bool {
    let mut changed = false;
    let body = std::mem::replace(&mut p.body, BExp::Ret(Atom::Int(0)));
    p.body = exp(body, vs, &mut changed);
    changed
}

fn exp(e: BExp, vs: &mut VarSupply, changed: &mut bool) -> BExp {
    match e {
        BExp::Ret(a) => BExp::Ret(a),
        BExp::Let { var, mut rhs, body } => {
            rec_rhs(&mut rhs, vs, changed);
            BExp::Let {
                var,
                rhs,
                body: Box::new(exp(*body, vs, changed)),
            }
        }
        BExp::Fix { funs, body } => {
            let mut out = Vec::with_capacity(funs.len());
            for mut f in funs {
                let b = std::mem::replace(&mut f.body, BExp::Ret(Atom::Int(0)));
                f.body = exp(b, vs, changed);
                match try_flatten(&f, vs) {
                    Some((worker, wrapper)) => {
                        *changed = true;
                        out.push(worker);
                        out.push(wrapper);
                    }
                    None => out.push(f),
                }
            }
            BExp::Fix {
                funs: out,
                body: Box::new(exp(*body, vs, changed)),
            }
        }
    }
}

/// Is this body already a flattening wrapper (selects + one call)?
fn is_wrapper_shape(e: &BExp) -> bool {
    // let s0 = #0 p ... let r = call(...) in ret r
    let mut cur = e;
    let mut saw_call = false;
    loop {
        match cur {
            BExp::Let { rhs, body, .. } => {
                match rhs {
                    BRhs::Select(..) => {}
                    BRhs::App { .. } if !saw_call => saw_call = true,
                    _ => return false,
                }
                cur = body;
            }
            BExp::Ret(_) => return saw_call,
            BExp::Fix { .. } => return false,
        }
    }
}

fn try_flatten(f: &BFun, vs: &mut VarSupply) -> Option<(BFun, BFun)> {
    if f.params.len() != 1 {
        return None;
    }
    let (p, pcon) = &f.params[0];
    let Con::Record(fields) = pcon else {
        return None;
    };
    if fields.is_empty() || fields.len() > MAX_FLAT {
        return None;
    }
    if is_wrapper_shape(&f.body) {
        return None;
    }
    // Worker: takes the components; rebuilds the record for the body
    // (constant folding erases it when only selections remain).
    let worker_var = vs.fresh_named(&format!("{}_flat", f.var));
    let wparams: Vec<(Var, Con)> = fields
        .iter()
        .enumerate()
        .map(|(i, c)| (vs.fresh_named(&format!("c{i}")), c.clone()))
        .collect();
    let rebuild = BExp::Let {
        var: *p,
        rhs: BRhs::Record(wparams.iter().map(|(v, _)| Atom::Var(*v)).collect()),
        body: Box::new(f.body.clone()),
    };
    let worker = BFun {
        var: worker_var,
        cparams: f.cparams.clone(),
        params: wparams,
        ret: f.ret.clone(),
        body: rebuild,
    };
    // Wrapper: original name/type; unpacks and calls the worker.
    let wp = vs.rename(*p);
    let sels: Vec<Var> = fields
        .iter()
        .enumerate()
        .map(|(i, _)| vs.fresh_named(&format!("s{i}")))
        .collect();
    let r = vs.fresh_named("r");
    let mut body = BExp::Let {
        var: r,
        rhs: BRhs::App {
            f: Atom::Var(worker_var),
            cargs: f.cparams.iter().map(|c| Con::Var(*c)).collect(),
            args: sels.iter().map(|v| Atom::Var(*v)).collect(),
        },
        body: Box::new(BExp::Ret(Atom::Var(r))),
    };
    for (i, s) in sels.iter().enumerate().rev() {
        body = BExp::Let {
            var: *s,
            rhs: BRhs::Select(i, Atom::Var(wp)),
            body: Box::new(body),
        };
    }
    let wrapper = BFun {
        var: f.var,
        cparams: f.cparams.clone(),
        params: vec![(wp, pcon.clone())],
        ret: f.ret.clone(),
        body,
    };
    Some((worker, wrapper))
}

fn rec_rhs(r: &mut BRhs, vs: &mut VarSupply, changed: &mut bool) {
    let subs: Vec<&mut BExp> = match r {
        BRhs::Switch(sw) => match sw {
            BSwitch::Int { arms, default, .. } => arms
                .iter_mut()
                .map(|(_, a)| a)
                .chain(std::iter::once(&mut **default))
                .collect(),
            BSwitch::Data { arms, default, .. } => arms
                .iter_mut()
                .map(|(_, _, a)| a)
                .chain(default.iter_mut().map(|d| &mut **d))
                .collect(),
            BSwitch::Str { arms, default, .. } => arms
                .iter_mut()
                .map(|(_, a)| a)
                .chain(std::iter::once(&mut **default))
                .collect(),
            BSwitch::Exn { arms, default, .. } => arms
                .iter_mut()
                .map(|(_, _, a)| a)
                .chain(std::iter::once(&mut **default))
                .collect(),
        },
        BRhs::Typecase {
            int, float, ptr, ..
        } => vec![int, float, ptr],
        BRhs::Handle { body, handler, .. } => vec![body, handler],
        _ => vec![],
    };
    for sub in subs {
        let owned = std::mem::replace(sub, BExp::Ret(Atom::Int(0)));
        *sub = exp(owned, vs, changed);
    }
}
