//! Invariant removal and constant hoisting (paper §3.3).
//!
//! *Invariant removal* assigns every let binding the nesting depth of
//! its nearest enclosing function; a pure binding whose free variables
//! all live at strictly shallower depths moves out of the function (one
//! level per run; the pass is iterated). Only genuinely pure
//! right-hand sides move — an expression that could raise must not be
//! executed on iterations that never reach it.
//!
//! *Constant hoisting* moves bindings built entirely from constants
//! (string literals, float literals, records/constructors of constants)
//! to the top of the program, so they are allocated once.

use std::collections::HashMap;
use til_bform::{Atom, BExp, BFun, BProgram, BRhs, BSwitch};
use til_common::Var;
use til_lmli::con::{CVar, Con};

/// Runs one level of invariant removal; returns true if anything moved.
pub fn invariant_removal(p: &mut BProgram) -> bool {
    let mut cx = Inv {
        depth_of: HashMap::new(),
        cdepth_of: HashMap::new(),
        changed: false,
    };
    let body = std::mem::replace(&mut p.body, BExp::Ret(Atom::Int(0)));
    let (body, leftover) = cx.exp(body, 0);
    debug_assert!(leftover.is_empty(), "depth-0 bindings cannot move");
    p.body = prepend(leftover, body);
    cx.changed
}

struct Inv {
    depth_of: HashMap<Var, u32>,
    cdepth_of: HashMap<CVar, u32>,
    changed: bool,
}

type Hoisted = Vec<(Var, BRhs)>;

fn prepend(hoisted: Hoisted, mut e: BExp) -> BExp {
    for (var, rhs) in hoisted.into_iter().rev() {
        e = BExp::Let {
            var,
            rhs,
            body: Box::new(e),
        };
    }
    e
}

impl Inv {
    /// Processes `e` at function-nesting `depth`; returns the rewritten
    /// expression and the bindings that want to move *above* the
    /// enclosing function (i.e. their operands are all at depth <
    /// `depth`).
    fn exp(&mut self, e: BExp, depth: u32) -> (BExp, Hoisted) {
        match e {
            BExp::Ret(a) => (BExp::Ret(a), vec![]),
            BExp::Let { var, rhs, body } => {
                self.depth_of.insert(var, depth);
                let rhs = self.rhs(rhs, depth);
                let (body, mut out) = self.exp(*body, depth);
                let movable = depth > 0
                    && rhs.is_pure(&|_| false)
                    && !has_nested(&rhs)
                    && self.max_operand_depth(&rhs) < depth;
                if movable {
                    self.changed = true;
                    self.depth_of.insert(var, depth - 1);
                    let mut all = vec![(var, rhs)];
                    all.extend(out);
                    (body, all)
                } else {
                    (
                        BExp::Let {
                            var,
                            rhs,
                            body: Box::new(body),
                        },
                        std::mem::take(&mut out),
                    )
                }
            }
            BExp::Fix { funs, body } => {
                // Function bodies run at depth + 1; bindings they expel
                // land immediately before this fix.
                for f in &funs {
                    self.depth_of.insert(f.var, depth);
                }
                let mut landed: Hoisted = Vec::new();
                let funs: Vec<BFun> = funs
                    .into_iter()
                    .map(|mut f| {
                        for (v, _) in &f.params {
                            self.depth_of.insert(*v, depth + 1);
                        }
                        for c in &f.cparams {
                            self.cdepth_of.insert(*c, depth + 1);
                        }
                        let b = std::mem::replace(&mut f.body, BExp::Ret(Atom::Int(0)));
                        let (b, hoisted) = self.exp(b, depth + 1);
                        landed.extend(hoisted);
                        f.body = b;
                        f
                    })
                    .collect();
                let (body, mut out) = self.exp(*body, depth);
                // Bindings landing here may themselves be movable
                // further out; re-examine against this depth.
                let mut stay: Hoisted = Vec::new();
                for (v, r) in landed {
                    if depth > 0 && self.max_operand_depth(&r) < depth {
                        self.depth_of.insert(v, depth - 1);
                        out.push((v, r));
                    } else {
                        self.depth_of.insert(v, depth);
                        stay.push((v, r));
                    }
                }
                (
                    prepend(
                        stay,
                        BExp::Fix {
                            funs,
                            body: Box::new(body),
                        },
                    ),
                    out,
                )
            }
        }
    }

    fn rhs(&mut self, r: BRhs, depth: u32) -> BRhs {
        // Recurse into nested expressions; bindings inside arms may
        // move out of the *function*, not merely out of the arm, so
        // they propagate via the same mechanism only when the arm's
        // chain is at function level. For simplicity, nested arms keep
        // their bindings (they can still move on later iterations once
        // copy-propagation exposes them at the spine).
        match r {
            BRhs::Switch(sw) => BRhs::Switch(match sw {
                BSwitch::Int {
                    scrut,
                    arms,
                    default,
                    con,
                } => BSwitch::Int {
                    scrut,
                    arms: arms
                        .into_iter()
                        .map(|(k, a)| (k, self.arm(a, depth)))
                        .collect(),
                    default: Box::new(self.arm(*default, depth)),
                    con,
                },
                BSwitch::Data {
                    scrut,
                    data,
                    cargs,
                    arms,
                    default,
                    con,
                } => BSwitch::Data {
                    scrut,
                    data,
                    cargs,
                    arms: arms
                        .into_iter()
                        .map(|(t, binders, a)| {
                            for b in &binders {
                                self.depth_of.insert(*b, depth);
                            }
                            (t, binders, self.arm(a, depth))
                        })
                        .collect(),
                    default: default.map(|d| Box::new(self.arm(*d, depth))),
                    con,
                },
                BSwitch::Str {
                    scrut,
                    arms,
                    default,
                    con,
                } => BSwitch::Str {
                    scrut,
                    arms: arms
                        .into_iter()
                        .map(|(k, a)| (k, self.arm(a, depth)))
                        .collect(),
                    default: Box::new(self.arm(*default, depth)),
                    con,
                },
                BSwitch::Exn {
                    scrut,
                    arms,
                    default,
                    con,
                } => BSwitch::Exn {
                    scrut,
                    arms: arms
                        .into_iter()
                        .map(|(id, b, a)| {
                            if let Some(bv) = b {
                                self.depth_of.insert(bv, depth);
                            }
                            (id, b, self.arm(a, depth))
                        })
                        .collect(),
                    default: Box::new(self.arm(*default, depth)),
                    con,
                },
            }),
            BRhs::Typecase {
                scrut,
                int,
                float,
                ptr,
                con,
            } => BRhs::Typecase {
                scrut,
                int: Box::new(self.arm(*int, depth)),
                float: Box::new(self.arm(*float, depth)),
                ptr: Box::new(self.arm(*ptr, depth)),
                con,
            },
            BRhs::Handle { body, var, handler } => {
                self.depth_of.insert(var, depth);
                BRhs::Handle {
                    body: Box::new(self.arm(*body, depth)),
                    var,
                    handler: Box::new(self.arm(*handler, depth)),
                }
            }
            other => other,
        }
    }

    fn arm(&mut self, e: BExp, depth: u32) -> BExp {
        let (e, hoisted) = self.exp(e, depth);
        // Arm-level escapees re-attach at the arm head; they will leave
        // through the spine on the next iteration if still invariant.
        prepend(hoisted, e)
    }

    fn max_operand_depth(&self, r: &BRhs) -> u32 {
        let mut max = 0;
        for_atoms(r, &mut |a| {
            if let Atom::Var(v) = a {
                max = max.max(self.depth_of.get(v).copied().unwrap_or(u32::MAX));
            }
        });
        // Constructor variables pin the binding too: a `nil` at an
        // enclosing function's type parameter cannot leave it.
        for_cons(r, &mut |c| {
            let mut free = Vec::new();
            c.free_cvars(&mut free);
            for cv in free {
                max = max.max(self.cdepth_of.get(&cv).copied().unwrap_or(u32::MAX));
            }
        });
        max
    }
}

fn for_cons(r: &BRhs, f: &mut impl FnMut(&Con)) {
    match r {
        BRhs::Con { cargs, .. } | BRhs::Prim { cargs, .. } | BRhs::App { cargs, .. } => {
            cargs.iter().for_each(f)
        }
        BRhs::Raise { con, .. } => f(con),
        _ => {}
    }
}

fn has_nested(r: &BRhs) -> bool {
    matches!(
        r,
        BRhs::Switch(_) | BRhs::Typecase { .. } | BRhs::Handle { .. }
    )
}

fn for_atoms(r: &BRhs, f: &mut impl FnMut(&Atom)) {
    match r {
        BRhs::Atom(a) | BRhs::Select(_, a) | BRhs::Raise { exn: a, .. } => f(a),
        BRhs::Float(_) | BRhs::Str(_) => {}
        BRhs::Record(atoms) | BRhs::Con { args: atoms, .. } => atoms.iter().for_each(f),
        BRhs::ExnCon { arg, .. } => {
            if let Some(a) = arg {
                f(a)
            }
        }
        BRhs::Prim { args, .. } => args.iter().for_each(f),
        BRhs::App { f: g, args, .. } => {
            f(g);
            args.iter().for_each(f);
        }
        BRhs::Switch(_) | BRhs::Typecase { .. } | BRhs::Handle { .. } => {}
    }
}

/// Hoists constant bindings to the top of the program (paper §3.3
/// "hoisting").
pub fn hoist_constants(p: &mut BProgram) -> bool {
    let mut cx = Hoist {
        constant: HashMap::new(),
        hoisted: Vec::new(),
        changed: false,
    };
    let body = std::mem::replace(&mut p.body, BExp::Ret(Atom::Int(0)));
    let body = cx.exp(body, true);
    p.body = prepend(cx.hoisted, body);
    cx.changed
}

struct Hoist {
    constant: HashMap<Var, ()>,
    hoisted: Hoisted,
    changed: bool,
}

impl Hoist {
    fn is_const_atom(&self, a: &Atom) -> bool {
        match a {
            Atom::Int(_) => true,
            Atom::Var(v) => self.constant.contains_key(v),
        }
    }

    fn is_const_rhs(&self, r: &BRhs) -> bool {
        match r {
            BRhs::Float(_) | BRhs::Str(_) => true,
            BRhs::Record(atoms) => atoms.iter().all(|a| self.is_const_atom(a)),
            BRhs::Con { args, cargs, .. } => {
                args.iter().all(|a| self.is_const_atom(a))
                    && cargs.iter().all(|c| {
                        let mut free = Vec::new();
                        c.free_cvars(&mut free);
                        free.is_empty()
                    })
            }
            _ => false,
        }
    }

    fn exp(&mut self, e: BExp, at_top: bool) -> BExp {
        match e {
            BExp::Ret(a) => BExp::Ret(a),
            BExp::Let { var, rhs, body } => {
                let rhs = self.rhs(rhs);
                if self.is_const_rhs(&rhs) {
                    self.constant.insert(var, ());
                    if !at_top {
                        self.changed = true;
                    }
                    self.hoisted.push((var, rhs));
                    return self.exp(*body, at_top);
                }
                BExp::Let {
                    var,
                    rhs,
                    body: Box::new(self.exp(*body, at_top)),
                }
            }
            BExp::Fix { funs, body } => BExp::Fix {
                funs: funs
                    .into_iter()
                    .map(|mut f| {
                        let b = std::mem::replace(&mut f.body, BExp::Ret(Atom::Int(0)));
                        f.body = self.exp(b, false);
                        f
                    })
                    .collect(),
                body: Box::new(self.exp(*body, at_top)),
            },
        }
    }

    fn rhs(&mut self, r: BRhs) -> BRhs {
        match r {
            BRhs::Switch(sw) => BRhs::Switch(match sw {
                BSwitch::Int {
                    scrut,
                    arms,
                    default,
                    con,
                } => BSwitch::Int {
                    scrut,
                    arms: arms
                        .into_iter()
                        .map(|(k, a)| (k, self.exp(a, false)))
                        .collect(),
                    default: Box::new(self.exp(*default, false)),
                    con,
                },
                BSwitch::Data {
                    scrut,
                    data,
                    cargs,
                    arms,
                    default,
                    con,
                } => BSwitch::Data {
                    scrut,
                    data,
                    cargs,
                    arms: arms
                        .into_iter()
                        .map(|(t, b, a)| (t, b, self.exp(a, false)))
                        .collect(),
                    default: default.map(|d| Box::new(self.exp(*d, false))),
                    con,
                },
                BSwitch::Str {
                    scrut,
                    arms,
                    default,
                    con,
                } => BSwitch::Str {
                    scrut,
                    arms: arms
                        .into_iter()
                        .map(|(k, a)| (k, self.exp(a, false)))
                        .collect(),
                    default: Box::new(self.exp(*default, false)),
                    con,
                },
                BSwitch::Exn {
                    scrut,
                    arms,
                    default,
                    con,
                } => BSwitch::Exn {
                    scrut,
                    arms: arms
                        .into_iter()
                        .map(|(id, b, a)| (id, b, self.exp(a, false)))
                        .collect(),
                    default: Box::new(self.exp(*default, false)),
                    con,
                },
            }),
            BRhs::Typecase {
                scrut,
                int,
                float,
                ptr,
                con,
            } => BRhs::Typecase {
                scrut,
                int: Box::new(self.exp(*int, false)),
                float: Box::new(self.exp(*float, false)),
                ptr: Box::new(self.exp(*ptr, false)),
                con,
            },
            BRhs::Handle { body, var, handler } => BRhs::Handle {
                body: Box::new(self.exp(*body, false)),
                var,
                handler: Box::new(self.exp(*handler, false)),
            },
            other => other,
        }
    }
}
