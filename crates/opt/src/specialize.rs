//! Polymorphic-instance specialization.
//!
//! Inlining and uncurrying eliminate non-recursive polymorphic
//! functions, but a *recursive* polymorphic function (`map`, `foldl`)
//! is never directly inlined (§3.3), so its ground-type applications
//! would keep paying the intensional-polymorphism cost. This pass
//! clones a monomorphic instance of a polymorphic `fix` nest per
//! distinct ground constructor instantiation and redirects those call
//! sites, which — together with inlining — reproduces the paper's
//! observation that whole-program optimization removed *all*
//! polymorphic functions from the benchmark suite (§5.1). The
//! intensional-polymorphism machinery remains fully functional for
//! programs where instantiations stay unknown.

use crate::clone::{alpha_clone, subst_cons_exp};
use std::collections::HashMap;
use til_bform::{Atom, BExp, BFun, BProgram, BRhs, BSwitch};
use til_common::{Var, VarSupply};
use til_lmli::con::{CVar, Con};

/// Runs one specialization round; returns true if any instance was
/// created.
pub fn specialize(p: &mut BProgram, vs: &mut VarSupply) -> bool {
    // Phase 1: find ground applications of polymorphic functions.
    let mut poly: HashMap<Var, ()> = HashMap::new();
    collect_poly(&p.body, &mut poly);
    if poly.is_empty() {
        return false;
    }
    let mut requests: HashMap<(Var, String), Vec<Con>> = HashMap::new();
    collect_requests(&p.body, &poly, &mut requests);
    if requests.is_empty() {
        return false;
    }
    // Phase 2: create instances at the defining fixes and redirect
    // call sites.
    let mut instances: HashMap<(Var, String), Var> = HashMap::new();
    let body = std::mem::replace(&mut p.body, BExp::Ret(Atom::Int(0)));
    let body = rewrite_fixes(body, &requests, &mut instances, vs);
    p.body = redirect_calls(body, &instances);
    !instances.is_empty()
}

fn collect_poly(e: &BExp, out: &mut HashMap<Var, ()>) {
    walk_exps(e, &mut |e2| {
        if let BExp::Fix { funs, .. } = e2 {
            for f in funs {
                if !f.cparams.is_empty() {
                    out.insert(f.var, ());
                }
            }
        }
    });
}

fn ground(cargs: &[Con]) -> bool {
    cargs.iter().all(|c| {
        let mut free = Vec::new();
        c.free_cvars(&mut free);
        free.is_empty()
    })
}

fn key_of(cargs: &[Con]) -> String {
    format!("{cargs:?}")
}

fn collect_requests(
    e: &BExp,
    poly: &HashMap<Var, ()>,
    out: &mut HashMap<(Var, String), Vec<Con>>,
) {
    walk_rhss(e, &mut |r| {
        if let BRhs::App { f: Atom::Var(fv), cargs, .. } = r {
            if !cargs.is_empty() && poly.contains_key(fv) && ground(cargs) {
                out.entry((*fv, key_of(cargs)))
                    .or_insert_with(|| cargs.clone());
            }
        }
    });
}

/// At every `Fix` containing requested polymorphic functions, append
/// specialized nests.
fn rewrite_fixes(
    e: BExp,
    requests: &HashMap<(Var, String), Vec<Con>>,
    instances: &mut HashMap<(Var, String), Var>,
    vs: &mut VarSupply,
) -> BExp {
    match e {
        BExp::Ret(a) => BExp::Ret(a),
        BExp::Let { var, rhs, body } => BExp::Let {
            var,
            rhs: rewrite_rhs(rhs, requests, instances, vs),
            body: Box::new(rewrite_fixes(*body, requests, instances, vs)),
        },
        BExp::Fix { funs, body } => {
            // Recurse into bodies first (inner fixes may also satisfy
            // requests).
            let funs: Vec<BFun> = funs
                .into_iter()
                .map(|mut f| {
                    let b = std::mem::replace(&mut f.body, BExp::Ret(Atom::Int(0)));
                    f.body = rewrite_fixes(b, requests, instances, vs);
                    f
                })
                .collect();
            // Which requests target this nest?
            let nest_vars: Vec<Var> = funs.iter().map(|f| f.var).collect();
            let mut keys: Vec<(Var, String)> = requests
                .keys()
                .filter(|(v, _)| nest_vars.contains(v))
                .cloned()
                .collect();
            keys.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
            let mut body = rewrite_fixes(*body, requests, instances, vs);
            for key in keys {
                if instances.contains_key(&key) {
                    continue;
                }
                let cargs = &requests[&key];
                // Clone the whole nest at this instantiation so
                // mutually recursive calls stay within the instance.
                let mut env: HashMap<Var, Var> = HashMap::new();
                let mut spec_funs: Vec<BFun> = Vec::new();
                for f in &funs {
                    let nv = vs.rename(f.var);
                    env.insert(f.var, nv);
                }
                for f in &funs {
                    let cmap: HashMap<CVar, Con> = f
                        .cparams
                        .iter()
                        .copied()
                        .zip(cargs.iter().cloned())
                        .collect();
                    let params: Vec<(Var, Con)> = f
                        .params
                        .iter()
                        .map(|(v, c)| {
                            let nv = vs.rename(*v);
                            env.insert(*v, nv);
                            (nv, c.subst(&cmap))
                        })
                        .collect();
                    let mut b = alpha_clone(&f.body, &mut env, vs);
                    subst_cons_exp(&mut b, &cmap);
                    spec_funs.push(BFun {
                        var: env[&f.var],
                        cparams: vec![],
                        params,
                        ret: f.ret.subst(&cmap),
                        body: b,
                    });
                }
                // Intra-instance recursive calls must drop their cargs
                // (the instance is monomorphic).
                let spec_vars: Vec<Var> = spec_funs.iter().map(|f| f.var).collect();
                for f in &mut spec_funs {
                    clear_cargs(&mut f.body, &spec_vars);
                }
                for f in &funs {
                    instances.insert((f.var, key.1.clone()), env[&f.var]);
                }
                body = BExp::Fix {
                    funs: spec_funs,
                    body: Box::new(body),
                };
            }
            BExp::Fix {
                funs,
                body: Box::new(body),
            }
        }
    }
}

fn rewrite_rhs(
    r: BRhs,
    requests: &HashMap<(Var, String), Vec<Con>>,
    instances: &mut HashMap<(Var, String), Var>,
    vs: &mut VarSupply,
) -> BRhs {
    match r {
        BRhs::Switch(sw) => BRhs::Switch(match sw {
            BSwitch::Int {
                scrut,
                arms,
                default,
                con,
            } => BSwitch::Int {
                scrut,
                arms: arms
                    .into_iter()
                    .map(|(k, a)| (k, rewrite_fixes(a, requests, instances, vs)))
                    .collect(),
                default: Box::new(rewrite_fixes(*default, requests, instances, vs)),
                con,
            },
            BSwitch::Data {
                scrut,
                data,
                cargs,
                arms,
                default,
                con,
            } => BSwitch::Data {
                scrut,
                data,
                cargs,
                arms: arms
                    .into_iter()
                    .map(|(t, b, a)| (t, b, rewrite_fixes(a, requests, instances, vs)))
                    .collect(),
                default: default.map(|d| Box::new(rewrite_fixes(*d, requests, instances, vs))),
                con,
            },
            BSwitch::Str {
                scrut,
                arms,
                default,
                con,
            } => BSwitch::Str {
                scrut,
                arms: arms
                    .into_iter()
                    .map(|(k, a)| (k, rewrite_fixes(a, requests, instances, vs)))
                    .collect(),
                default: Box::new(rewrite_fixes(*default, requests, instances, vs)),
                con,
            },
            BSwitch::Exn {
                scrut,
                arms,
                default,
                con,
            } => BSwitch::Exn {
                scrut,
                arms: arms
                    .into_iter()
                    .map(|(id, b, a)| (id, b, rewrite_fixes(a, requests, instances, vs)))
                    .collect(),
                default: Box::new(rewrite_fixes(*default, requests, instances, vs)),
                con,
            },
        }),
        BRhs::Typecase {
            scrut,
            int,
            float,
            ptr,
            con,
        } => BRhs::Typecase {
            scrut,
            int: Box::new(rewrite_fixes(*int, requests, instances, vs)),
            float: Box::new(rewrite_fixes(*float, requests, instances, vs)),
            ptr: Box::new(rewrite_fixes(*ptr, requests, instances, vs)),
            con,
        },
        BRhs::Handle { body, var, handler } => BRhs::Handle {
            body: Box::new(rewrite_fixes(*body, requests, instances, vs)),
            var,
            handler: Box::new(rewrite_fixes(*handler, requests, instances, vs)),
        },
        other => other,
    }
}

/// Redirects ground applications to their instances.
fn redirect_calls(mut e: BExp, instances: &HashMap<(Var, String), Var>) -> BExp {
    map_rhss(&mut e, &mut |r| {
        if let BRhs::App { f, cargs, .. } = r {
            if let Atom::Var(fv) = f {
                if !cargs.is_empty() && ground(cargs) {
                    if let Some(spec) = instances.get(&(*fv, key_of(cargs))) {
                        *f = Atom::Var(*spec);
                        cargs.clear();
                    }
                }
            }
        }
    });
    e
}

/// Clears cargs on calls to nest-internal functions of an instance.
fn clear_cargs(e: &mut BExp, nest: &[Var]) {
    map_rhss(e, &mut |r| {
        if let BRhs::App { f: Atom::Var(fv), cargs, .. } = r {
            if nest.contains(fv) {
                cargs.clear();
            }
        }
    });
}

// ---------------------------------------------------------------- walks

fn walk_exps(e: &BExp, f: &mut impl FnMut(&BExp)) {
    f(e);
    match e {
        BExp::Ret(_) => {}
        BExp::Let { rhs, body, .. } => {
            for sub in rhs_exps(rhs) {
                walk_exps(sub, f);
            }
            walk_exps(body, f);
        }
        BExp::Fix { funs, body } => {
            for fun in funs {
                walk_exps(&fun.body, f);
            }
            walk_exps(body, f);
        }
    }
}

fn walk_rhss(e: &BExp, f: &mut impl FnMut(&BRhs)) {
    match e {
        BExp::Ret(_) => {}
        BExp::Let { rhs, body, .. } => {
            f(rhs);
            for sub in rhs_exps(rhs) {
                walk_rhss(sub, f);
            }
            walk_rhss(body, f);
        }
        BExp::Fix { funs, body } => {
            for fun in funs {
                walk_rhss(&fun.body, f);
            }
            walk_rhss(body, f);
        }
    }
}

fn rhs_exps(r: &BRhs) -> Vec<&BExp> {
    match r {
        BRhs::Switch(sw) => match sw {
            BSwitch::Int { arms, default, .. } => arms
                .iter()
                .map(|(_, a)| a)
                .chain(std::iter::once(&**default))
                .collect(),
            BSwitch::Data { arms, default, .. } => arms
                .iter()
                .map(|(_, _, a)| a)
                .chain(default.iter().map(|d| &**d))
                .collect(),
            BSwitch::Str { arms, default, .. } => arms
                .iter()
                .map(|(_, a)| a)
                .chain(std::iter::once(&**default))
                .collect(),
            BSwitch::Exn { arms, default, .. } => arms
                .iter()
                .map(|(_, _, a)| a)
                .chain(std::iter::once(&**default))
                .collect(),
        },
        BRhs::Typecase {
            int, float, ptr, ..
        } => vec![int, float, ptr],
        BRhs::Handle { body, handler, .. } => vec![body, handler],
        _ => vec![],
    }
}

/// Applies `f` to every RHS in the tree, mutably.
pub fn map_rhss(e: &mut BExp, f: &mut impl FnMut(&mut BRhs)) {
    match e {
        BExp::Ret(_) => {}
        BExp::Let { rhs, body, .. } => {
            f(rhs);
            for sub in rhs_exps_mut(rhs) {
                map_rhss(sub, f);
            }
            map_rhss(body, f);
        }
        BExp::Fix { funs, body } => {
            for fun in funs {
                map_rhss(&mut fun.body, f);
            }
            map_rhss(body, f);
        }
    }
}

fn rhs_exps_mut(r: &mut BRhs) -> Vec<&mut BExp> {
    match r {
        BRhs::Switch(sw) => match sw {
            BSwitch::Int { arms, default, .. } => arms
                .iter_mut()
                .map(|(_, a)| a)
                .chain(std::iter::once(&mut **default))
                .collect(),
            BSwitch::Data { arms, default, .. } => arms
                .iter_mut()
                .map(|(_, _, a)| a)
                .chain(default.iter_mut().map(|d| &mut **d))
                .collect(),
            BSwitch::Str { arms, default, .. } => arms
                .iter_mut()
                .map(|(_, a)| a)
                .chain(std::iter::once(&mut **default))
                .collect(),
            BSwitch::Exn { arms, default, .. } => arms
                .iter_mut()
                .map(|(_, _, a)| a)
                .chain(std::iter::once(&mut **default))
                .collect(),
        },
        BRhs::Typecase {
            int, float, ptr, ..
        } => vec![int, float, ptr],
        BRhs::Handle { body, handler, .. } => vec![body, handler],
        _ => vec![],
    }
}

/// Counts remaining polymorphic functions (the paper's §5.1 claim is
/// that this reaches zero on the whole benchmark suite).
pub fn count_polymorphic(e: &BExp) -> usize {
    let mut n = 0;
    walk_exps(e, &mut |e2| {
        if let BExp::Fix { funs, .. } = e2 {
            n += funs.iter().filter(|f| !f.cparams.is_empty()).count();
        }
    });
    n
}

/// Counts typecase expressions remaining in the program.
pub fn count_typecases(e: &BExp) -> usize {
    let mut n = 0;
    walk_rhss(e, &mut |r| {
        if matches!(r, BRhs::Typecase { .. }) {
            n += 1;
        }
    });
    n
}
