//! Switch-continuation inlining (paper §3.3): when all but one arm of
//! a switch raises an exception, the code *after* the switch is moved
//! into the non-raising arm, making its bindings visible to CSE and
//! the other reduction optimizations — exactly the paper's
//! `let x = if y then e2 else raise e3 in e4` example.

use crate::clone::splice_ret;
use til_bform::{Atom, BExp, BProgram, BRhs, BSwitch};
use til_common::VarSupply;
use til_lmli::con::Con;

/// Runs one round; returns true if any continuation moved.
pub fn inline_switch_continuations(p: &mut BProgram, vs: &mut VarSupply) -> bool {
    let mut changed = false;
    let body = std::mem::replace(&mut p.body, BExp::Ret(Atom::Int(0)));
    let con = p.con.clone();
    p.body = exp(body, &con, &mut changed, vs);
    changed
}

/// Does this arm do nothing but (eventually, along its spine) raise?
fn arm_raises(e: &BExp) -> bool {
    match e {
        BExp::Let { rhs, body, .. } => matches!(rhs, BRhs::Raise { .. }) || arm_raises(body),
        BExp::Fix { body, .. } => arm_raises(body),
        BExp::Ret(_) => false,
    }
}

/// Rewrites every spine-level `Raise` result type to `con`.
fn retype_raises(e: &mut BExp, con: &Con) {
    match e {
        BExp::Let { rhs, body, .. } => {
            if let BRhs::Raise { con: c, .. } = rhs {
                *c = con.clone();
            }
            retype_raises(body, con);
        }
        BExp::Fix { body, .. } => retype_raises(body, con),
        BExp::Ret(_) => {}
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Slot {
    Arm(usize),
    Default,
}

/// If exactly one arm of an int/data switch does not raise (and at
/// least one does), identify it.
fn live_slot(sw: &BSwitch) -> Option<Slot> {
    let (mut live, mut raising) = (Vec::new(), 0usize);
    match sw {
        BSwitch::Int { arms, default, .. } => {
            for (i, (_, a)) in arms.iter().enumerate() {
                if arm_raises(a) {
                    raising += 1;
                } else {
                    live.push(Slot::Arm(i));
                }
            }
            if arm_raises(default) {
                raising += 1;
            } else {
                live.push(Slot::Default);
            }
        }
        BSwitch::Data { arms, default, .. } => {
            for (i, (_, _, a)) in arms.iter().enumerate() {
                if arm_raises(a) {
                    raising += 1;
                } else {
                    live.push(Slot::Arm(i));
                }
            }
            if let Some(d) = default {
                if arm_raises(d) {
                    raising += 1;
                } else {
                    live.push(Slot::Default);
                }
            }
        }
        _ => return None,
    }
    if live.len() == 1 && raising >= 1 {
        Some(live[0])
    } else {
        None
    }
}

fn with_live_arm(sw: &mut BSwitch, slot: Slot, f: impl FnOnce(BExp) -> BExp) {
    let placeholder = BExp::Ret(Atom::Int(0));
    match (sw, slot) {
        (BSwitch::Int { arms, .. }, Slot::Arm(i)) => {
            let a = std::mem::replace(&mut arms[i].1, placeholder);
            arms[i].1 = f(a);
        }
        (BSwitch::Int { default, .. }, Slot::Default) => {
            let a = std::mem::replace(&mut **default, placeholder);
            **default = f(a);
        }
        (BSwitch::Data { arms, .. }, Slot::Arm(i)) => {
            let a = std::mem::replace(&mut arms[i].2, placeholder);
            arms[i].2 = f(a);
        }
        (BSwitch::Data { default, .. }, Slot::Default) => {
            let d = default.as_mut().expect("default exists");
            let a = std::mem::replace(&mut **d, placeholder);
            **d = f(a);
        }
        _ => unreachable!(),
    }
}

fn retype_all(sw: &mut BSwitch, con: &Con, live: Slot) {
    match sw {
        BSwitch::Int {
            arms,
            default,
            con: c,
            ..
        } => {
            *c = con.clone();
            for (i, (_, a)) in arms.iter_mut().enumerate() {
                if Slot::Arm(i) != live {
                    retype_raises(a, con);
                }
            }
            if Slot::Default != live {
                retype_raises(default, con);
            }
        }
        BSwitch::Data {
            arms,
            default,
            con: c,
            ..
        } => {
            *c = con.clone();
            for (i, (_, _, a)) in arms.iter_mut().enumerate() {
                if Slot::Arm(i) != live {
                    retype_raises(a, con);
                }
            }
            if let Some(d) = default {
                if Slot::Default != live {
                    retype_raises(d, con);
                }
            }
        }
        _ => {}
    }
}

fn exp(e: BExp, result_con: &Con, changed: &mut bool, vs: &mut VarSupply) -> BExp {
    match e {
        BExp::Ret(a) => BExp::Ret(a),
        BExp::Fix { funs, body } => BExp::Fix {
            funs: funs
                .into_iter()
                .map(|mut f| {
                    let b = std::mem::replace(&mut f.body, BExp::Ret(Atom::Int(0)));
                    let ret = f.ret.clone();
                    f.body = exp(b, &ret, changed, vs);
                    f
                })
                .collect(),
            body: Box::new(exp(*body, result_con, changed, vs)),
        },
        BExp::Let { var, rhs, body } => {
            let rhs = rhs_rec(rhs, changed, vs);
            let body = exp(*body, result_con, changed, vs);
            if let BRhs::Switch(mut sw) = rhs {
                if let Some(slot) = live_slot(&sw) {
                    *changed = true;
                    let mut moved = Some(body);
                    with_live_arm(&mut sw, slot, |arm| {
                        let cont = moved.take().expect("single live arm");
                        splice_ret(arm, &mut {
                            let mut cont = Some(cont);
                            move |a| BExp::Let {
                                var,
                                rhs: BRhs::Atom(a),
                                body: Box::new(
                                    cont.take().expect("one spine-level ret in an arm"),
                                ),
                            }
                        })
                    });
                    retype_all(&mut sw, result_con, slot);
                    let t = vs.fresh_named("swc");
                    return BExp::Let {
                        var: t,
                        rhs: BRhs::Switch(sw),
                        body: Box::new(BExp::Ret(Atom::Var(t))),
                    };
                }
                return BExp::Let {
                    var,
                    rhs: BRhs::Switch(sw),
                    body: Box::new(body),
                };
            }
            BExp::Let {
                var,
                rhs,
                body: Box::new(body),
            }
        }
    }
}

fn rhs_rec(r: BRhs, changed: &mut bool, vs: &mut VarSupply) -> BRhs {
    match r {
        BRhs::Switch(sw) => BRhs::Switch(match sw {
            BSwitch::Int {
                scrut,
                arms,
                default,
                con,
            } => {
                let c = con.clone();
                BSwitch::Int {
                    scrut,
                    arms: arms
                        .into_iter()
                        .map(|(k, a)| (k, exp(a, &c, changed, vs)))
                        .collect(),
                    default: Box::new(exp(*default, &c, changed, vs)),
                    con,
                }
            }
            BSwitch::Data {
                scrut,
                data,
                cargs,
                arms,
                default,
                con,
            } => {
                let c = con.clone();
                BSwitch::Data {
                    scrut,
                    data,
                    cargs,
                    arms: arms
                        .into_iter()
                        .map(|(t, b, a)| (t, b, exp(a, &c, changed, vs)))
                        .collect(),
                    default: default.map(|d| Box::new(exp(*d, &c, changed, vs))),
                    con,
                }
            }
            BSwitch::Str {
                scrut,
                arms,
                default,
                con,
            } => {
                let c = con.clone();
                BSwitch::Str {
                    scrut,
                    arms: arms
                        .into_iter()
                        .map(|(k, a)| (k, exp(a, &c, changed, vs)))
                        .collect(),
                    default: Box::new(exp(*default, &c, changed, vs)),
                    con,
                }
            }
            BSwitch::Exn {
                scrut,
                arms,
                default,
                con,
            } => {
                let c = con.clone();
                BSwitch::Exn {
                    scrut,
                    arms: arms
                        .into_iter()
                        .map(|(id, b, a)| (id, b, exp(a, &c, changed, vs)))
                        .collect(),
                    default: Box::new(exp(*default, &c, changed, vs)),
                    con,
                }
            }
        }),
        BRhs::Typecase {
            scrut,
            int,
            float,
            ptr,
            con,
        } => {
            let c = con.clone();
            BRhs::Typecase {
                scrut,
                int: Box::new(exp(*int, &c, changed, vs)),
                float: Box::new(exp(*float, &c, changed, vs)),
                ptr: Box::new(exp(*ptr, &c, changed, vs)),
                con,
            }
        }
        BRhs::Handle { body, var, handler } => BRhs::Handle {
            body,
            var,
            handler,
        },
        other => other,
    }
}
