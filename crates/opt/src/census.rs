//! Occurrence counting over Bform.
//!
//! The inliner's decisions (paper §3.3: "non-escaping functions that
//! are called only once are always inlined") need to know, for every
//! variable, how many times it occurs, how many of those occurrences
//! are in callee position, and whether it escapes (occurs anywhere
//! else).

use std::collections::HashMap;
use til_bform::{Atom, BExp, BRhs, BSwitch};
use til_common::Var;

/// Per-variable occurrence counts.
#[derive(Debug, Default, Clone)]
pub struct Census {
    /// Occurrences in callee position of an `App`.
    pub calls: HashMap<Var, usize>,
    /// All other occurrences (arguments, record fields, scrutinees...).
    pub escapes: HashMap<Var, usize>,
}

impl Census {
    /// Total occurrences of `v`.
    pub fn uses(&self, v: Var) -> usize {
        self.calls.get(&v).copied().unwrap_or(0) + self.escapes.get(&v).copied().unwrap_or(0)
    }

    /// Number of call-position occurrences.
    pub fn calls(&self, v: Var) -> usize {
        self.calls.get(&v).copied().unwrap_or(0)
    }

    /// Number of escaping (non-call) occurrences.
    pub fn escapes(&self, v: Var) -> usize {
        self.escapes.get(&v).copied().unwrap_or(0)
    }

    fn call(&mut self, a: &Atom) {
        if let Atom::Var(v) = a {
            *self.calls.entry(*v).or_insert(0) += 1;
        }
    }

    fn escape(&mut self, a: &Atom) {
        if let Atom::Var(v) = a {
            *self.escapes.entry(*v).or_insert(0) += 1;
        }
    }
}

/// Counts occurrences in a whole expression.
pub fn census(e: &BExp) -> Census {
    let mut c = Census::default();
    walk_exp(e, &mut c);
    c
}

fn walk_exp(e: &BExp, c: &mut Census) {
    match e {
        BExp::Ret(a) => c.escape(a),
        BExp::Let { rhs, body, .. } => {
            walk_rhs(rhs, c);
            walk_exp(body, c);
        }
        BExp::Fix { funs, body } => {
            for f in funs {
                walk_exp(&f.body, c);
            }
            walk_exp(body, c);
        }
    }
}

fn walk_rhs(r: &BRhs, c: &mut Census) {
    match r {
        BRhs::Atom(a) | BRhs::Select(_, a) => c.escape(a),
        BRhs::Float(_) | BRhs::Str(_) => {}
        BRhs::Record(atoms) => atoms.iter().for_each(|a| c.escape(a)),
        BRhs::Con { args, .. } => args.iter().for_each(|a| c.escape(a)),
        BRhs::ExnCon { arg, .. } => {
            if let Some(a) = arg {
                c.escape(a);
            }
        }
        BRhs::Prim { args, .. } => args.iter().for_each(|a| c.escape(a)),
        BRhs::App { f, args, .. } => {
            c.call(f);
            args.iter().for_each(|a| c.escape(a));
        }
        BRhs::Raise { exn, .. } => c.escape(exn),
        BRhs::Handle { body, handler, .. } => {
            walk_exp(body, c);
            walk_exp(handler, c);
        }
        BRhs::Typecase {
            int, float, ptr, ..
        } => {
            walk_exp(int, c);
            walk_exp(float, c);
            walk_exp(ptr, c);
        }
        BRhs::Switch(sw) => match sw {
            BSwitch::Int {
                scrut,
                arms,
                default,
                ..
            } => {
                c.escape(scrut);
                arms.iter().for_each(|(_, a)| walk_exp(a, c));
                walk_exp(default, c);
            }
            BSwitch::Data {
                scrut,
                arms,
                default,
                ..
            } => {
                c.escape(scrut);
                arms.iter().for_each(|(_, _, a)| walk_exp(a, c));
                if let Some(d) = default {
                    walk_exp(d, c);
                }
            }
            BSwitch::Str {
                scrut,
                arms,
                default,
                ..
            } => {
                c.escape(scrut);
                arms.iter().for_each(|(_, a)| walk_exp(a, c));
                walk_exp(default, c);
            }
            BSwitch::Exn {
                scrut,
                arms,
                default,
                ..
            } => {
                c.escape(scrut);
                arms.iter().for_each(|(_, _, a)| walk_exp(a, c));
                walk_exp(default, c);
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use til_common::VarSupply;

    #[test]
    fn counts_calls_vs_escapes() {
        let mut vs = VarSupply::new();
        let f = vs.fresh();
        let x = vs.fresh();
        let y = vs.fresh();
        // let x = f(f) in ret x  — one call of f, one escape of f.
        let e = BExp::Let {
            var: x,
            rhs: BRhs::App {
                f: Atom::Var(f),
                cargs: vec![],
                args: vec![Atom::Var(f)],
            },
            body: Box::new(BExp::Ret(Atom::Var(x))),
        };
        let c = census(&e);
        assert_eq!(c.calls(f), 1);
        assert_eq!(c.escapes(f), 1);
        assert_eq!(c.uses(x), 1);
        assert_eq!(c.uses(y), 0);
    }
}
