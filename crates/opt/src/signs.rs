//! Interprocedural rule-of-signs analysis (paper §3.3: "a
//! 'rule-of-signs' abstract interpretation is used to determine signs
//! of variables").
//!
//! Computes a lower bound for every variable by a whole-program
//! fixpoint: a function parameter's bound is the meet (minimum) of the
//! bounds of every actual argument, and locals get bounds from their
//! defining primitives. The analysis is what lets the comparison
//! eliminator discharge `i < 0` tests for upward-counting loop
//! counters — the other half of array-bounds-check removal.
//!
//! Widening is immediate: the first time a parameter's bound decreases,
//! it drops to "unknown", so the fixpoint terminates in a few passes.

use std::collections::HashMap;
use til_bform::{Atom, BExp, BProgram, BRhs, BSwitch};
use til_common::Var;
use til_lmli::prim::MPrim;

/// A variable's lower bound: `i64::MIN` means unknown.
type Lo = i64;

const UNKNOWN: Lo = i64::MIN;
/// Sentinel for "no call site seen yet" (top of the meet lattice).
const UNSEEN: Lo = i64::MAX;

/// Computes lower bounds for all variables. The result maps variables
/// to proven lower bounds (entries at `i64::MIN` are omitted).
pub fn sign_analysis(p: &BProgram) -> HashMap<Var, i64> {
    let mut cx = Signs {
        lo: HashMap::new(),
        next_params: HashMap::new(),
        params: HashMap::new(),
    };
    collect_funs(&p.body, &mut cx.params);
    let all_params: Vec<Var> = cx.params.values().flatten().copied().collect();
    for v in &all_params {
        cx.lo.insert(*v, UNSEEN);
    }
    for _round in 0..24 {
        cx.next_params.clear();
        for v in &all_params {
            cx.next_params.insert(*v, UNSEEN);
        }
        cx.exp(&p.body);
        // Apply the meets with immediate widening on any decrease.
        let mut changed = false;
        for v in &all_params {
            let new = cx.next_params[v];
            let old = cx.lo[v];
            let applied = if old == UNSEEN {
                new
            } else if new < old {
                UNKNOWN
            } else {
                old
            };
            if applied != old {
                cx.lo.insert(*v, applied);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    cx.lo
        .into_iter()
        .filter(|(_, l)| *l != UNKNOWN && *l != UNSEEN)
        .collect()
}

fn collect_funs(e: &BExp, out: &mut HashMap<Var, Vec<Var>>) {
    match e {
        BExp::Ret(_) => {}
        BExp::Let { rhs, body, .. } => {
            for sub in sub_exps(rhs) {
                collect_funs(sub, out);
            }
            collect_funs(body, out);
        }
        BExp::Fix { funs, body } => {
            for f in funs {
                out.insert(f.var, f.params.iter().map(|(v, _)| *v).collect());
                collect_funs(&f.body, out);
            }
            collect_funs(body, out);
        }
    }
}

fn sub_exps(r: &BRhs) -> Vec<&BExp> {
    match r {
        BRhs::Switch(sw) => match sw {
            BSwitch::Int { arms, default, .. } => arms
                .iter()
                .map(|(_, a)| a)
                .chain(std::iter::once(&**default))
                .collect(),
            BSwitch::Data { arms, default, .. } => arms
                .iter()
                .map(|(_, _, a)| a)
                .chain(default.iter().map(|d| &**d))
                .collect(),
            BSwitch::Str { arms, default, .. } => arms
                .iter()
                .map(|(_, a)| a)
                .chain(std::iter::once(&**default))
                .collect(),
            BSwitch::Exn { arms, default, .. } => arms
                .iter()
                .map(|(_, _, a)| a)
                .chain(std::iter::once(&**default))
                .collect(),
        },
        BRhs::Typecase {
            int, float, ptr, ..
        } => vec![int, float, ptr],
        BRhs::Handle { body, handler, .. } => vec![body, handler],
        _ => vec![],
    }
}

struct Signs {
    /// Current bounds: params carry meet results from prior rounds;
    /// locals are recomputed every round.
    lo: HashMap<Var, Lo>,
    /// This round's pending parameter meets.
    next_params: HashMap<Var, Lo>,
    params: HashMap<Var, Vec<Var>>,
}

impl Signs {
    fn lo_of(&self, a: &Atom) -> Lo {
        match a {
            Atom::Int(n) => *n,
            Atom::Var(v) => self.lo.get(v).copied().unwrap_or(UNKNOWN),
        }
    }

    fn exp(&mut self, e: &BExp) {
        match e {
            BExp::Ret(_) => {}
            BExp::Let { var, rhs, body } => {
                let l = self.rhs_lo(rhs);
                self.lo.insert(*var, l);
                for sub in sub_exps(rhs) {
                    self.exp(sub);
                }
                self.exp(body);
            }
            BExp::Fix { funs, body } => {
                for f in funs {
                    self.exp(&f.body);
                }
                self.exp(body);
            }
        }
    }

    /// min in the lattice where UNSEEN is top and UNKNOWN is bottom.
    fn meet(a: Lo, b: Lo) -> Lo {
        if a == UNSEEN {
            b
        } else if b == UNSEEN {
            a
        } else {
            a.min(b)
        }
    }

    fn rhs_lo(&mut self, r: &BRhs) -> Lo {
        match r {
            BRhs::Atom(a) => self.lo_of(a),
            BRhs::Prim { prim, args, .. } => match prim {
                MPrim::IAdd => {
                    let (a, b) = (self.lo_of(&args[0]), self.lo_of(&args[1]));
                    if a == UNSEEN || b == UNSEEN {
                        UNSEEN
                    } else if a == UNKNOWN || b == UNKNOWN {
                        UNKNOWN
                    } else {
                        a.saturating_add(b).clamp(UNKNOWN + 1, UNSEEN - 1)
                    }
                }
                MPrim::ISub => {
                    let a = self.lo_of(&args[0]);
                    if a == UNSEEN {
                        UNSEEN
                    } else if a == UNKNOWN {
                        UNKNOWN
                    } else if let Atom::Int(c) = args[1] {
                        a.saturating_sub(c).clamp(UNKNOWN + 1, UNSEEN - 1)
                    } else {
                        UNKNOWN
                    }
                }
                MPrim::IMul => {
                    let (a, b) = (self.lo_of(&args[0]), self.lo_of(&args[1]));
                    if a == UNSEEN || b == UNSEEN {
                        UNSEEN
                    } else if a >= 0 && b >= 0 {
                        0
                    } else {
                        UNKNOWN
                    }
                }
                MPrim::IMod => match args[1] {
                    Atom::Int(m) if m > 0 => 0,
                    _ => UNKNOWN,
                },
                MPrim::IAbs
                | MPrim::ALen
                | MPrim::StrSize
                | MPrim::ILt
                | MPrim::ILe
                | MPrim::IGt
                | MPrim::IGe
                | MPrim::IEq
                | MPrim::INe
                | MPrim::FLt
                | MPrim::FLe
                | MPrim::FGt
                | MPrim::FGe
                | MPrim::FEq
                | MPrim::FNe
                | MPrim::SEq
                | MPrim::PtrEq
                | MPrim::PolyEq => 0,
                _ => UNKNOWN,
            },
            BRhs::App { f, args, .. } => {
                if let Atom::Var(fv) = f {
                    if let Some(ps) = self.params.get(fv).cloned() {
                        for (p, a) in ps.iter().zip(args) {
                            let contrib = self.lo_of(a);
                            let cur = self.next_params.get(p).copied().unwrap_or(UNSEEN);
                            self.next_params.insert(*p, Self::meet(cur, contrib));
                        }
                    }
                }
                UNKNOWN
            }
            _ => UNKNOWN,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use til_bform::BFun;
    use til_common::VarSupply;
    use til_lmli::con::Con;

    #[test]
    fn counting_loop_parameter_is_nonnegative() {
        // fix go(i) = let j = i + 1 in let r = go(j) in ret r
        // in let s = go(0) in ret s
        let mut vs = VarSupply::new();
        let go = vs.fresh_named("go");
        let i = vs.fresh_named("i");
        let j = vs.fresh_named("j");
        let r = vs.fresh_named("r");
        let s = vs.fresh_named("s");
        let body = BExp::Let {
            var: j,
            rhs: BRhs::Prim {
                prim: MPrim::IAdd,
                cargs: vec![],
                args: vec![Atom::Var(i), Atom::Int(1)],
            },
            body: Box::new(BExp::Let {
                var: r,
                rhs: BRhs::App {
                    f: Atom::Var(go),
                    cargs: vec![],
                    args: vec![Atom::Var(j)],
                },
                body: Box::new(BExp::Ret(Atom::Var(r))),
            }),
        };
        let prog = BProgram {
            data: til_lmli::MDataEnv::new(),
            exns: til_lmli::MExnEnv::new(),
            body: BExp::Fix {
                funs: vec![BFun {
                    var: go,
                    cparams: vec![],
                    params: vec![(i, Con::Int)],
                    ret: Con::Int,
                    body,
                }],
                body: Box::new(BExp::Let {
                    var: s,
                    rhs: BRhs::App {
                        f: Atom::Var(go),
                        cargs: vec![],
                        args: vec![Atom::Int(0)],
                    },
                    body: Box::new(BExp::Ret(Atom::Var(s))),
                }),
            },
            con: Con::Int,
        };
        let lo = sign_analysis(&prog);
        assert_eq!(lo.get(&i), Some(&0), "loop counter proven >= 0");
        assert_eq!(lo.get(&j), Some(&1));
    }

    #[test]
    fn decrementing_parameter_widens() {
        // go(n) called with 10 and n - 1: bound must widen to unknown.
        let mut vs = VarSupply::new();
        let go = vs.fresh_named("go");
        let n = vs.fresh_named("n");
        let m = vs.fresh_named("m");
        let r = vs.fresh_named("r");
        let s = vs.fresh_named("s");
        let body = BExp::Let {
            var: m,
            rhs: BRhs::Prim {
                prim: MPrim::ISub,
                cargs: vec![],
                args: vec![Atom::Var(n), Atom::Int(1)],
            },
            body: Box::new(BExp::Let {
                var: r,
                rhs: BRhs::App {
                    f: Atom::Var(go),
                    cargs: vec![],
                    args: vec![Atom::Var(m)],
                },
                body: Box::new(BExp::Ret(Atom::Var(r))),
            }),
        };
        let prog = BProgram {
            data: til_lmli::MDataEnv::new(),
            exns: til_lmli::MExnEnv::new(),
            body: BExp::Fix {
                funs: vec![BFun {
                    var: go,
                    cparams: vec![],
                    params: vec![(n, Con::Int)],
                    ret: Con::Int,
                    body,
                }],
                body: Box::new(BExp::Let {
                    var: s,
                    rhs: BRhs::App {
                        f: Atom::Var(go),
                        cargs: vec![],
                        args: vec![Atom::Int(10)],
                    },
                    body: Box::new(BExp::Ret(Atom::Var(s))),
                }),
            },
            con: Con::Int,
        };
        let lo = sign_analysis(&prog);
        assert_eq!(lo.get(&n), None, "decrementing counter is unknown");
    }
}
