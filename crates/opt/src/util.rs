//! Small shared traversal helpers.

use til_bform::{Atom, BRhs};

/// Applies `f` to every atom directly contained in an RHS (not
/// descending into nested arm expressions).
pub fn rhs_atoms(r: &BRhs, f: &mut impl FnMut(&Atom)) {
    match r {
        BRhs::Atom(a) | BRhs::Select(_, a) | BRhs::Raise { exn: a, .. } => f(a),
        BRhs::Float(_) | BRhs::Str(_) => {}
        BRhs::Record(atoms) | BRhs::Con { args: atoms, .. } => atoms.iter().for_each(f),
        BRhs::ExnCon { arg, .. } => {
            if let Some(a) = arg {
                f(a)
            }
        }
        BRhs::Prim { args, .. } => args.iter().for_each(f),
        BRhs::App { f: g, args, .. } => {
            f(g);
            args.iter().for_each(f);
        }
        BRhs::Switch(sw) => {
            use til_bform::BSwitch;
            match sw {
                BSwitch::Int { scrut, .. }
                | BSwitch::Data { scrut, .. }
                | BSwitch::Str { scrut, .. }
                | BSwitch::Exn { scrut, .. } => f(scrut),
            }
        }
        BRhs::Typecase { .. } | BRhs::Handle { .. } => {}
    }
}
