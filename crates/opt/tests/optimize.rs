//! Full middle-end tests: source → Lambda → Lmli → Bform → optimize →
//! Bform typecheck, with the paper's headline structural claims
//! asserted (all polymorphic functions and typecases eliminated on
//! monomorphizable whole programs).

use til_bform::{from_lmli, typecheck_bform, BProgram};
use til_lmli::{from_lambda, LmliOptions};
use til_opt::{optimize, OptOptions, OptStats};

fn build(src: &str, lmli: &LmliOptions) -> (BProgram, til_common::VarSupply) {
    let mut e = til_elab::elaborate_source(src).expect("elaborate");
    let m = from_lambda(&e.program, lmli, &mut e.vars).expect("to lmli");
    let b = from_lmli(&m, &mut e.vars).expect("to bform");
    (b, e.vars)
}

fn optimize_ok(src: &str) -> OptStats {
    til_common::with_big_stack(|| {
        let (mut b, mut vs) = build(src, &LmliOptions::til());
        let mut opts = OptOptions::til();
        opts.verify = true;
        let stats = optimize(&mut b, &mut vs, &opts).unwrap_or_else(|d| panic!("{d}"));
        typecheck_bform(&b).unwrap_or_else(|d| panic!("post-opt typecheck: {d}"));
        stats
    })
}

#[test]
fn prelude_optimizes() {
    let stats = optimize_ok("");
    assert!(stats.size_after <= stats.size_before);
}

#[test]
fn monomorphization_is_total_on_first_order_code() {
    let stats = optimize_ok(
        "val xs = map (fn x => x + 1) [1, 2, 3]
         val n = length xs
         val _ = print (Int.toString n)",
    );
    assert_eq!(stats.remaining_polymorphic, 0, "paper §5.1: optimizer eliminates all polymorphic functions");
    assert_eq!(stats.remaining_typecases, 0);
}

#[test]
fn dot_product_loop_optimizes() {
    let stats = optimize_ok(
        "val n = 8
         val A = Array2.array (n, n, 0)
         val B = Array2.array (n, n, 0)
         fun dot (i, j, bound) =
           let fun go (cnt, sum) =
                 if cnt < bound
                 then go (cnt + 1, sum + sub2 (A, i, cnt) * sub2 (B, cnt, j))
                 else sum
           in go (0, 0) end
         val _ = print (Int.toString (dot (0, 0, n)))",
    );
    assert_eq!(stats.remaining_polymorphic, 0);
    assert_eq!(stats.remaining_typecases, 0);
}

#[test]
fn float_code_unboxes() {
    let stats = optimize_ok(
        "val a = Array.array (10, 0.0)
         fun fill i = if i >= 10 then () else (Array.update (a, i, real i * 1.5); fill (i + 1))
         val _ = fill 0
         fun total (i, acc) = if i >= 10 then acc else total (i + 1, acc + Array.sub (a, i))
         val _ = print (Real.toString (total (0, 0.0)))",
    );
    assert_eq!(stats.remaining_polymorphic, 0);
}

#[test]
fn exceptions_and_handlers_optimize() {
    optimize_ok(
        "exception E of int
         fun risky x = if x > 5 then raise E x else x * 2
         val v = (risky 10) handle E n => n | Overflow => 0
         val _ = print (Int.toString v)",
    );
}

#[test]
fn baseline_mode_optimizes_too() {
    til_common::with_big_stack(|| {
    let (mut b, mut vs) = build(
        "val xs = map (fn x => x * 2) [1, 2, 3] val _ = print (Int.toString (length xs))",
        &LmliOptions::baseline(),
    );
    let mut opts = OptOptions::baseline();
    opts.verify = true;
    optimize(&mut b, &mut vs, &opts).unwrap_or_else(|d| panic!("{d}"));
    typecheck_bform(&b).unwrap_or_else(|d| panic!("{d}"));
    })
}

#[test]
fn no_loop_opts_mode_is_sound() {
    til_common::with_big_stack(|| {
    let (mut b, mut vs) = build(
        "val a = Array.array (100, 0)
         fun fill i = if i >= 100 then () else (Array.update (a, i, i); fill (i + 1))
         val _ = fill 0
         val _ = print (Int.toString (Array.sub (a, 50)))",
        &LmliOptions::til(),
    );
    let mut opts = OptOptions::til_no_loop_opts();
    opts.verify = true;
    optimize(&mut b, &mut vs, &opts).unwrap_or_else(|d| panic!("{d}"));
    typecheck_bform(&b).unwrap_or_else(|d| panic!("{d}"));
    })
}

#[test]
fn higher_order_programs_monomorphize() {
    let stats = optimize_ok(
        "fun twice f x = f (f x)
         fun compose f g x = f (g x)
         val h = compose (fn x => x + 1) (fn x => x * 3)
         val v = twice h 5
         val w = foldl (fn (a, b) => a + b) 0 (List.tabulate (10, fn i => i))
         val _ = print (Int.toString (v + w))",
    );
    assert_eq!(stats.remaining_polymorphic, 0);
}

#[test]
fn datatype_heavy_code_optimizes() {
    optimize_ok(
        "datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree
         fun insert (Leaf, x) = Node (Leaf, x, Leaf)
           | insert (Node (l, y, r), x) =
               if x < y then Node (insert (l, x), y, r)
               else if x > y then Node (l, y, insert (r, x))
               else Node (l, y, r)
         fun size Leaf = 0 | size (Node (l, _, r)) = 1 + size l + size r
         fun build (n, t) = if n = 0 then t else build (n - 1, insert (t, n * 7 mod 13))
         val _ = print (Int.toString (size (build (20, Leaf))))",
    );
}

#[test]
fn bounds_checks_are_eliminated_in_counted_loops() {
    til_common::with_big_stack(|| {
    // The prelude's Array.sub carries explicit checks; after inlining,
    // comparison elimination should remove them in this loop (the
    // remaining program should contain no Subscript raise on the hot
    // path — we check the weaker property that optimization shrinks
    // the loop body when loop opts are on versus off).
    let src = "val a = Array.array (1000, 0)
         fun sumloop (i, acc) =
           if i >= 1000 then acc else sumloop (i + 1, acc + Array.sub (a, i))
         val _ = print (Int.toString (sumloop (0, 0)))";
    let (mut with_lo, mut vs1) = build(src, &LmliOptions::til());
    optimize(&mut with_lo, &mut vs1, &OptOptions::til()).unwrap();
    let (mut without_lo, mut vs2) = build(src, &LmliOptions::til());
    optimize(&mut without_lo, &mut vs2, &OptOptions::til_no_loop_opts()).unwrap();
    assert!(
        with_lo.body.size() < without_lo.body.size(),
        "loop opts should shrink the program: {} vs {}",
        with_lo.body.size(),
        without_lo.body.size()
    );
    })
}
