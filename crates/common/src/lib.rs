//! Shared infrastructure for every phase of the TIL reproduction.
//!
//! This crate provides the cross-cutting substrate the paper's compiler
//! assumes: interned identifiers ([`Symbol`]), compiler-generated variables
//! ([`Var`], [`VarSupply`]), source locations ([`Span`]), structured
//! diagnostics ([`Diagnostic`]), and a small indentation-aware pretty
//! printer ([`pretty::Printer`]) used by the IR dumpers that reproduce the
//! paper's Section 4 walkthrough. It also hosts the observability
//! substrate: hierarchical phase tracing ([`trace::Tracer`], toggled by
//! the `TIL_TRACE` environment variable) and the hand-rolled JSON
//! writer ([`json::Json`]) behind the bench harness's metrics export.

// Substrate hygiene: everything in this crate runs under every phase
// of every compile — failures must be typed, propagated, or carry a
// documented scoped `allow` justifying why aborting is the only
// option. (`clippy.toml` exempts test code.)
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

pub mod diag;
pub mod fault;
pub mod json;
pub mod par;
pub mod pretty;
pub mod span;
pub mod symbol;
pub mod trace;
pub mod var;
pub mod verify;

pub use diag::{Diagnostic, Level, Result};
pub use json::{ChromeEvent, Json};
pub use span::Span;
pub use symbol::Symbol;
pub use trace::{TraceEvent, Tracer};
pub use var::{Var, VarSupply};

/// Runs `f` on a thread with a large stack. The optimizer and
/// typecheckers recurse over whole-program ANF chains, which easily
/// exceeds default stacks in debug builds; every deep pipeline entry
/// point routes through here.
pub fn with_big_stack<T: Send>(f: impl FnOnce() -> T + Send) -> T {
    std::thread::scope(|s| {
        // OS thread-spawn failure (resource exhaustion) has no
        // recovery path inside a compile; a panic on the big-stack
        // thread is re-raised here with its original payload.
        #[allow(clippy::expect_used)]
        let h = std::thread::Builder::new()
            .stack_size(512 << 20)
            .spawn_scoped(s, f)
            .expect("spawn compiler thread");
        h.join().unwrap_or_else(|e| std::panic::resume_unwind(e))
    })
}
