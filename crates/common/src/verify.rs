//! Shared forensics for per-pass verification failures.
//!
//! Every stage that re-checks its IR after each transformation (the
//! Bform optimizer, the closure-stage passes) reports failures the
//! same way: the diagnostic names the offending pass and points at
//! pretty-printed before/after IR dumps, turning any miscompile into a
//! one-pass bisection. This module owns that reporting so the format
//! stays identical across stages.

use crate::Diagnostic;

/// Builds the pass-attributed verify diagnostic: names the pass,
/// writes the pretty-printed before/after IR dumps (to the system temp
/// directory, or inline to stderr if that fails), and wraps the
/// underlying error. `stage` is the diagnostic's phase (e.g.
/// `"optimize"`), `ext` the dump-file extension (e.g. `"bform"`).
pub fn attribute_pass_failure(
    stage: &'static str,
    pass: &str,
    before_txt: &str,
    after_txt: &str,
    ext: &str,
    d: Diagnostic,
) -> Diagnostic {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let bpath = dir.join(format!("til-verify-{pid}-{pass}-before.{ext}"));
    let apath = dir.join(format!("til-verify-{pid}-{pass}-after.{ext}"));
    let dumps = match (
        std::fs::write(&bpath, before_txt),
        std::fs::write(&apath, after_txt),
    ) {
        (Ok(()), Ok(())) => {
            format!("IR dumps: {} / {}", bpath.display(), apath.display())
        }
        _ => {
            eprintln!("=== til verify: IR before `{pass}` ===\n{before_txt}");
            eprintln!("=== til verify: IR after `{pass}` ===\n{after_txt}");
            "IR dumps written to stderr".to_string()
        }
    };
    Diagnostic::ice(stage, format!("pass `{pass}` broke typing: {d}; {dumps}"))
}
