//! Compiler observability: hierarchical phase tracing.
//!
//! Every pipeline entry point threads a [`Tracer`] through its phases.
//! A phase opens a [`span`](Tracer::span); spans nest, time themselves,
//! and may carry counters (IR node counts, bytes, nodes eliminated).
//! All spans are recorded as structured [`TraceEvent`]s for later
//! inspection or machine-readable export, and — when tracing is
//! enabled via the `TIL_TRACE` environment variable or
//! programmatically — are also streamed to stderr as an indented tree:
//!
//! ```text
//! [til]   optimize ................ 1.234ms  nodes: 812 -> 411
//! [til]     simplify-reduce ....... 0.410ms  eliminated: 210
//! ```
//!
//! The tracer is deliberately zero-dependency and allocation-light: a
//! disabled tracer still records events (they feed `CompileInfo`) but
//! prints nothing.
//!
//! The tracer is `Sync`: parallel pipeline stages (the per-function
//! backend) record into per-worker [`Tracer`]s and merge them in
//! deterministic order with [`Tracer::absorb_events`], so the
//! pass-attributed event stream is identical regardless of the worker
//! count.

use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

/// One closed span: a named unit of compiler work.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Span name (phase or pass name).
    pub name: String,
    /// Nesting depth at which the span ran (0 = pipeline phase).
    pub depth: usize,
    /// Seconds from the tracer's epoch (root tracer creation) to the
    /// span opening. Forked worker tracers share the parent's epoch, so
    /// absorbed events stay on one timeline — this is what lets the
    /// Chrome trace exporter place spans on a common time axis.
    pub start: f64,
    /// Wall-clock duration in seconds.
    pub seconds: f64,
    /// Counters attached while the span was open, in insertion order
    /// (e.g. `("ir-nodes", 812)`, `("eliminated", 210)`).
    pub counters: Vec<(&'static str, i64)>,
}

struct State {
    depth: usize,
    events: Vec<TraceEvent>,
}

/// A hierarchical span tracer for one compilation.
pub struct Tracer {
    /// Stream spans to stderr as they close?
    echo: bool,
    /// Time zero for every `TraceEvent::start` recorded through this
    /// tracer (shared with forked workers).
    epoch: Instant,
    state: Mutex<State>,
}

/// Is `TIL_TRACE` set to a truthy value (anything but `0`/empty)?
pub fn env_enabled() -> bool {
    match std::env::var("TIL_TRACE") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

impl Tracer {
    /// A tracer; `echo` additionally streams closed spans to stderr.
    pub fn new(echo: bool) -> Tracer {
        Tracer {
            echo,
            epoch: Instant::now(),
            state: Mutex::new(State {
                depth: 0,
                events: Vec::new(),
            }),
        }
    }

    /// A tracer that echoes iff `TIL_TRACE` is set.
    pub fn from_env() -> Tracer {
        Tracer::new(env_enabled())
    }

    /// Is stderr echo on?
    pub fn echoing(&self) -> bool {
        self.echo
    }

    /// A quiet child tracer for one parallel worker. Workers record
    /// spans locally (no contention, no interleaved echo) and the
    /// coordinator merges the buffers in deterministic order with
    /// [`absorb_events`](Tracer::absorb_events) after joining.
    pub fn fork(&self) -> Tracer {
        Tracer {
            echo: false,
            epoch: self.epoch,
            state: Mutex::new(State {
                depth: 0,
                events: Vec::new(),
            }),
        }
    }

    /// Merges a per-worker event buffer (from
    /// [`fork`](Tracer::fork) + [`into_events`](Tracer::into_events))
    /// into this tracer, re-based one level below the current depth.
    /// Call once per worker, in deterministic (function) order, so the
    /// merged stream is identical regardless of scheduling.
    pub fn absorb_events(&self, events: Vec<TraceEvent>) {
        let base = {
            let st = self.locked();
            st.depth + 1
        };
        for mut ev in events {
            ev.depth += base;
            self.emit(&ev);
            self.locked().events.push(ev);
        }
    }

    /// Opens a span. The span closes (and is recorded) when the guard
    /// drops; attach counters to the guard while it is open.
    pub fn span(&self, name: impl Into<String>) -> Span<'_> {
        let depth = {
            let mut st = self.locked();
            let d = st.depth;
            st.depth += 1;
            d
        };
        Span {
            tracer: self,
            name: name.into(),
            depth,
            start: Instant::now(),
            counters: Vec::new(),
        }
    }

    /// Records a pre-timed event at the current depth — for callers
    /// that measure phases themselves (lap-style) rather than through
    /// a [`span`](Tracer::span) guard.
    pub fn event(
        &self,
        name: impl Into<String>,
        seconds: f64,
        counters: &[(&'static str, i64)],
    ) {
        let now = self.epoch.elapsed().as_secs_f64();
        let ev = {
            let st = self.locked();
            TraceEvent {
                name: name.into(),
                depth: st.depth,
                start: (now - seconds).max(0.0),
                seconds,
                counters: counters.to_vec(),
            }
        };
        self.emit(&ev);
        self.locked().events.push(ev);
    }

    /// Records an instantaneous counter-only event at the current depth.
    pub fn counter(&self, name: impl Into<String>, value: i64) {
        let now = self.epoch.elapsed().as_secs_f64();
        let ev = {
            let st = self.locked();
            TraceEvent {
                name: name.into(),
                depth: st.depth,
                start: now,
                seconds: 0.0,
                counters: vec![("value", value)],
            }
        };
        self.emit(&ev);
        self.locked().events.push(ev);
    }

    /// All events recorded so far, in closing order (children before
    /// parents, like a post-order traversal).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.locked().events.clone()
    }

    /// Consumes the tracer, returning its events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.state
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .events
    }

    /// Records (and echoes, when enabled) pre-built events verbatim —
    /// no depth re-basing and no timestamp adjustment. Used to splice
    /// runtime-span events (whose timeline is deterministic instruction
    /// time, not wall clock) into a compile-phase tracer.
    pub fn replay_events(&self, events: Vec<TraceEvent>) {
        for ev in events {
            self.emit(&ev);
            self.locked().events.push(ev);
        }
    }

    /// Locks the event state, tolerating poison: a panicking worker
    /// must not cascade a second failure into every later trace call —
    /// the events recorded so far are still coherent.
    fn locked(&self) -> std::sync::MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn emit(&self, ev: &TraceEvent) {
        if !self.echo {
            return;
        }
        let mut line = String::new();
        let _ = write!(
            line,
            "[til] {:indent$}{} {:.<pad$} {:>9.3}ms",
            "",
            ev.name,
            "",
            ev.seconds * 1e3,
            indent = 2 * ev.depth,
            pad = 28usize.saturating_sub(ev.name.len() + 2 * ev.depth),
        );
        for (k, v) in &ev.counters {
            let _ = write!(line, "  {k}: {v}");
        }
        eprintln!("{line}");
    }

    fn close(&self, span: &mut Span<'_>) {
        let ev = TraceEvent {
            name: std::mem::take(&mut span.name),
            depth: span.depth,
            start: span.start.duration_since(self.epoch).as_secs_f64(),
            seconds: span.start.elapsed().as_secs_f64(),
            counters: std::mem::take(&mut span.counters),
        };
        self.emit(&ev);
        let mut st = self.locked();
        st.depth = span.depth;
        st.events.push(ev);
    }
}

/// An open span; closes on drop.
pub struct Span<'a> {
    tracer: &'a Tracer,
    name: String,
    depth: usize,
    start: Instant,
    counters: Vec<(&'static str, i64)>,
}

impl Span<'_> {
    /// Attaches a counter to this span (shown and recorded at close).
    pub fn counter(&mut self, name: &'static str, value: i64) {
        self.counters.push((name, value));
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.tracer.close(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record() {
        let t = Tracer::new(false);
        {
            let mut outer = t.span("optimize");
            outer.counter("ir-nodes", 812);
            {
                let mut inner = t.span("simplify");
                inner.counter("eliminated", 3);
            }
        }
        let evs = t.into_events();
        assert_eq!(evs.len(), 2);
        // Children close first.
        assert_eq!(evs[0].name, "simplify");
        assert_eq!(evs[0].depth, 1);
        assert_eq!(evs[0].counters, vec![("eliminated", 3)]);
        assert_eq!(evs[1].name, "optimize");
        assert_eq!(evs[1].depth, 0);
        assert_eq!(evs[1].counters, vec![("ir-nodes", 812)]);
    }

    #[test]
    fn depth_restores_after_close() {
        let t = Tracer::new(false);
        drop(t.span("a"));
        drop(t.span("b"));
        let evs = t.into_events();
        assert_eq!(evs[0].depth, 0);
        assert_eq!(evs[1].depth, 0);
    }

    #[test]
    fn counters_record_instantaneous_values() {
        let t = Tracer::new(false);
        t.counter("code-bytes", 4096);
        let evs = t.into_events();
        assert_eq!(evs[0].counters, vec![("value", 4096)]);
        assert_eq!(evs[0].seconds, 0.0);
    }

    #[test]
    fn tracer_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<Tracer>();
    }

    #[test]
    fn forked_workers_share_the_parent_epoch() {
        let t = Tracer::new(false);
        let outer = t.span("parent");
        let w = t.fork();
        drop(w.span("child"));
        let child = w.into_events().remove(0);
        drop(outer);
        let parent = t.into_events().remove(0);
        // The child opened after the parent span, on the same epoch, so
        // its start cannot precede the parent's.
        assert!(child.start >= parent.start);
    }

    #[test]
    fn replay_records_events_verbatim() {
        let t = Tracer::new(false);
        t.replay_events(vec![TraceEvent {
            name: "gc-pause".into(),
            depth: 1,
            start: 0.25,
            seconds: 0.001,
            counters: vec![("live-words", 42)],
        }]);
        let evs = t.into_events();
        assert_eq!(evs[0].name, "gc-pause");
        assert_eq!(evs[0].depth, 1);
        assert_eq!(evs[0].start, 0.25);
    }

    #[test]
    fn absorbed_worker_events_rebase_below_the_current_depth() {
        let t = Tracer::new(false);
        let _outer = t.span("backend");
        let worker = t.fork();
        {
            let mut s = worker.span("emit f");
            s.counter("instrs", 7);
        }
        t.absorb_events(worker.into_events());
        let evs = t.events();
        assert_eq!(evs[0].name, "emit f");
        // Worker depth 0 lands one level under the open "backend" span
        // (depth 1), i.e. at depth 2.
        assert_eq!(evs[0].depth, 2);
        assert_eq!(evs[0].counters, vec![("instrs", 7)]);
    }
}
