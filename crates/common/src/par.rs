//! A minimal scoped worker pool for the per-function backend stages.
//!
//! Zero-dependency by design (the container has no registry access):
//! plain `std::thread::scope` workers pulling indices off an atomic
//! counter. The map is *order-preserving* — results come back indexed
//! by their input position, so callers join per-function work in
//! deterministic function order no matter how the scheduler interleaved
//! the workers. Combined with per-worker trace buffers
//! ([`crate::trace::Tracer::absorb_events`]) and per-worker static-data
//! tables merged in function order, the compiled artifact is
//! byte-identical for any job count.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-worker stack size. Lowering and emission recurse over single
/// function bodies (not whole programs), but debug builds are
/// stack-hungry; 64 MiB of (lazily committed) stack per worker is
/// plenty and costs only address space.
const WORKER_STACK: usize = 64 << 20;

/// OS thread-spawn failure (resource exhaustion) has no recovery path
/// inside a compile — abort the pipeline with the cause.
#[allow(clippy::panic)]
fn spawn_failed(e: std::io::Error) -> ! {
    panic!("spawn worker thread: {e}")
}

/// Resolves the effective job count: the `TIL_JOBS` environment
/// variable wins, then the programmatic request, then the machine's
/// available parallelism. Always at least 1.
pub fn jobs(requested: Option<usize>) -> usize {
    let env = std::env::var("TIL_JOBS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok());
    env.or(requested)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
}

/// Maps `f` over `items` on up to `jobs` scoped worker threads,
/// returning results in input order. `f` receives `(index, &item)`.
///
/// With `jobs <= 1` (or one item) this degenerates to a plain
/// sequential loop on the calling thread — the parallel and serial
/// paths run the *same* closure, so determinism regressions cannot
/// hide behind the job count.
pub fn map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let workers = jobs.min(items.len());
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                std::thread::Builder::new()
                    .stack_size(WORKER_STACK)
                    .spawn_scoped(s, move || {
                        let mut out: Vec<(usize, R)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                return out;
                            }
                            out.push((i, f(i, &items[i])));
                        }
                    })
                    .unwrap_or_else(|e| spawn_failed(e))
            })
            .collect();
        for h in handles {
            let out = h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
            for (i, r) in out {
                results[i] = Some(r);
            }
        }
    });
    results
        .into_iter()
        .map(|r| {
            // Workers claim indices from one shared counter until it
            // passes `items.len()`, so every slot is filled exactly
            // once; an empty slot is a scheduler bug, not a runtime
            // condition.
            #[allow(clippy::expect_used)]
            r.expect("every index produced a result")
        })
        .collect()
}

/// [`map`] with per-item trace spans: each worker records into a
/// [`Tracer::fork`](crate::trace::Tracer::fork)ed buffer (no lock
/// contention, no interleaved `TIL_TRACE` echo under `TIL_JOBS > 1`),
/// and the buffers are merged into `parent` in *input order* after all
/// items finish — the span stream is identical for any job count.
/// With `parent = None` this is exactly [`map`] (no tracing overhead).
pub fn map_traced<T, R, F>(
    jobs: usize,
    items: &[T],
    parent: Option<&crate::trace::Tracer>,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T, Option<&crate::trace::Tracer>) -> R + Sync,
{
    let Some(parent) = parent else {
        return map(jobs, items, |i, t| f(i, t, None));
    };
    let pairs = map(jobs, items, |i, t| {
        let local = parent.fork();
        let r = f(i, t, Some(&local));
        (r, local.into_events())
    });
    let mut out = Vec::with_capacity(pairs.len());
    for (r, events) in pairs {
        parent.absorb_events(events);
        out.push(r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for jobs in [1, 2, 8] {
            let out = map(jobs, &items, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..37).map(|i| i * 17 + 3).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(13);
        assert_eq!(map(1, &items, f), map(8, &items, f));
    }

    #[test]
    fn jobs_floor_is_one() {
        assert!(jobs(Some(0)) >= 1);
        assert!(jobs(None) >= 1);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = vec![];
        assert!(map(8, &none, |_, &x| x).is_empty());
        assert_eq!(map(8, &[5u32], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn map_traced_merges_spans_in_input_order() {
        let items: Vec<usize> = (0..24).collect();
        let t = crate::trace::Tracer::new(false);
        let out = map_traced(8, &items, Some(&t), |i, &x, tr| {
            let tr = tr.expect("worker tracer");
            let mut s = tr.span(format!("item {x}"));
            s.counter("i", i as i64);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        let names: Vec<String> = t.into_events().into_iter().map(|e| e.name).collect();
        let want: Vec<String> = items.iter().map(|x| format!("item {x}")).collect();
        assert_eq!(names, want);
    }

    #[test]
    fn map_traced_without_parent_matches_map() {
        let items: Vec<u32> = (0..9).collect();
        let out = map_traced(4, &items, None, |_, &x, tr| {
            assert!(tr.is_none());
            x + 1
        });
        assert_eq!(out, map(4, &items, |_, &x| x + 1));
    }
}
