//! Fault injection for the per-pass verification machinery.
//!
//! The paper's engineering discipline — re-typecheck the IR after every
//! transformation — is only trustworthy if the *checking machinery
//! itself* stays tested. This module provides the process-global
//! arming registry used by every pass-running stage (Bform
//! optimization, closure-stage passes): arm a pass by name and the
//! stage's scheduler corrupts the program immediately after that pass
//! runs, so the very next verification must fail *attributed to that
//! pass*.
//!
//! Arm programmatically with [`break_pass`] (guard-scoped) or
//! externally with the `TIL_BREAK_PASS` environment variable.

use std::sync::{Mutex, MutexGuard, PoisonError};

static ARMED: Mutex<Option<String>> = Mutex::new(None);

/// The arming slot, tolerating poison: a test that panicked while
/// armed must not wedge every later compile in the process.
fn armed_slot() -> MutexGuard<'static, Option<String>> {
    ARMED.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arms fault injection for the named pass; disarms when the guard
/// drops. The registry is process-global — tests that arm a pass must
/// not run concurrently with other compiles in the same process.
pub fn break_pass(name: &str) -> Injection {
    *armed_slot() = Some(name.to_string());
    Injection(())
}

/// Armed-injection guard (see [`break_pass`]).
pub struct Injection(());

impl Drop for Injection {
    fn drop(&mut self) {
        armed_slot().take();
    }
}

/// Whether injection is armed for `pass` (programmatically or via the
/// `TIL_BREAK_PASS` environment variable).
pub fn armed(pass: &str) -> bool {
    if armed_slot().as_deref() == Some(pass) {
        return true;
    }
    std::env::var("TIL_BREAK_PASS").map(|v| v == pass) == Ok(true)
}
