//! Compiler diagnostics.
//!
//! Every phase reports failures as a [`Diagnostic`]. Internal invariants
//! (for example a typechecker rejecting the output of an optimization
//! pass, the paper's headline engineering benefit) are reported as
//! [`Level::Ice`] so they are visibly distinct from user errors.

use crate::span::Span;
use std::fmt;

/// Severity of a diagnostic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Level {
    /// A user-facing error (syntax, type, unbound identifier...).
    Error,
    /// An internal compiler error: an IR invariant or inter-pass type
    /// check failed. These indicate compiler bugs, never user bugs.
    Ice,
}

/// A structured compiler diagnostic.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Severity.
    pub level: Level,
    /// Human-readable message.
    pub message: String,
    /// Location in the source, if known.
    pub span: Option<Span>,
    /// Compilation phase that produced the diagnostic (e.g. `"parse"`,
    /// `"lmli-typecheck"`).
    pub phase: &'static str,
}

impl Diagnostic {
    /// A user error in `phase` at `span`.
    pub fn error(phase: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            level: Level::Error,
            message: message.into(),
            span: Some(span),
            phase,
        }
    }

    /// A user error with no source location.
    pub fn error_nospan(phase: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            level: Level::Error,
            message: message.into(),
            span: None,
            phase,
        }
    }

    /// An internal compiler error (failed invariant).
    pub fn ice(phase: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            level: Level::Ice,
            message: message.into(),
            span: None,
            phase,
        }
    }

    /// Renders the diagnostic against the given source text.
    pub fn render(&self, src: &str) -> String {
        let loc = match self.span {
            Some(sp) => {
                let (l, c) = sp.line_col(src);
                format!("{l}:{c}: ")
            }
            None => String::new(),
        };
        let lvl = match self.level {
            Level::Error => "error",
            Level::Ice => "internal compiler error",
        };
        format!("{loc}{lvl} [{}]: {}", self.phase, self.message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lvl = match self.level {
            Level::Error => "error",
            Level::Ice => "ICE",
        };
        write!(f, "{lvl} [{}]: {}", self.phase, self.message)?;
        if let Some(sp) = self.span {
            write!(f, " @ {sp}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostic {}

/// Result type used throughout the compiler.
pub type Result<T> = std::result::Result<T, Diagnostic>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_line_and_column() {
        let d = Diagnostic::error("parse", Span::new(3, 4), "unexpected token");
        let out = d.render("ab\ncd");
        assert!(out.contains("2:1"), "{out}");
        assert!(out.contains("unexpected token"));
    }

    #[test]
    fn ice_is_marked() {
        let d = Diagnostic::ice("bform-typecheck", "pass broke types");
        assert_eq!(d.level, Level::Ice);
        assert!(d.to_string().contains("ICE"));
    }
}
