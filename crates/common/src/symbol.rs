//! Interned identifiers.
//!
//! Every source-level name (variables, constructors, record labels, type
//! names) is interned into a [`Symbol`]: a small copyable index into a
//! global string table. Interning makes identifier comparison O(1), which
//! matters because the optimizer (per the paper, §2.2) aims for
//! O(N log N) passes over whole compilation units.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string.
///
/// `Symbol`s are cheap to copy, hash, and compare. Use [`Symbol::intern`]
/// to create one and [`Symbol::as_str`] (or `Display`) to read it back.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `s`, returning its canonical `Symbol`.
    pub fn intern(s: &str) -> Symbol {
        let mut i = interner().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(&id) = i.map.get(s) {
            return Symbol(id);
        }
        // Leaking is acceptable: the set of distinct identifiers in a
        // compilation session is bounded by its sources.
        let owned: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = i.strings.len() as u32;
        i.strings.push(owned);
        i.map.insert(owned, id);
        Symbol(id)
    }

    /// Returns the interned string.
    pub fn as_str(&self) -> &'static str {
        interner().lock().unwrap_or_else(std::sync::PoisonError::into_inner).strings[self.0 as usize]
    }

    /// Raw index, useful for dense side tables.
    pub fn index(&self) -> u32 {
        self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}`", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("foo");
        let b = Symbol::intern("foo");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "foo");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        assert_ne!(Symbol::intern("x"), Symbol::intern("y"));
    }

    #[test]
    fn display_round_trips() {
        let s = Symbol::intern("dot_product");
        assert_eq!(format!("{s}"), "dot_product");
    }

    #[test]
    fn empty_string_is_internable() {
        let s = Symbol::intern("");
        assert_eq!(s.as_str(), "");
    }
}
