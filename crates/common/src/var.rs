//! Compiler-generated variables.
//!
//! Once the front end alpha-converts a program, every binder in every IR
//! is a [`Var`]: a globally unique integer paired with an optional
//! source-level hint used only for printing. Uniqueness is what lets the
//! optimizer treat substitution and environment maps as simple integer
//! maps (the paper alpha-converts as its first Bform transformation).

use crate::symbol::Symbol;
use std::fmt;

/// A unique compiler variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var {
    id: u32,
    hint: Option<Symbol>,
}

impl Var {
    /// The unique id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The source-name hint, if any.
    pub fn hint(&self) -> Option<Symbol> {
        self.hint
    }

    /// Builds a `Var` from raw parts. Only the supply and tests should
    /// call this; elsewhere use [`VarSupply::fresh`].
    pub fn from_raw(id: u32, hint: Option<Symbol>) -> Var {
        Var { id, hint }
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.hint {
            Some(h) => write!(f, "{}_{}", h, self.id),
            None => write!(f, "v{}", self.id),
        }
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A monotonically increasing source of fresh [`Var`]s.
///
/// One supply is threaded through the whole compilation of a unit, so ids
/// never collide across phases.
#[derive(Clone, Debug, Default)]
pub struct VarSupply {
    next: u32,
}

impl VarSupply {
    /// A supply starting at id 0.
    pub fn new() -> VarSupply {
        VarSupply { next: 0 }
    }

    /// A fresh variable with no name hint.
    pub fn fresh(&mut self) -> Var {
        self.named(None)
    }

    /// A fresh variable hinted with `name` (for readable dumps).
    pub fn fresh_named(&mut self, name: &str) -> Var {
        self.named(Some(Symbol::intern(name)))
    }

    /// A fresh variable that reuses the hint of `v`.
    pub fn rename(&mut self, v: Var) -> Var {
        self.named(v.hint)
    }

    fn named(&mut self, hint: Option<Symbol>) -> Var {
        let id = self.next;
        // 2^32 variables means a runaway pass, not a user error —
        // wrapping silently would alias live variables.
        #[allow(clippy::expect_used)]
        let next = self.next.checked_add(1).expect("variable supply exhausted");
        self.next = next;
        Var { id, hint }
    }

    /// Number of variables handed out so far.
    pub fn count(&self) -> u32 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_vars_are_distinct() {
        let mut s = VarSupply::new();
        let a = s.fresh();
        let b = s.fresh();
        assert_ne!(a, b);
    }

    #[test]
    fn rename_preserves_hint() {
        let mut s = VarSupply::new();
        let a = s.fresh_named("sum");
        let b = s.rename(a);
        assert_ne!(a, b);
        assert_eq!(b.hint(), a.hint());
        assert!(format!("{b}").starts_with("sum_"));
    }

    #[test]
    fn display_without_hint() {
        let mut s = VarSupply::new();
        let v = s.fresh();
        assert_eq!(format!("{v}"), format!("v{}", v.id()));
    }
}
