//! A tiny hand-rolled JSON writer (no serde: the repo is
//! zero-dependency by design). Produces pretty-printed, valid JSON from
//! explicit `obj`/`arr` building blocks; used by the bench harness to
//! export machine-readable metrics (`BENCH_pipeline.json`).

use std::fmt::Write as _;

/// A JSON value under construction.
#[derive(Clone, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer (emitted without a decimal point).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Finite float (non-finite values are emitted as `null`, which is
    /// the only valid-JSON option).
    Float(f64),
    /// String (escaped on write).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// An array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Adds `key: value` to an object (panics on non-objects —
    /// builder misuse is a programming error).
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            // Builder misuse is a programming error in the
            // exporter, not a runtime condition (documented above).
            #[allow(clippy::panic)]
            _ => panic!("Json::set on non-object"),
        }
        self
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, 0);
        s.push('\n');
        s
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    // Shortest roundtrip form; ensure it still parses
                    // as a JSON number (Rust never emits NaN here).
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    it.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

/// One event in the Chrome trace-event format (the JSON consumed by
/// `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)).
/// Timestamps are microseconds; which clock they are microseconds *of*
/// is up to the producer (the bench exporter uses wall-clock µs for
/// compile phases and deterministic instruction time — 1 instruction =
/// 1 µs — for runtime spans, on separate track ids).
#[derive(Clone, Debug)]
pub struct ChromeEvent {
    /// Event name (shown on the slice).
    pub name: String,
    /// Category tag (comma-separated in the format; one is plenty).
    pub cat: &'static str,
    /// Phase: `'X'` = complete slice, `'i'` = instant, `'M'` = metadata.
    pub ph: char,
    /// Start timestamp in microseconds.
    pub ts_us: f64,
    /// Duration in microseconds (complete events only).
    pub dur_us: Option<f64>,
    /// Track (thread) id — distinct ids render as separate rows.
    pub tid: u64,
    /// Extra key/value payload (shown in the slice details pane).
    pub args: Json,
}

impl ChromeEvent {
    /// A complete (`ph: "X"`) slice.
    pub fn complete(name: impl Into<String>, cat: &'static str, ts_us: f64, dur_us: f64, tid: u64) -> ChromeEvent {
        ChromeEvent {
            name: name.into(),
            cat,
            ph: 'X',
            ts_us,
            dur_us: Some(dur_us),
            tid,
            args: Json::obj(),
        }
    }

    /// A counter (`ph: "C"`) sample: each arg becomes one series of
    /// the counter track named `name`, sampled at `ts_us`.
    pub fn counter(name: impl Into<String>, cat: &'static str, ts_us: f64, tid: u64) -> ChromeEvent {
        ChromeEvent {
            name: name.into(),
            cat,
            ph: 'C',
            ts_us,
            dur_us: None,
            tid,
            args: Json::obj(),
        }
    }

    /// A `thread_name` metadata event labelling track `tid`.
    pub fn thread_name(tid: u64, label: &str) -> ChromeEvent {
        ChromeEvent {
            name: "thread_name".into(),
            cat: "__metadata",
            ph: 'M',
            ts_us: 0.0,
            dur_us: None,
            tid,
            args: Json::obj().set("name", label),
        }
    }

    /// Attaches an argument (chainable).
    pub fn arg(mut self, key: &str, value: impl Into<Json>) -> ChromeEvent {
        self.args = self.args.set(key, value);
        self
    }

    fn to_json(&self) -> Json {
        let mut j = Json::obj()
            .set("name", self.name.as_str())
            .set("cat", self.cat)
            .set("ph", self.ph.to_string())
            .set("ts", self.ts_us)
            .set("pid", 1u64)
            .set("tid", self.tid);
        if let Some(d) = self.dur_us {
            j = j.set("dur", d);
        }
        if !matches!(&self.args, Json::Obj(fields) if fields.is_empty()) {
            j = j.set("args", self.args.clone());
        }
        j
    }
}

/// Wraps events into a complete Chrome trace document
/// (`{"traceEvents": [...]}`). Load the written file via
/// `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace(events: &[ChromeEvent]) -> Json {
    Json::obj()
        .set("traceEvents", Json::arr(events.iter().map(|e| e.to_json())))
        .set("displayTimeUnit", "ms")
}

/// A minimal structural validator: checks that `src` is one complete,
/// well-formed JSON value. Used by tests to keep the hand-rolled writer
/// honest without pulling in a parser dependency.
pub fn validate(src: &str) -> Result<(), String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                skip_ws(b, pos);
                parse_value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                parse_value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, "true"),
        Some(b'f') => parse_lit(b, pos, "false"),
        Some(b'n') => parse_lit(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            *pos += 1;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            Ok(())
        }
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos}")),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => *pos += 2,
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_validates() {
        let j = Json::obj()
            .set("name", "Knuth-Bendix")
            .set("instrs", 123456u64)
            .set("ratio", 0.44)
            .set("ok", true)
            .set("nothing", Json::Null)
            .set(
                "phases",
                Json::arr([Json::obj().set("phase", "parse").set("seconds", 0.001)]),
            );
        let s = j.pretty();
        validate(&s).expect("well-formed");
        assert!(s.contains("\"Knuth-Bendix\""));
        assert!(s.ends_with('\n'));
    }

    #[test]
    fn escapes_strings() {
        let s = Json::Str("a\"b\\c\nd\u{1}".into()).pretty();
        validate(&s).expect("well-formed");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let s = Json::Float(f64::NAN).pretty();
        assert_eq!(s.trim(), "null");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate("{").is_err());
        assert!(validate("[1,]").is_err());
        assert!(validate("{} x").is_err());
        assert!(validate("").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::obj().pretty().trim(), "{}");
        assert_eq!(Json::arr([]).pretty().trim(), "[]");
    }

    #[test]
    fn chrome_trace_round_trips() {
        let evs = vec![
            ChromeEvent::thread_name(1, "compile (wall clock)"),
            ChromeEvent::complete("parse", "compile", 0.0, 1500.0, 1),
            ChromeEvent::complete("gc-pause", "runtime", 12_000.0, 800.0, 2)
                .arg("live-words", 4096u64)
                .arg("trigger-pc", 77u64),
        ];
        let s = chrome_trace(&evs).pretty();
        validate(&s).expect("well-formed chrome trace");
        assert!(s.contains("\"traceEvents\""));
        assert!(s.contains("\"ph\": \"X\""));
        assert!(s.contains("\"live-words\""));
    }
}
