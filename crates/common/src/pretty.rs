//! A minimal indentation-aware pretty printer.
//!
//! Each IR crate implements its Section 4-style dumps on top of this
//! printer: `line` starts a fresh indented line, `indent`/`dedent` manage
//! nesting, and `word` appends to the current line.

use std::fmt::Write as _;

/// An append-only pretty printer accumulating into a `String`.
#[derive(Debug, Default)]
pub struct Printer {
    buf: String,
    indent: usize,
    line_open: bool,
}

impl Printer {
    /// A fresh printer.
    pub fn new() -> Printer {
        Printer::default()
    }

    /// Increases the indentation level.
    pub fn indent(&mut self) -> &mut Self {
        self.indent += 1;
        self
    }

    /// Decreases the indentation level.
    pub fn dedent(&mut self) -> &mut Self {
        debug_assert!(self.indent > 0, "unbalanced dedent");
        self.indent = self.indent.saturating_sub(1);
        self
    }

    /// Starts a new line at the current indentation and writes `s`.
    pub fn line(&mut self, s: impl AsRef<str>) -> &mut Self {
        if self.line_open {
            self.buf.push('\n');
        }
        for _ in 0..self.indent {
            self.buf.push_str("  ");
        }
        self.buf.push_str(s.as_ref());
        self.line_open = true;
        self
    }

    /// Appends `s` to the current line (opens one if needed).
    pub fn word(&mut self, s: impl AsRef<str>) -> &mut Self {
        if !self.line_open {
            return self.line(s);
        }
        self.buf.push_str(s.as_ref());
        self
    }

    /// Appends formatted text to the current line.
    pub fn fmt(&mut self, args: std::fmt::Arguments<'_>) -> &mut Self {
        if !self.line_open {
            self.line("");
        }
        let _ = self.buf.write_fmt(args);
        self
    }

    /// Finishes printing and returns the accumulated text.
    pub fn finish(mut self) -> String {
        if self.line_open {
            self.buf.push('\n');
        }
        self.buf
    }
}

/// Renders a comma-separated list via `f`.
pub fn comma_sep<T>(items: &[T], f: impl FnMut(&T) -> String) -> String {
    items.iter().map(f).collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indentation_nests() {
        let mut p = Printer::new();
        p.line("let");
        p.indent();
        p.line("x = 1");
        p.dedent();
        p.line("in x end");
        assert_eq!(p.finish(), "let\n  x = 1\nin x end\n");
    }

    #[test]
    fn word_appends() {
        let mut p = Printer::new();
        p.line("a").word("b").word("c");
        assert_eq!(p.finish(), "abc\n");
    }

    #[test]
    fn comma_sep_joins() {
        assert_eq!(comma_sep(&[1, 2, 3], |n| n.to_string()), "1, 2, 3");
    }
}
