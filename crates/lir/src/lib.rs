//! **LIR** — the target-independent low-level IR sitting between RTL
//! and machine code, plus the [`Target`] abstraction the backend's
//! pluggable code generators implement.
//!
//! RTL is lowered (after register allocation) into [`LirFun`]: the
//! same ALPHA-style operation vocabulary, still over virtual
//! registers, but with everything a code generator needs *resolved
//! and attached* rather than recomputed per target:
//!
//! * the register/slot [`Assignment`] the allocator produced;
//! * a [`SafePoint`] embedded on every instruction that can reach a
//!   collection or a stack walk (calls, runtime-service calls,
//!   allocations), carrying the sorted live-in/live-out virtual
//!   register sets the GC tables are derived from;
//! * the calling-convention signature ([`FunSig`]) the machine-code
//!   verifier checks against;
//! * handler install/uninstall as first-class ops ([`LInstr::PushHandler`],
//!   [`LInstr::PopHandler`]), so every target implements the
//!   exception-chain discipline from the same IR.
//!
//! A [`Target`] supplies the pieces that genuinely differ per machine:
//! the [`RegFile`] the allocator colors against, instruction
//! selection over [`LInstr`], the frame layout ([`FrameLayout`]) that
//! positions spill slots and the return address, and the encoding of
//! the per-site GC tables. The table *content* — which slots hold
//! live traced pointers at a safe point, and which listed slots are
//! provably dead there — is target-independent and derived here
//! ([`frame_info`], [`call_frame_info`]) from the safe-point data, so
//! a new target cannot get the paper's §2.3 invariants wrong by
//! re-deriving them.

#![deny(clippy::unwrap_used)]

use std::collections::HashMap;
use til_common::Var;
use til_runtime::{FrameInfo, LocRep, RepLoc};
use til_vm::{Alu, Falu, RtFn, Trap};

pub use til_rtl::{ArrKind, CallTarget, HeadSpec, Lbl, ROp, RRep, VReg};

/// Machine-level representation class of a calling-convention value,
/// derived from the RTL rep annotations and threaded through the
/// linked unit so the machine-code verifier can check argument and
/// result registers at every call site and return.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MRep {
    /// Raw untraced word (native int or float bits).
    Untraced,
    /// GC-safe traced pointer (or pointer-filtered word).
    Traced,
    /// Baseline-mode tagged word (low-bit-discriminated int/pointer).
    Tagged,
    /// Odd-encoded code value.
    Code,
    /// Rep decided at run time (polymorphic value with a companion).
    Unknown,
}

/// A function's machine-level calling-convention signature.
#[derive(Clone, Debug)]
pub struct FunSig {
    /// Per-parameter rep class, in argument-register order.
    pub params: Vec<MRep>,
    /// Rep class of the returned value.
    pub ret: MRep,
}

/// Maps an RTL rep annotation to its calling-convention class.
pub fn mrep_of(rep: Option<&RRep>, tagged: bool) -> MRep {
    match rep {
        Some(RRep::Int) if tagged => MRep::Tagged,
        Some(RRep::Int) | Some(RRep::Float) if !tagged => MRep::Untraced,
        Some(RRep::Trace) => MRep::Traced,
        Some(RRep::Code) => MRep::Code,
        _ => MRep::Unknown,
    }
}

/// Derives a function's calling-convention signature from its RTL rep
/// annotations: parameter classes straight from the annotations; the
/// result class is the join over every `Ret(Some _)` (functions that
/// diverge or return unit get `Unknown`, which the verifier treats as
/// unconstrained).
pub fn fun_sig(f: &til_rtl::RtlFun, tagged: bool) -> FunSig {
    let mut ret = None;
    for ins in &f.instrs {
        if let til_rtl::RInstr::Ret(Some(v)) = ins {
            let m = mrep_of(f.reps.get(v), tagged);
            ret = Some(match ret {
                None => m,
                Some(prev) if prev == m => m,
                Some(_) => MRep::Unknown,
            });
        }
    }
    FunSig {
        params: f
            .params
            .iter()
            .map(|p| mrep_of(f.reps.get(p), tagged))
            .collect(),
        ret: ret.unwrap_or(MRep::Unknown),
    }
}

/// Relocations a target leaves for its linker to patch.
#[derive(Clone, Debug)]
pub enum Reloc {
    /// Direct branch/call target: the entry of a code block.
    CodeTarget(Var),
    /// Immediate odd-encoded code value (closures).
    CodeImm(Var),
    /// Branch to a trap stub.
    TrapTarget(Trap),
}

/// Where a virtual register lives after allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Loc {
    /// A physical register (a color in `0..RegFile::allocatable`; the
    /// target maps colors to machine registers).
    Reg(u8),
    /// A frame slot index (the target maps indices to byte offsets via
    /// its [`FrameLayout`]).
    Slot(u32),
}

/// The allocator's verdict for one function: virtual-register
/// locations plus the number of frame slots the layout must reserve.
#[derive(Clone, Debug, Default)]
pub struct Assignment {
    /// Location of every virtual register that occurs in the function.
    pub loc: HashMap<VReg, Loc>,
    /// Number of frame slots used.
    pub nslots: u32,
}

impl Assignment {
    /// The location of `v`; allocation covers every vreg that occurs
    /// in the function, so a miss is a lowering bug.
    pub fn loc(&self, v: VReg) -> Loc {
        match self.loc.get(&v) {
            Some(l) => *l,
            None => unreachable!("vreg {v} has no location"),
        }
    }
}

/// The description of a target's allocatable register file, consumed
/// by the (target-independent) register allocator.
#[derive(Clone, Copy, Debug)]
pub struct RegFile {
    /// Target name (diagnostics only).
    pub name: &'static str,
    /// Number of colorable registers; the allocator hands out colors
    /// `0..allocatable` and spills the rest to frame slots.
    pub allocatable: usize,
    /// How many arguments travel in registers. Colors `0..num_args`
    /// must map to the argument registers, in convention order.
    pub num_args: usize,
}

/// A safe point: an instruction at which a collection or a stack walk
/// can observe the frame. Carries the liveness the GC tables are
/// derived from, resolved to *sorted* virtual-register sets so every
/// target derives byte-identical tables from the same data.
#[derive(Clone, Debug)]
pub struct SafePoint {
    /// Index of the originating RTL instruction (the table
    /// cross-checker recomputes liveness from it).
    pub rtl_at: usize,
    /// Vregs live into the instruction, sorted.
    pub live_in: Vec<VReg>,
    /// Vregs live out of the instruction, sorted.
    pub live_out: Vec<VReg>,
}

/// One LIR instruction: the RTL operation vocabulary with safe-point
/// liveness attached where a target must emit GC tables.
#[derive(Clone, Debug)]
pub enum LInstr {
    /// Register/immediate move.
    Mov { dst: VReg, src: ROp },
    /// ALU operation.
    Alu { op: Alu, dst: VReg, a: ROp, b: ROp },
    /// Float operation on raw bits.
    Falu { op: Falu, dst: VReg, a: VReg, b: VReg },
    /// Int → float.
    Itof { dst: VReg, a: VReg },
    /// Load word.
    Ld { dst: VReg, base: VReg, off: i32 },
    /// Store word.
    St { src: VReg, base: VReg, off: i32 },
    /// Load a global slot.
    LdGlobal { dst: VReg, gid: u32 },
    /// Store a global slot.
    StGlobal { src: VReg, gid: u32 },
    /// Load the odd-encoded address of a code block.
    LeaCode { dst: VReg, code: Var },
    /// Load the address of a static object.
    LeaStatic { dst: VReg, obj: u32 },
    /// Local label.
    Label(Lbl),
    /// Unconditional branch.
    Br(Lbl),
    /// Branch if zero.
    Beqz(VReg, Lbl),
    /// Branch if nonzero.
    Bnez(VReg, Lbl),
    /// Non-tail call; a safe point (the callee may collect).
    Call {
        target: CallTarget,
        args: Vec<VReg>,
        dst: Option<VReg>,
        sp: SafePoint,
    },
    /// Tail call: pops the frame and jumps. Not a safe point (nothing
    /// of this frame survives it).
    TailCall { target: CallTarget, args: Vec<VReg> },
    /// Runtime-service call; a safe point (allocating services
    /// collect, stack-walking services parse the frame).
    CallRt {
        f: RtFn,
        args: Vec<VReg>,
        dst: Option<VReg>,
        /// Whether the service may allocate (⇒ emit a GC point).
        alloc: bool,
        sp: SafePoint,
    },
    /// Return.
    Ret(Option<VReg>),
    /// Record/closure/box allocation with GC limit check; a safe
    /// point.
    Alloc {
        dst: VReg,
        head: HeadSpec,
        fields: Vec<ROp>,
        sp: SafePoint,
    },
    /// Array allocation (dynamic length) with GC limit check; a safe
    /// point.
    AllocArr {
        dst: VReg,
        kind: ArrKind,
        len: ROp,
        init: VReg,
        sp: SafePoint,
    },
    /// Install an exception handler (frame handler slot `idx`).
    PushHandler { lbl: Lbl, idx: u32 },
    /// Remove the innermost handler.
    PopHandler { idx: u32 },
    /// Handler entry point: receives the packet from the return/packet
    /// register.
    HandlerEntry { dst: VReg },
    /// Raise: unwind to the innermost handler.
    Raise { packet: VReg },
    /// Trap if the register is nonzero.
    TrapIf { cond: VReg, trap: Trap },
}

/// One function in LIR: the lowered body plus everything instruction
/// selection needs (assignment, rep annotations, signature).
#[derive(Clone, Debug)]
pub struct LirFun {
    /// Name (the code label; `None` for the program entry).
    pub name: Option<Var>,
    /// Parameter vregs, in calling-convention order.
    pub params: Vec<VReg>,
    /// Representation annotations (from RTL).
    pub reps: HashMap<VReg, RRep>,
    /// Maximum handler nesting depth.
    pub nhandlers: u32,
    /// Body.
    pub instrs: Vec<LInstr>,
    /// Register/slot assignment.
    pub assign: Assignment,
    /// Calling-convention signature.
    pub sig: FunSig,
}

/// Per-target frame geometry: where the return address and the spill
/// slots live. The *content* of the GC tables is derived from this
/// plus the safe-point data by [`frame_info`]/[`call_frame_info`];
/// only the geometry is the target's business.
pub trait FrameLayout {
    /// Frame size in bytes (what a stack walk must skip).
    fn frame_size(&self) -> u32;
    /// Byte offset of the return-address slot within the frame.
    fn ra_offset(&self) -> u32;
    /// Byte offset of spill slot `slot` within the frame.
    fn slot_byte_off(&self, slot: u32) -> u32;
}

/// Context shared by every function of a compilation unit during
/// instruction selection.
pub struct TargetCtx<'a> {
    /// Universal tagged representation (baseline) or nearly tag-free.
    pub tagged: bool,
    /// Resolved address of every static object.
    pub statics_addr: &'a [u64],
}

/// A pluggable code generator: a register file for the allocator and
/// instruction selection from LIR to the target's output form.
pub trait Target {
    /// What selecting one function produces (machine code plus
    /// target-encoded tables, in whatever form the target's linker
    /// consumes).
    type Output;

    /// Target name (diagnostics, trace spans).
    fn name(&self) -> &'static str;

    /// The register file the allocator colors against for this target.
    fn reg_file(&self) -> &'static RegFile;

    /// Selects instructions for one function.
    fn select_fun(&self, f: &LirFun, ctx: &TargetCtx) -> Self::Output;
}

// ------------------------------------------------- GC-table derivation

/// The GC descriptor of `v` when observed *from a stable location*
/// during a collection or stack walk: `Trace` for unconditionally
/// traced values; for computed reps, the companion's slot when the
/// companion is itself slotted, else conservatively `Trace` (sound:
/// pointer filtering skips non-pointers). `None` for values the
/// collector ignores.
pub fn loc_rep_slotted(f: &LirFun, layout: &dyn FrameLayout, v: VReg) -> Option<LocRep> {
    match f.reps.get(&v) {
        Some(RRep::Trace) => Some(LocRep::Trace),
        Some(RRep::Computed(rv)) => match f.assign.loc(*rv) {
            Loc::Slot(s) => Some(LocRep::Computed(RepLoc::Slot(layout.slot_byte_off(s)))),
            Loc::Reg(_) => Some(LocRep::Trace),
        },
        _ => None,
    }
}

/// The GC descriptor of `v` when observed from a *register* at a GC
/// point (registers are stable across an in-function collection, so a
/// register-resident companion may be named directly).
pub fn loc_rep_reg(f: &LirFun, layout: &dyn FrameLayout, v: VReg) -> Option<LocRep> {
    match f.reps.get(&v) {
        Some(RRep::Trace) => Some(LocRep::Trace),
        Some(RRep::Computed(rv)) => {
            let loc = match f.assign.loc(*rv) {
                Loc::Reg(r) => RepLoc::Reg(r),
                Loc::Slot(s) => RepLoc::Slot(layout.slot_byte_off(s)),
            };
            Some(LocRep::Computed(loc))
        }
        _ => None,
    }
}

/// The frame descriptor visible at a point where `live` (sorted vregs)
/// are live: every slotted pointer-typed live value, as (byte offset,
/// descriptor), sorted by offset. Tagged mode keeps no slot tables
/// (the collector scans the whole stack by tag).
pub fn frame_info(
    f: &LirFun,
    layout: &dyn FrameLayout,
    tagged: bool,
    live: &[VReg],
) -> FrameInfo {
    let mut slots = Vec::new();
    if !tagged {
        for v in live {
            if let Loc::Slot(s) = f.assign.loc(*v) {
                if let Some(rep) = loc_rep_slotted(f, layout, *v) {
                    slots.push((layout.slot_byte_off(s), rep));
                }
            }
        }
        slots.sort_by_key(|(o, _)| *o);
    }
    FrameInfo {
        size: layout.frame_size(),
        ra_offset: layout.ra_offset(),
        slots,
        dead: vec![],
    }
}

/// A call site's frame descriptor: the slots live *after* the call
/// (what the collector must trace once the callee returns), with the
/// subset that is provably dead at the call instruction itself —
/// slot-resident values in `live_out` but not `live_in`, i.e. the
/// call's own result slot — marked so the machine-code verifier can
/// hold every other listed slot to be genuinely traceable during the
/// callee's stack walk.
pub fn call_frame_info(
    f: &LirFun,
    layout: &dyn FrameLayout,
    tagged: bool,
    sp: &SafePoint,
) -> FrameInfo {
    let mut fi = frame_info(f, layout, tagged, &sp.live_out);
    for v in &sp.live_out {
        if sp.live_in.binary_search(v).is_ok() {
            continue;
        }
        if let Loc::Slot(s) = f.assign.loc(*v) {
            if loc_rep_slotted(f, layout, *v).is_some() {
                fi.dead.push(layout.slot_byte_off(s));
            }
        }
    }
    fi.dead.sort_unstable();
    fi
}
