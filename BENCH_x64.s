# TIL x86-64 backend output (AT&T syntax).
# GC stack maps are derived from the target-independent safe-point
# data; each map is keyed by the return-address label after its call.
	.text

	.globl til_main
til_main:
	subq $24, %rsp
	movq $0, %rbx
	movq %rbx, til_globals+0(%rip)
	movq $0, %rdi
	movq %rdi, til_globals+8(%rip)
	movq $10, %rsi
	movq $10, %rdi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L0_alc1
	movq $24, %rax
	call til_rt_gc
.Lret_0_0:
	# map .Lsm_til_main_0: frame=32 ra_off=24 slots=[] dead=[]
.L0_alc1:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq %rsi, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %r9
	addq $24, %r15
	movq %r9, til_globals+16(%rip)
	movq $11, %rsi
	movq $10, %rdi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L0_alc2
	movq $24, %rax
	call til_rt_gc
.Lret_0_1:
	# map .Lsm_til_main_1: frame=32 ra_off=24 slots=[] dead=[]
.L0_alc2:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq %rsi, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %r8
	addq $24, %r15
	movq %r8, til_globals+24(%rip)
	movq $9, %rsi
	movq $11, %rdi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L0_alc3
	movq $24, %rax
	call til_rt_gc
.Lret_0_2:
	# map .Lsm_til_main_2: frame=32 ra_off=24 slots=[] dead=[]
.L0_alc3:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq %rsi, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rcx
	addq $24, %r15
	movq %rcx, til_globals+32(%rip)
	movq $10, %rsi
	movq $11, %rdi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L0_alc4
	movq $24, %rax
	call til_rt_gc
.Lret_0_3:
	# map .Lsm_til_main_3: frame=32 ra_off=24 slots=[] dead=[]
.L0_alc4:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq %rsi, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdx
	addq $24, %r15
	movq %rdx, til_globals+40(%rip)
	movq $10, %rsi
	movq $12, %rdi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L0_alc5
	movq $24, %rax
	call til_rt_gc
.Lret_0_4:
	# map .Lsm_til_main_4: frame=32 ra_off=24 slots=[] dead=[]
.L0_alc5:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq %rsi, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	movq %rdi, til_globals+48(%rip)
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L0_alc6
	movq $24, %rax
	call til_rt_gc
.Lret_0_5:
	# map .Lsm_til_main_5: frame=32 ra_off=24 slots=[] dead=[]
.L0_alc6:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %rdi, 8(%r15)
	movq %rbx, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	movq %rdi, til_globals+56(%rip)
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L0_alc7
	movq $24, %rax
	call til_rt_gc
.Lret_0_6:
	# map .Lsm_til_main_6: frame=32 ra_off=24 slots=[] dead=[]
.L0_alc7:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %rdx, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	movq %rdi, til_globals+64(%rip)
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L0_alc8
	movq $24, %rax
	call til_rt_gc
.Lret_0_7:
	# map .Lsm_til_main_7: frame=32 ra_off=24 slots=[] dead=[]
.L0_alc8:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %rcx, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	movq %rdi, til_globals+72(%rip)
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L0_alc9
	movq $24, %rax
	call til_rt_gc
.Lret_0_8:
	# map .Lsm_til_main_8: frame=32 ra_off=24 slots=[] dead=[]
.L0_alc9:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %r8, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	movq %rdi, til_globals+80(%rip)
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L0_alc10
	movq $24, %rax
	call til_rt_gc
.Lret_0_9:
	# map .Lsm_til_main_9: frame=32 ra_off=24 slots=[] dead=[]
.L0_alc10:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %r9, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rsi
	addq $24, %r15
	movq %rsi, til_globals+88(%rip)
	leaq til_static_0(%rip), %rax
	movq %rax, 0(%rsp)
	movq 0(%rsp), %rax
	movq %rax, til_globals+96(%rip)
	leaq til_static_1(%rip), %rax
	movq %rax, 8(%rsp)
	movq 8(%rsp), %rax
	movq %rax, til_globals+104(%rip)
	movq $0, %rdi
	movq %rdi, til_globals+112(%rip)
	movq $0, %rdi
	movq %rdi, til_globals+120(%rip)
	movq $18, %rdi
	call til_generations_954_flat_2364
.Lret_0_10:
	# map .Lsm_til_main_10: frame=32 ra_off=24 slots=[(0, Trace), (8, Trace), (16, Trace)] dead=[16]
	movq %rax, 16(%rsp)
	movq 16(%rsp), %rax
	movq %rax, til_globals+128(%rip)
	movq $0, %rdi
	movq 16(%rsp), %rdi
	movq %rdi, %rsi
	call til_len_1100_flat_2390
.Lret_0_11:
	# map .Lsm_til_main_11: frame=32 ra_off=24 slots=[(0, Trace), (8, Trace), (16, Trace)] dead=[]
	movq %rax, %rdi
	movq %rdi, til_globals+136(%rip)
	call til_rt_int_to_str
.Lret_0_12:
	# map .Lsm_til_main_12: frame=32 ra_off=24 slots=[(0, Trace), (8, Trace), (16, Trace)] dead=[]
	movq %rax, %rdi
	movq %rdi, til_globals+144(%rip)
	call til_rt_print_str
.Lret_0_13:
	# map .Lsm_til_main_13: frame=32 ra_off=24 slots=[(0, Trace), (8, Trace), (16, Trace)] dead=[]
	movq $0, %rdi
	movq %rdi, til_globals+152(%rip)
	movq 0(%rsp), %rdi
	call til_rt_print_str
.Lret_0_14:
	# map .Lsm_til_main_14: frame=32 ra_off=24 slots=[(8, Trace), (16, Trace)] dead=[]
	movq $0, %rdi
	movq %rdi, til_globals+160(%rip)
	movq $0, %rdi
	movq 16(%rsp), %rdi
	movq %rdi, %rsi
	call til_sum_979_flat_2389
.Lret_0_15:
	# map .Lsm_til_main_15: frame=32 ra_off=24 slots=[(8, Trace)] dead=[]
	movq %rax, %rdi
	movq %rdi, til_globals+168(%rip)
	call til_rt_int_to_str
.Lret_0_16:
	# map .Lsm_til_main_16: frame=32 ra_off=24 slots=[(8, Trace)] dead=[]
	movq %rax, %rdi
	movq %rdi, til_globals+176(%rip)
	call til_rt_print_str
.Lret_0_17:
	# map .Lsm_til_main_17: frame=32 ra_off=24 slots=[(8, Trace)] dead=[]
	movq $0, %rdi
	movq %rdi, til_globals+184(%rip)
	movq 8(%rsp), %rdi
	call til_rt_print_str
.Lret_0_18:
	# map .Lsm_til_main_18: frame=32 ra_off=24 slots=[] dead=[]
	movq $0, %rdi
	movq %rdi, til_globals+192(%rip)
	addq $24, %rsp
	ret

	.globl til_revAppend_621_flat_2354
til_revAppend_621_flat_2354:
	movq %rsi, %rdx
	movq $0, %rsi
	movq %rdi, %rax
	cmpq $2097152, %rax
	setl %al
	movzbq %al, %rax
	movq %rax, %rsi
	testq %rsi, %rsi
	jnz .L1_b1
	jmp .L1_b2
.L1_b2:
	movq 8(%rdi), %rsi
	movq 16(%rdi), %rdi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L1_alc1
	movq $24, %rax
	call til_rt_gc
.Lret_1_0:
	# map .Lsm_til_revAppend_621_flat_2354_0: frame=8 ra_off=0 slots=[] dead=[]
.L1_alc1:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %rsi, 8(%r15)
	movq %rdx, 16(%r15)
	movq %r15, %rsi
	addq $24, %r15
	jmp til_revAppend_621_flat_2354
.L1_b1:
	movq %rdi, %rax
	cmpq $0, %rax
	sete %al
	movzbq %al, %rax
	movq %rax, %rdi
	testq %rdi, %rdi
	jnz .L1_b3
	jmp .L1_b3
.L1_b3:
	movq %rdx, %rax
	ret
.L1_b0:
	movq %rsi, %rax
	ret

	.globl til_map_1067_unc_2355
til_map_1067_unc_2355:
	subq $24, %rsp
	movq %rdi, 0(%rsp)
	movq %rsi, %rdi
	movq $0, %rsi
	movq %rdi, %rax
	cmpq $2097152, %rax
	setl %al
	movzbq %al, %rax
	movq %rax, %rsi
	testq %rsi, %rsi
	jnz .L2_b1
	jmp .L2_b2
.L2_b2:
	movq 8(%rdi), %rdx
	movq 16(%rdi), %rax
	movq %rax, 8(%rsp)
	movq 0(%rsp), %rax
	movq 8(%rax), %rsi
	movq 0(%rsp), %rax
	movq 16(%rax), %rdi
	movq %rsi, %r11
	sarq $1, %r11
	movq %rdx, %rsi
	call *%r11
.Lret_2_0:
	# map .Lsm_til_map_1067_unc_2355_0: frame=32 ra_off=24 slots=[(0, Trace), (8, Trace), (16, Trace)] dead=[16]
	movq %rax, 16(%rsp)
	movq 0(%rsp), %rdi
	movq 8(%rsp), %rsi
	call til_map_1067_unc_2355
.Lret_2_1:
	# map .Lsm_til_map_1067_unc_2355_1: frame=32 ra_off=24 slots=[(16, Trace)] dead=[]
	movq %rax, %rdi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L2_alc1
	movq $24, %rax
	call til_rt_gc
.Lret_2_2:
	# map .Lsm_til_map_1067_unc_2355_2: frame=32 ra_off=24 slots=[(16, Trace)] dead=[]
.L2_alc1:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq 16(%rsp), %r10
	movq %r10, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	movq %rdi, %rax
	addq $24, %rsp
	ret
.L2_b1:
	movq %rdi, %rax
	cmpq $0, %rax
	sete %al
	movzbq %al, %rax
	movq %rax, %rdi
	testq %rdi, %rdi
	jnz .L2_b3
	jmp .L2_b3
.L2_b3:
	movq til_globals+8(%rip), %rax
	movq %rax, %rdi
	movq %rdi, %rax
	addq $24, %rsp
	ret
.L2_b0:
	movq %rsi, %rax
	addq $24, %rsp
	ret

	.globl til_List_filter_1052_unc_2356
til_List_filter_1052_unc_2356:
	subq $24, %rsp
	movq %rdi, 0(%rsp)
	movq %rsi, %rdi
	movq $0, %rsi
	movq %rdi, %rax
	cmpq $2097152, %rax
	setl %al
	movzbq %al, %rax
	movq %rax, %rsi
	testq %rsi, %rsi
	jnz .L3_b1
	jmp .L3_b2
.L3_b2:
	movq 8(%rdi), %rax
	movq %rax, 8(%rsp)
	movq 16(%rdi), %rax
	movq %rax, 16(%rsp)
	movq 0(%rsp), %rax
	movq 8(%rax), %rsi
	movq 0(%rsp), %rax
	movq 16(%rax), %rdi
	movq %rsi, %r11
	sarq $1, %r11
	movq 8(%rsp), %rsi
	call *%r11
.Lret_3_0:
	# map .Lsm_til_List_filter_1052_unc_2356_0: frame=32 ra_off=24 slots=[(0, Trace), (8, Trace), (16, Trace)] dead=[]
	movq %rax, %rsi
	movq $0, %rdi
	movq %rsi, %rax
	cmpq $1, %rax
	sete %al
	movzbq %al, %rax
	movq %rax, %rdi
	testq %rdi, %rdi
	jnz .L3_b4
	movq 0(%rsp), %rdi
	movq 16(%rsp), %rsi
	addq $24, %rsp
	jmp til_List_filter_1052_unc_2356
.L3_b4:
	movq 0(%rsp), %rdi
	movq 16(%rsp), %rsi
	call til_List_filter_1052_unc_2356
.Lret_3_1:
	# map .Lsm_til_List_filter_1052_unc_2356_1: frame=32 ra_off=24 slots=[(8, Trace)] dead=[]
	movq %rax, %rdi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L3_alc1
	movq $24, %rax
	call til_rt_gc
.Lret_3_2:
	# map .Lsm_til_List_filter_1052_unc_2356_2: frame=32 ra_off=24 slots=[(8, Trace)] dead=[]
.L3_alc1:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq 8(%rsp), %r10
	movq %r10, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	movq %rdi, %rax
	addq $24, %rsp
	ret
.L3_b3:
	movq %rdi, %rax
	addq $24, %rsp
	ret
.L3_b1:
	movq %rdi, %rax
	cmpq $0, %rax
	sete %al
	movzbq %al, %rax
	movq %rax, %rdi
	testq %rdi, %rdi
	jnz .L3_b5
	jmp .L3_b5
.L3_b5:
	movq til_globals+0(%rip), %rax
	movq %rax, %rdi
	movq %rdi, %rax
	addq $24, %rsp
	ret
.L3_b0:
	movq %rsi, %rax
	addq $24, %rsp
	ret

	.globl til_go_1083_flat_2358
til_go_1083_flat_2358:
	movq %rsi, %rdx
	movq $0, %rsi
	movq %rdi, %rax
	cmpq $2097152, %rax
	setl %al
	movzbq %al, %rax
	movq %rax, %rsi
	testq %rsi, %rsi
	jnz .L4_b1
	jmp .L4_b2
.L4_b2:
	movq 8(%rdi), %rsi
	movq 16(%rdi), %rdi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L4_alc1
	movq $24, %rax
	call til_rt_gc
.Lret_4_0:
	# map .Lsm_til_go_1083_flat_2358_0: frame=8 ra_off=0 slots=[] dead=[]
.L4_alc1:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %rsi, 8(%r15)
	movq %rdx, 16(%r15)
	movq %r15, %rsi
	addq $24, %r15
	jmp til_go_1083_flat_2358
.L4_b1:
	movq %rdi, %rax
	cmpq $0, %rax
	sete %al
	movzbq %al, %rax
	movq %rax, %rdi
	testq %rdi, %rdi
	jnz .L4_b3
	jmp .L4_b3
.L4_b3:
	movq %rdx, %rax
	ret
.L4_b0:
	movq %rsi, %rax
	ret

	.globl til_List_concat_2357
til_List_concat_2357:
	subq $24, %rsp
	movq %rdi, %rsi
	movq $0, %rdi
	movq %rsi, %rax
	cmpq $2097152, %rax
	setl %al
	movzbq %al, %rax
	movq %rax, %rdi
	testq %rdi, %rdi
	jnz .L5_b1
	jmp .L5_b2
.L5_b2:
	movq 8(%rsi), %rax
	movq %rax, 0(%rsp)
	movq 16(%rsi), %rdi
	call til_List_concat_2357
.Lret_5_0:
	# map .Lsm_til_List_concat_2357_0: frame=32 ra_off=24 slots=[(0, Trace), (8, Trace)] dead=[8]
	movq %rax, 8(%rsp)
	movq til_globals+0(%rip), %rax
	movq %rax, %rdi
	movq 0(%rsp), %rdi
	movq %rdi, %rsi
	call til_go_1083_flat_2358
.Lret_5_1:
	# map .Lsm_til_List_concat_2357_1: frame=32 ra_off=24 slots=[(8, Trace)] dead=[]
	movq %rax, %rdi
	movq 8(%rsp), %rsi
	addq $24, %rsp
	jmp til_revAppend_621_flat_2354
.L5_b1:
	movq %rsi, %rax
	cmpq $0, %rax
	sete %al
	movzbq %al, %rax
	movq %rax, %rdi
	testq %rdi, %rdi
	jnz .L5_b3
	jmp .L5_b3
.L5_b3:
	movq til_globals+0(%rip), %rax
	movq %rax, %rdi
	movq %rdi, %rax
	addq $24, %rsp
	ret
.L5_b0:
	movq %rdi, %rax
	addq $24, %rsp
	ret

	.globl til_member_1025_flat_2359
til_member_1025_flat_2359:
	movq %rsi, %rdx
	movq $0, %rsi
	movq %rdx, %rax
	cmpq $2097152, %rax
	setl %al
	movzbq %al, %rax
	movq %rax, %rsi
	testq %rsi, %rsi
	jnz .L6_b1
	jmp .L6_b2
.L6_b2:
	movq 8(%rdx), %rsi
	movq 16(%rdx), %r8
	movq 8(%rdi), %rcx
	movq 16(%rdi), %rdx
	movq 8(%rsi), %rdi
	movq %rcx, %rax
	cmpq %rdi, %rax
	sete %al
	movzbq %al, %rax
	movq %rax, %rdi
	movq %rdi, %rax
	cmpq $1, %rax
	sete %al
	movzbq %al, %rax
	movq %rax, %rdi
	testq %rdi, %rdi
	jnz .L6_b4
	movq $0, %rdi
	movq %rdi, %rsi
	jmp .L6_b3
.L6_b4:
	movq 16(%rsi), %rdi
	movq %rdx, %rax
	cmpq %rdi, %rax
	sete %al
	movzbq %al, %rax
	movq %rax, %rdi
	movq %rdi, %rsi
	jmp .L6_b3
.L6_b3:
	movq $0, %rdi
	movq %rsi, %rax
	cmpq $1, %rax
	sete %al
	movzbq %al, %rax
	movq %rax, %rdi
	testq %rdi, %rdi
	jnz .L6_b6
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L6_alc1
	movq $24, %rax
	call til_rt_gc
.Lret_6_0:
	# map .Lsm_til_member_1025_flat_2359_0: frame=8 ra_off=0 slots=[] dead=[]
.L6_alc1:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq %rcx, 8(%r15)
	movq %rdx, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	movq %r8, %rsi
	jmp til_member_1025_flat_2359
.L6_b6:
	movq $1, %rdi
	movq %rdi, %rax
	ret
.L6_b5:
	movq %rdi, %rax
	ret
.L6_b1:
	movq %rdx, %rax
	cmpq $0, %rax
	sete %al
	movzbq %al, %rax
	movq %rax, %rdi
	testq %rdi, %rdi
	jnz .L6_b7
	jmp .L6_b7
.L6_b7:
	movq $0, %rdi
	movq %rdi, %rax
	ret
.L6_b0:
	movq %rsi, %rax
	ret

	.globl til_neighbours_2361
til_neighbours_2361:
	subq $8, %rsp
	movq %rsi, %rax
	movq %rdi, %rsi
	movq %rax, %rdi
	movq 8(%rdi), %rax
	movq %rax, 0(%rsp)
	movq 16(%rdi), %rcx
	movq $1, %rdi
	movq 0(%rsp), %rax
	subq %rdi, %rax
	jo til_rt_trap_overflow
	movq %rax, %rdx
	movq $1, %rdi
	movq %rcx, %rax
	subq %rdi, %rax
	jo til_rt_trap_overflow
	movq %rax, %rdi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L7_alc1
	movq $24, %rax
	call til_rt_gc
.Lret_7_0:
	# map .Lsm_til_neighbours_2361_0: frame=16 ra_off=8 slots=[] dead=[]
.L7_alc1:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq %rdx, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %r12
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L7_alc2
	movq $24, %rax
	call til_rt_gc
.Lret_7_1:
	# map .Lsm_til_neighbours_2361_1: frame=16 ra_off=8 slots=[] dead=[]
.L7_alc2:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq 0(%rsp), %r10
	movq %r10, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rbp
	addq $24, %r15
	movq $1, %rsi
	movq 0(%rsp), %rax
	addq %rsi, %rax
	jo til_rt_trap_overflow
	movq %rax, %rsi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L7_alc3
	movq $24, %rax
	call til_rt_gc
.Lret_7_2:
	# map .Lsm_til_neighbours_2361_2: frame=16 ra_off=8 slots=[] dead=[]
.L7_alc3:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq %rsi, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rbx
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L7_alc4
	movq $24, %rax
	call til_rt_gc
.Lret_7_3:
	# map .Lsm_til_neighbours_2361_3: frame=16 ra_off=8 slots=[] dead=[]
.L7_alc4:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq %rdx, 8(%r15)
	movq %rcx, 16(%r15)
	movq %r15, %r9
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L7_alc5
	movq $24, %rax
	call til_rt_gc
.Lret_7_4:
	# map .Lsm_til_neighbours_2361_4: frame=16 ra_off=8 slots=[] dead=[]
.L7_alc5:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq %rsi, 8(%r15)
	movq %rcx, 16(%r15)
	movq %r15, %r8
	addq $24, %r15
	movq $1, %rdi
	movq %rcx, %rax
	addq %rdi, %rax
	jo til_rt_trap_overflow
	movq %rax, %rdi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L7_alc6
	movq $24, %rax
	call til_rt_gc
.Lret_7_5:
	# map .Lsm_til_neighbours_2361_5: frame=16 ra_off=8 slots=[] dead=[]
.L7_alc6:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq %rdx, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rcx
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L7_alc7
	movq $24, %rax
	call til_rt_gc
.Lret_7_6:
	# map .Lsm_til_neighbours_2361_6: frame=16 ra_off=8 slots=[] dead=[]
.L7_alc7:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq 0(%rsp), %r10
	movq %r10, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdx
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L7_alc8
	movq $24, %rax
	call til_rt_gc
.Lret_7_7:
	# map .Lsm_til_neighbours_2361_7: frame=16 ra_off=8 slots=[] dead=[]
.L7_alc8:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq %rsi, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rsi
	addq $24, %r15
	movq til_globals+0(%rip), %rax
	movq %rax, %rdi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L7_alc9
	movq $24, %rax
	call til_rt_gc
.Lret_7_8:
	# map .Lsm_til_neighbours_2361_8: frame=16 ra_off=8 slots=[] dead=[]
.L7_alc9:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %rsi, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L7_alc10
	movq $24, %rax
	call til_rt_gc
.Lret_7_9:
	# map .Lsm_til_neighbours_2361_9: frame=16 ra_off=8 slots=[] dead=[]
.L7_alc10:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %rdx, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L7_alc11
	movq $24, %rax
	call til_rt_gc
.Lret_7_10:
	# map .Lsm_til_neighbours_2361_10: frame=16 ra_off=8 slots=[] dead=[]
.L7_alc11:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %rcx, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L7_alc12
	movq $24, %rax
	call til_rt_gc
.Lret_7_11:
	# map .Lsm_til_neighbours_2361_11: frame=16 ra_off=8 slots=[] dead=[]
.L7_alc12:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %r8, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L7_alc13
	movq $24, %rax
	call til_rt_gc
.Lret_7_12:
	# map .Lsm_til_neighbours_2361_12: frame=16 ra_off=8 slots=[] dead=[]
.L7_alc13:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %r9, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L7_alc14
	movq $24, %rax
	call til_rt_gc
.Lret_7_13:
	# map .Lsm_til_neighbours_2361_13: frame=16 ra_off=8 slots=[] dead=[]
.L7_alc14:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %rbx, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L7_alc15
	movq $24, %rax
	call til_rt_gc
.Lret_7_14:
	# map .Lsm_til_neighbours_2361_14: frame=16 ra_off=8 slots=[] dead=[]
.L7_alc15:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %rbp, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L7_alc16
	movq $24, %rax
	call til_rt_gc
.Lret_7_15:
	# map .Lsm_til_neighbours_2361_15: frame=16 ra_off=8 slots=[] dead=[]
.L7_alc16:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %r12, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	movq %rdi, %rax
	addq $8, %rsp
	ret

	.globl til_dedup_2363
til_dedup_2363:
	subq $24, %rsp
	movq %rdi, %rsi
	movq $0, %rdi
	movq %rsi, %rax
	cmpq $2097152, %rax
	setl %al
	movzbq %al, %rax
	movq %rax, %rdi
	testq %rdi, %rdi
	jnz .L8_b1
	jmp .L8_b2
.L8_b2:
	movq 8(%rsi), %rax
	movq %rax, 0(%rsp)
	movq 16(%rsi), %rax
	movq %rax, 8(%rsp)
	movq 0(%rsp), %rdi
	movq 8(%rsp), %rsi
	call til_member_1025_flat_2359
.Lret_8_0:
	# map .Lsm_til_dedup_2363_0: frame=32 ra_off=24 slots=[(0, Trace), (8, Trace)] dead=[]
	movq %rax, %rsi
	movq $0, %rdi
	movq %rsi, %rax
	cmpq $1, %rax
	sete %al
	movzbq %al, %rax
	movq %rax, %rdi
	testq %rdi, %rdi
	jnz .L8_b4
	movq 8(%rsp), %rdi
	call til_dedup_2363
.Lret_8_1:
	# map .Lsm_til_dedup_2363_1: frame=32 ra_off=24 slots=[(0, Trace)] dead=[]
	movq %rax, %rdi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L8_alc1
	movq $24, %rax
	call til_rt_gc
.Lret_8_2:
	# map .Lsm_til_dedup_2363_2: frame=32 ra_off=24 slots=[(0, Trace)] dead=[]
.L8_alc1:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq 0(%rsp), %r10
	movq %r10, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	movq %rdi, %rax
	addq $24, %rsp
	ret
.L8_b4:
	movq 8(%rsp), %rdi
	addq $24, %rsp
	jmp til_dedup_2363
.L8_b3:
	movq %rdi, %rax
	addq $24, %rsp
	ret
.L8_b1:
	movq %rsi, %rax
	cmpq $0, %rax
	sete %al
	movzbq %al, %rax
	movq %rax, %rdi
	testq %rdi, %rdi
	jnz .L8_b5
	jmp .L8_b5
.L8_b5:
	movq til_globals+0(%rip), %rax
	movq %rax, %rdi
	movq %rdi, %rax
	addq $24, %rsp
	ret
.L8_b0:
	movq %rdi, %rax
	addq $24, %rsp
	ret

	.globl til_anon_2370
til_anon_2370:
	movq %rsi, %rax
	movq %rdi, %rsi
	movq %rax, %rdi
	movq 8(%rsi), %rdx
	movq 8(%rdi), %rsi
	movq 16(%rdi), %rdi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L9_alc1
	movq $24, %rax
	call til_rt_gc
.Lret_9_0:
	# map .Lsm_til_anon_2370_0: frame=8 ra_off=0 slots=[] dead=[]
.L9_alc1:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq %rsi, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	movq %rdx, %rsi
	jmp til_member_1025_flat_2359

	.globl til_len_1100_flat_2374
til_len_1100_flat_2374:
	movq %rsi, %rdx
	movq %rdi, %rsi
	movq $0, %rdi
	movq %rsi, %rax
	cmpq $2097152, %rax
	setl %al
	movzbq %al, %rax
	movq %rax, %rdi
	testq %rdi, %rdi
	jnz .L10_b1
	jmp .L10_b2
.L10_b2:
	movq 8(%rsi), %rdi
	movq 16(%rsi), %rsi
	movq $1, %rdi
	movq %rdx, %rax
	addq %rdi, %rax
	jo til_rt_trap_overflow
	movq %rax, %rdi
	movq %rdi, %rax
	movq %rsi, %rdi
	movq %rax, %rsi
	jmp til_len_1100_flat_2374
.L10_b1:
	movq %rsi, %rax
	cmpq $0, %rax
	sete %al
	movzbq %al, %rax
	movq %rax, %rdi
	testq %rdi, %rdi
	jnz .L10_b3
	jmp .L10_b3
.L10_b3:
	movq %rdx, %rax
	ret
.L10_b0:
	movq %rdi, %rax
	ret

	.globl til_anon_2366
til_anon_2366:
	subq $24, %rsp
	movq 8(%rdi), %rdi
	movq 8(%rsi), %rax
	movq %rax, 0(%rsp)
	movq 16(%rsi), %rcx
	leaq 16(%r15), %rax
	cmpq %r14, %rax
	jbe .L11_alc1
	movq $16, %rax
	call til_rt_gc
.Lret_11_0:
	# map .Lsm_til_anon_2366_0: frame=32 ra_off=24 slots=[] dead=[]
.L11_alc1:
	movabsq $4294967304, %rax
	movq %rax, 0(%r15)
	movq %rdi, 8(%r15)
	movq %r15, 8(%rsp)
	addq $16, %r15
	movq $1, %rdi
	movq 0(%rsp), %rax
	subq %rdi, %rax
	jo til_rt_trap_overflow
	movq %rax, %rdx
	movq $1, %rdi
	movq %rcx, %rax
	subq %rdi, %rax
	jo til_rt_trap_overflow
	movq %rax, %rdi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L11_alc2
	movq $24, %rax
	call til_rt_gc
.Lret_11_1:
	# map .Lsm_til_anon_2366_1: frame=32 ra_off=24 slots=[(8, Trace)] dead=[]
.L11_alc2:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq %rdx, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %r12
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L11_alc3
	movq $24, %rax
	call til_rt_gc
.Lret_11_2:
	# map .Lsm_til_anon_2366_2: frame=32 ra_off=24 slots=[(8, Trace)] dead=[]
.L11_alc3:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq 0(%rsp), %r10
	movq %r10, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rbp
	addq $24, %r15
	movq $1, %rsi
	movq 0(%rsp), %rax
	addq %rsi, %rax
	jo til_rt_trap_overflow
	movq %rax, %rsi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L11_alc4
	movq $24, %rax
	call til_rt_gc
.Lret_11_3:
	# map .Lsm_til_anon_2366_3: frame=32 ra_off=24 slots=[(8, Trace)] dead=[]
.L11_alc4:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq %rsi, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rbx
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L11_alc5
	movq $24, %rax
	call til_rt_gc
.Lret_11_4:
	# map .Lsm_til_anon_2366_4: frame=32 ra_off=24 slots=[(8, Trace)] dead=[]
.L11_alc5:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq %rdx, 8(%r15)
	movq %rcx, 16(%r15)
	movq %r15, %r9
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L11_alc6
	movq $24, %rax
	call til_rt_gc
.Lret_11_5:
	# map .Lsm_til_anon_2366_5: frame=32 ra_off=24 slots=[(8, Trace)] dead=[]
.L11_alc6:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq %rsi, 8(%r15)
	movq %rcx, 16(%r15)
	movq %r15, %r8
	addq $24, %r15
	movq $1, %rdi
	movq %rcx, %rax
	addq %rdi, %rax
	jo til_rt_trap_overflow
	movq %rax, %rdi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L11_alc7
	movq $24, %rax
	call til_rt_gc
.Lret_11_6:
	# map .Lsm_til_anon_2366_6: frame=32 ra_off=24 slots=[(8, Trace)] dead=[]
.L11_alc7:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq %rdx, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rcx
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L11_alc8
	movq $24, %rax
	call til_rt_gc
.Lret_11_7:
	# map .Lsm_til_anon_2366_7: frame=32 ra_off=24 slots=[(8, Trace)] dead=[]
.L11_alc8:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq 0(%rsp), %r10
	movq %r10, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdx
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L11_alc9
	movq $24, %rax
	call til_rt_gc
.Lret_11_8:
	# map .Lsm_til_anon_2366_8: frame=32 ra_off=24 slots=[(8, Trace)] dead=[]
.L11_alc9:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq %rsi, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rsi
	addq $24, %r15
	movq til_globals+0(%rip), %rax
	movq %rax, %rdi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L11_alc10
	movq $24, %rax
	call til_rt_gc
.Lret_11_9:
	# map .Lsm_til_anon_2366_9: frame=32 ra_off=24 slots=[(8, Trace)] dead=[]
.L11_alc10:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %rsi, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L11_alc11
	movq $24, %rax
	call til_rt_gc
.Lret_11_10:
	# map .Lsm_til_anon_2366_10: frame=32 ra_off=24 slots=[(8, Trace)] dead=[]
.L11_alc11:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %rdx, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L11_alc12
	movq $24, %rax
	call til_rt_gc
.Lret_11_11:
	# map .Lsm_til_anon_2366_11: frame=32 ra_off=24 slots=[(8, Trace)] dead=[]
.L11_alc12:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %rcx, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L11_alc13
	movq $24, %rax
	call til_rt_gc
.Lret_11_12:
	# map .Lsm_til_anon_2366_12: frame=32 ra_off=24 slots=[(8, Trace)] dead=[]
.L11_alc13:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %r8, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L11_alc14
	movq $24, %rax
	call til_rt_gc
.Lret_11_13:
	# map .Lsm_til_anon_2366_13: frame=32 ra_off=24 slots=[(8, Trace)] dead=[]
.L11_alc14:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %r9, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L11_alc15
	movq $24, %rax
	call til_rt_gc
.Lret_11_14:
	# map .Lsm_til_anon_2366_14: frame=32 ra_off=24 slots=[(8, Trace)] dead=[]
.L11_alc15:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %rbx, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L11_alc16
	movq $24, %rax
	call til_rt_gc
.Lret_11_15:
	# map .Lsm_til_anon_2366_15: frame=32 ra_off=24 slots=[(8, Trace)] dead=[]
.L11_alc16:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %rbp, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L11_alc17
	movq $24, %rax
	call til_rt_gc
.Lret_11_16:
	# map .Lsm_til_anon_2366_16: frame=32 ra_off=24 slots=[(8, Trace)] dead=[]
.L11_alc17:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %r12, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rsi
	addq $24, %r15
	leaq til_anon_2370(%rip), %rax
	leaq 1(%rax,%rax), %rax
	movq %rax, %rdi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L11_alc18
	movq $24, %rax
	call til_rt_gc
.Lret_11_17:
	# map .Lsm_til_anon_2366_17: frame=32 ra_off=24 slots=[(8, Trace)] dead=[]
.L11_alc18:
	movabsq $8589934608, %rax
	movq %rax, 0(%r15)
	movq %rdi, 8(%r15)
	movq 8(%rsp), %r10
	movq %r10, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	call til_List_filter_1052_unc_2356
.Lret_11_18:
	# map .Lsm_til_anon_2366_18: frame=32 ra_off=24 slots=[] dead=[]
	movq %rax, %rsi
	movq $0, %rdi
	movq %rdi, %rax
	movq %rsi, %rdi
	movq %rax, %rsi
	call til_len_1100_flat_2374
.Lret_11_19:
	# map .Lsm_til_anon_2366_19: frame=32 ra_off=24 slots=[] dead=[]
	movq %rax, %rdx
	movq $2, %rdi
	movq %rdx, %rax
	cmpq %rdi, %rax
	sete %al
	movzbq %al, %rax
	movq %rax, %rsi
	movq $0, %rdi
	movq %rsi, %rax
	cmpq $1, %rax
	sete %al
	movzbq %al, %rax
	movq %rax, %rdi
	testq %rdi, %rdi
	jnz .L11_b1
	movq $3, %rdi
	movq %rdx, %rax
	cmpq %rdi, %rax
	sete %al
	movzbq %al, %rax
	movq %rax, %rdi
	movq %rdi, %rax
	addq $24, %rsp
	ret
.L11_b1:
	movq $1, %rdi
	movq %rdi, %rax
	addq $24, %rsp
	ret
.L11_b0:
	movq %rdi, %rax
	addq $24, %rsp
	ret

	.globl til_anon_2382
til_anon_2382:
	movq %rsi, %rax
	movq %rdi, %rsi
	movq %rax, %rdi
	movq 8(%rsi), %rdx
	movq 8(%rdi), %rsi
	movq 16(%rdi), %rdi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L12_alc1
	movq $24, %rax
	call til_rt_gc
.Lret_12_0:
	# map .Lsm_til_anon_2382_0: frame=8 ra_off=0 slots=[] dead=[]
.L12_alc1:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq %rsi, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	movq %rdx, %rsi
	jmp til_member_1025_flat_2359

	.globl til_len_1100_flat_2386
til_len_1100_flat_2386:
	movq %rsi, %rdx
	movq %rdi, %rsi
	movq $0, %rdi
	movq %rsi, %rax
	cmpq $2097152, %rax
	setl %al
	movzbq %al, %rax
	movq %rax, %rdi
	testq %rdi, %rdi
	jnz .L13_b1
	jmp .L13_b2
.L13_b2:
	movq 8(%rsi), %rdi
	movq 16(%rsi), %rsi
	movq $1, %rdi
	movq %rdx, %rax
	addq %rdi, %rax
	jo til_rt_trap_overflow
	movq %rax, %rdi
	movq %rdi, %rax
	movq %rsi, %rdi
	movq %rax, %rsi
	jmp til_len_1100_flat_2386
.L13_b1:
	movq %rsi, %rax
	cmpq $0, %rax
	sete %al
	movzbq %al, %rax
	movq %rax, %rdi
	testq %rdi, %rdi
	jnz .L13_b3
	jmp .L13_b3
.L13_b3:
	movq %rdx, %rax
	ret
.L13_b0:
	movq %rdi, %rax
	ret

	.globl til_isBirth_2378
til_isBirth_2378:
	subq $40, %rsp
	movq %rsi, %rax
	movq %rdi, %rsi
	movq %rax, %rdi
	movq 8(%rsi), %rax
	movq %rax, 0(%rsp)
	movq 8(%rdi), %rax
	movq %rax, 8(%rsp)
	movq 16(%rdi), %rax
	movq %rax, 16(%rsp)
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L14_alc1
	movq $24, %rax
	call til_rt_gc
.Lret_14_0:
	# map .Lsm_til_isBirth_2378_0: frame=48 ra_off=40 slots=[(0, Trace)] dead=[]
.L14_alc1:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq 8(%rsp), %r10
	movq %r10, 8(%r15)
	movq 16(%rsp), %r10
	movq %r10, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	movq 0(%rsp), %rsi
	call til_member_1025_flat_2359
.Lret_14_1:
	# map .Lsm_til_isBirth_2378_1: frame=48 ra_off=40 slots=[(0, Trace)] dead=[]
	movq %rax, %rdi
	movq %rdi, %rax
	cmpq $1, %rax
	sete %al
	movzbq %al, %rax
	movq %rax, %rdi
	testq %rdi, %rdi
	jnz .L14_b1
	movq $1, %rdi
	movq %rdi, %rsi
	jmp .L14_b0
.L14_b1:
	movq $0, %rdi
	movq %rdi, %rsi
	jmp .L14_b0
.L14_b0:
	movq $0, %rdi
	movq %rsi, %rax
	cmpq $1, %rax
	sete %al
	movzbq %al, %rax
	movq %rax, %rdi
	testq %rdi, %rdi
	jnz .L14_b3
	movq $0, %rdi
	movq %rdi, %rax
	addq $40, %rsp
	ret
.L14_b3:
	leaq 16(%r15), %rax
	cmpq %r14, %rax
	jbe .L14_alc2
	movq $16, %rax
	call til_rt_gc
.Lret_14_2:
	# map .Lsm_til_isBirth_2378_2: frame=48 ra_off=40 slots=[(0, Trace)] dead=[]
.L14_alc2:
	movabsq $4294967304, %rax
	movq %rax, 0(%r15)
	movq 0(%rsp), %r10
	movq %r10, 8(%r15)
	movq %r15, 24(%rsp)
	addq $16, %r15
	movq $1, %rdi
	movq 8(%rsp), %rax
	subq %rdi, %rax
	jo til_rt_trap_overflow
	movq %rax, %rdx
	movq $1, %rdi
	movq 16(%rsp), %rax
	subq %rdi, %rax
	jo til_rt_trap_overflow
	movq %rax, %rdi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L14_alc3
	movq $24, %rax
	call til_rt_gc
.Lret_14_3:
	# map .Lsm_til_isBirth_2378_3: frame=48 ra_off=40 slots=[(24, Trace)] dead=[]
.L14_alc3:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq %rdx, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %r12
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L14_alc4
	movq $24, %rax
	call til_rt_gc
.Lret_14_4:
	# map .Lsm_til_isBirth_2378_4: frame=48 ra_off=40 slots=[(24, Trace)] dead=[]
.L14_alc4:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq 8(%rsp), %r10
	movq %r10, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rbp
	addq $24, %r15
	movq $1, %rsi
	movq 8(%rsp), %rax
	addq %rsi, %rax
	jo til_rt_trap_overflow
	movq %rax, %rsi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L14_alc5
	movq $24, %rax
	call til_rt_gc
.Lret_14_5:
	# map .Lsm_til_isBirth_2378_5: frame=48 ra_off=40 slots=[(24, Trace)] dead=[]
.L14_alc5:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq %rsi, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rbx
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L14_alc6
	movq $24, %rax
	call til_rt_gc
.Lret_14_6:
	# map .Lsm_til_isBirth_2378_6: frame=48 ra_off=40 slots=[(24, Trace)] dead=[]
.L14_alc6:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq %rdx, 8(%r15)
	movq 16(%rsp), %r10
	movq %r10, 16(%r15)
	movq %r15, %r9
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L14_alc7
	movq $24, %rax
	call til_rt_gc
.Lret_14_7:
	# map .Lsm_til_isBirth_2378_7: frame=48 ra_off=40 slots=[(24, Trace)] dead=[]
.L14_alc7:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq %rsi, 8(%r15)
	movq 16(%rsp), %r10
	movq %r10, 16(%r15)
	movq %r15, %r8
	addq $24, %r15
	movq $1, %rdi
	movq 16(%rsp), %rax
	addq %rdi, %rax
	jo til_rt_trap_overflow
	movq %rax, %rdi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L14_alc8
	movq $24, %rax
	call til_rt_gc
.Lret_14_8:
	# map .Lsm_til_isBirth_2378_8: frame=48 ra_off=40 slots=[(24, Trace)] dead=[]
.L14_alc8:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq %rdx, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rcx
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L14_alc9
	movq $24, %rax
	call til_rt_gc
.Lret_14_9:
	# map .Lsm_til_isBirth_2378_9: frame=48 ra_off=40 slots=[(24, Trace)] dead=[]
.L14_alc9:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq 8(%rsp), %r10
	movq %r10, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdx
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L14_alc10
	movq $24, %rax
	call til_rt_gc
.Lret_14_10:
	# map .Lsm_til_isBirth_2378_10: frame=48 ra_off=40 slots=[(24, Trace)] dead=[]
.L14_alc10:
	movabsq $16, %rax
	movq %rax, 0(%r15)
	movq %rsi, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rsi
	addq $24, %r15
	movq til_globals+0(%rip), %rax
	movq %rax, %rdi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L14_alc11
	movq $24, %rax
	call til_rt_gc
.Lret_14_11:
	# map .Lsm_til_isBirth_2378_11: frame=48 ra_off=40 slots=[(24, Trace)] dead=[]
.L14_alc11:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %rsi, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L14_alc12
	movq $24, %rax
	call til_rt_gc
.Lret_14_12:
	# map .Lsm_til_isBirth_2378_12: frame=48 ra_off=40 slots=[(24, Trace)] dead=[]
.L14_alc12:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %rdx, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L14_alc13
	movq $24, %rax
	call til_rt_gc
.Lret_14_13:
	# map .Lsm_til_isBirth_2378_13: frame=48 ra_off=40 slots=[(24, Trace)] dead=[]
.L14_alc13:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %rcx, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L14_alc14
	movq $24, %rax
	call til_rt_gc
.Lret_14_14:
	# map .Lsm_til_isBirth_2378_14: frame=48 ra_off=40 slots=[(24, Trace)] dead=[]
.L14_alc14:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %r8, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L14_alc15
	movq $24, %rax
	call til_rt_gc
.Lret_14_15:
	# map .Lsm_til_isBirth_2378_15: frame=48 ra_off=40 slots=[(24, Trace)] dead=[]
.L14_alc15:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %r9, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L14_alc16
	movq $24, %rax
	call til_rt_gc
.Lret_14_16:
	# map .Lsm_til_isBirth_2378_16: frame=48 ra_off=40 slots=[(24, Trace)] dead=[]
.L14_alc16:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %rbx, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L14_alc17
	movq $24, %rax
	call til_rt_gc
.Lret_14_17:
	# map .Lsm_til_isBirth_2378_17: frame=48 ra_off=40 slots=[(24, Trace)] dead=[]
.L14_alc17:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %rbp, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L14_alc18
	movq $24, %rax
	call til_rt_gc
.Lret_14_18:
	# map .Lsm_til_isBirth_2378_18: frame=48 ra_off=40 slots=[(24, Trace)] dead=[]
.L14_alc18:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %r12, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rsi
	addq $24, %r15
	leaq til_anon_2382(%rip), %rax
	leaq 1(%rax,%rax), %rax
	movq %rax, %rdi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L14_alc19
	movq $24, %rax
	call til_rt_gc
.Lret_14_19:
	# map .Lsm_til_isBirth_2378_19: frame=48 ra_off=40 slots=[(24, Trace)] dead=[]
.L14_alc19:
	movabsq $8589934608, %rax
	movq %rax, 0(%r15)
	movq %rdi, 8(%r15)
	movq 24(%rsp), %r10
	movq %r10, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	call til_List_filter_1052_unc_2356
.Lret_14_20:
	# map .Lsm_til_isBirth_2378_20: frame=48 ra_off=40 slots=[] dead=[]
	movq %rax, %rsi
	movq $0, %rdi
	movq %rdi, %rax
	movq %rsi, %rdi
	movq %rax, %rsi
	call til_len_1100_flat_2386
.Lret_14_21:
	# map .Lsm_til_isBirth_2378_21: frame=48 ra_off=40 slots=[] dead=[]
	movq %rax, %rsi
	movq $3, %rdi
	movq %rsi, %rax
	cmpq %rdi, %rax
	sete %al
	movzbq %al, %rax
	movq %rax, %rdi
	movq %rdi, %rax
	addq $40, %rsp
	ret
.L14_b2:
	movq %rdi, %rax
	addq $40, %rsp
	ret

	.globl til_go_1083_flat_2388
til_go_1083_flat_2388:
	movq %rsi, %rdx
	movq $0, %rsi
	movq %rdi, %rax
	cmpq $2097152, %rax
	setl %al
	movzbq %al, %rax
	movq %rax, %rsi
	testq %rsi, %rsi
	jnz .L15_b1
	jmp .L15_b2
.L15_b2:
	movq 8(%rdi), %rsi
	movq 16(%rdi), %rdi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L15_alc1
	movq $24, %rax
	call til_rt_gc
.Lret_15_0:
	# map .Lsm_til_go_1083_flat_2388_0: frame=8 ra_off=0 slots=[] dead=[]
.L15_alc1:
	movabsq $12884901904, %rax
	movq %rax, 0(%r15)
	movq %rsi, 8(%r15)
	movq %rdx, 16(%r15)
	movq %r15, %rsi
	addq $24, %r15
	jmp til_go_1083_flat_2388
.L15_b1:
	movq %rdi, %rax
	cmpq $0, %rax
	sete %al
	movzbq %al, %rax
	movq %rax, %rdi
	testq %rdi, %rdi
	jnz .L15_b3
	jmp .L15_b3
.L15_b3:
	movq %rdx, %rax
	ret
.L15_b0:
	movq %rsi, %rax
	ret

	.globl til_generations_954_flat_2364
til_generations_954_flat_2364:
	subq $40, %rsp
	movq %rsi, 0(%rsp)
	movq $0, %rsi
	movq %rdi, %rax
	cmpq $0, %rax
	sete %al
	movzbq %al, %rax
	movq %rax, %rsi
	testq %rsi, %rsi
	jnz .L16_b1
	movq $1, %rsi
	movq %rdi, %rax
	subq %rsi, %rax
	jo til_rt_trap_overflow
	movq %rax, 8(%rsp)
	leaq 16(%r15), %rax
	cmpq %r14, %rax
	jbe .L16_alc1
	movq $16, %rax
	call til_rt_gc
.Lret_16_0:
	# map .Lsm_til_generations_954_flat_2364_0: frame=48 ra_off=40 slots=[(0, Trace)] dead=[]
.L16_alc1:
	movabsq $4294967304, %rax
	movq %rax, 0(%r15)
	movq 0(%rsp), %r10
	movq %r10, 8(%r15)
	movq %r15, %rsi
	addq $16, %r15
	leaq til_anon_2366(%rip), %rax
	leaq 1(%rax,%rax), %rax
	movq %rax, %rdi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L16_alc2
	movq $24, %rax
	call til_rt_gc
.Lret_16_1:
	# map .Lsm_til_generations_954_flat_2364_1: frame=48 ra_off=40 slots=[(0, Trace)] dead=[]
.L16_alc2:
	movabsq $8589934608, %rax
	movq %rax, 0(%r15)
	movq %rdi, 8(%r15)
	movq %rsi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	movq 0(%rsp), %rsi
	call til_List_filter_1052_unc_2356
.Lret_16_2:
	# map .Lsm_til_generations_954_flat_2364_2: frame=48 ra_off=40 slots=[(0, Trace), (16, Trace)] dead=[16]
	movq %rax, 16(%rsp)
	leaq til_neighbours_2361(%rip), %rax
	leaq 1(%rax,%rax), %rax
	movq %rax, %rsi
	movq til_globals+120(%rip), %rax
	movq %rax, %rdi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L16_alc3
	movq $24, %rax
	call til_rt_gc
.Lret_16_3:
	# map .Lsm_til_generations_954_flat_2364_3: frame=48 ra_off=40 slots=[(0, Trace), (16, Trace)] dead=[]
.L16_alc3:
	movabsq $8589934608, %rax
	movq %rax, 0(%r15)
	movq %rsi, 8(%r15)
	movq %rdi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	movq 0(%rsp), %rsi
	call til_map_1067_unc_2355
.Lret_16_4:
	# map .Lsm_til_generations_954_flat_2364_4: frame=48 ra_off=40 slots=[(0, Trace), (16, Trace)] dead=[]
	movq %rax, %rdi
	call til_List_concat_2357
.Lret_16_5:
	# map .Lsm_til_generations_954_flat_2364_5: frame=48 ra_off=40 slots=[(0, Trace), (16, Trace)] dead=[]
	movq %rax, %rdi
	call til_dedup_2363
.Lret_16_6:
	# map .Lsm_til_generations_954_flat_2364_6: frame=48 ra_off=40 slots=[(0, Trace), (16, Trace)] dead=[]
	movq %rax, %rdx
	leaq 16(%r15), %rax
	cmpq %r14, %rax
	jbe .L16_alc4
	movq $16, %rax
	call til_rt_gc
.Lret_16_7:
	# map .Lsm_til_generations_954_flat_2364_7: frame=48 ra_off=40 slots=[(0, Trace), (16, Trace)] dead=[]
.L16_alc4:
	movabsq $4294967304, %rax
	movq %rax, 0(%r15)
	movq 0(%rsp), %r10
	movq %r10, 8(%r15)
	movq %r15, %rsi
	addq $16, %r15
	leaq til_isBirth_2378(%rip), %rax
	leaq 1(%rax,%rax), %rax
	movq %rax, %rdi
	leaq 24(%r15), %rax
	cmpq %r14, %rax
	jbe .L16_alc5
	movq $24, %rax
	call til_rt_gc
.Lret_16_8:
	# map .Lsm_til_generations_954_flat_2364_8: frame=48 ra_off=40 slots=[(16, Trace)] dead=[]
.L16_alc5:
	movabsq $8589934608, %rax
	movq %rax, 0(%r15)
	movq %rdi, 8(%r15)
	movq %rsi, 16(%r15)
	movq %r15, %rdi
	addq $24, %r15
	movq %rdx, %rsi
	call til_List_filter_1052_unc_2356
.Lret_16_9:
	# map .Lsm_til_generations_954_flat_2364_9: frame=48 ra_off=40 slots=[(16, Trace), (24, Trace)] dead=[24]
	movq %rax, 24(%rsp)
	movq til_globals+0(%rip), %rax
	movq %rax, %rdi
	movq 16(%rsp), %rdi
	movq %rdi, %rsi
	call til_go_1083_flat_2388
.Lret_16_10:
	# map .Lsm_til_generations_954_flat_2364_10: frame=48 ra_off=40 slots=[(24, Trace)] dead=[]
	movq %rax, %rdi
	movq 24(%rsp), %rsi
	call til_revAppend_621_flat_2354
.Lret_16_11:
	# map .Lsm_til_generations_954_flat_2364_11: frame=48 ra_off=40 slots=[] dead=[]
	movq %rax, %rdi
	movq 8(%rsp), %rdi
	movq %rdi, %rsi
	addq $40, %rsp
	jmp til_generations_954_flat_2364
.L16_b1:
	movq 0(%rsp), %rax
	addq $40, %rsp
	ret
.L16_b0:
	movq %rsi, %rax
	addq $40, %rsp
	ret

	.globl til_sum_979_flat_2389
til_sum_979_flat_2389:
	movq $0, %rdx
	movq %rdi, %rax
	cmpq $2097152, %rax
	setl %al
	movzbq %al, %rax
	movq %rax, %rdx
	testq %rdx, %rdx
	jnz .L17_b1
	jmp .L17_b2
.L17_b2:
	movq 8(%rdi), %rdx
	movq 16(%rdi), %rcx
	movq 8(%rdx), %rdi
	movq 16(%rdx), %rdx
	movq %rsi, %rax
	addq %rdi, %rax
	jo til_rt_trap_overflow
	movq %rax, %rsi
	movq $2, %rdi
	movq %rdi, %rax
	imulq %rdx, %rax
	jo til_rt_trap_overflow
	movq %rax, %rdi
	movq %rsi, %rax
	addq %rdi, %rax
	jo til_rt_trap_overflow
	movq %rax, %rdi
	movq %rdi, %rsi
	movq %rcx, %rdi
	jmp til_sum_979_flat_2389
.L17_b1:
	movq %rdi, %rax
	cmpq $0, %rax
	sete %al
	movzbq %al, %rax
	movq %rax, %rdi
	testq %rdi, %rdi
	jnz .L17_b3
	jmp .L17_b3
.L17_b3:
	movq %rsi, %rax
	ret
.L17_b0:
	movq %rdx, %rax
	ret

	.globl til_len_1100_flat_2390
til_len_1100_flat_2390:
	movq %rsi, %rdx
	movq %rdi, %rsi
	movq $0, %rdi
	movq %rsi, %rax
	cmpq $2097152, %rax
	setl %al
	movzbq %al, %rax
	movq %rax, %rdi
	testq %rdi, %rdi
	jnz .L18_b1
	jmp .L18_b2
.L18_b2:
	movq 8(%rsi), %rdi
	movq 16(%rsi), %rsi
	movq $1, %rdi
	movq %rdx, %rax
	addq %rdi, %rax
	jo til_rt_trap_overflow
	movq %rax, %rdi
	movq %rdi, %rax
	movq %rsi, %rdi
	movq %rax, %rsi
	jmp til_len_1100_flat_2390
.L18_b1:
	movq %rsi, %rax
	cmpq $0, %rax
	sete %al
	movzbq %al, %rax
	movq %rax, %rdi
	testq %rdi, %rdi
	jnz .L18_b3
	jmp .L18_b3
.L18_b3:
	movq %rdx, %rax
	ret
.L18_b0:
	movq %rdi, %rax
	ret

	.section .rodata
.Lsm_til_main_0: # stack map
	.quad 32, 24, 0 # frame size, ra offset, nslots
.Lsm_til_main_1: # stack map
	.quad 32, 24, 0 # frame size, ra offset, nslots
.Lsm_til_main_2: # stack map
	.quad 32, 24, 0 # frame size, ra offset, nslots
.Lsm_til_main_3: # stack map
	.quad 32, 24, 0 # frame size, ra offset, nslots
.Lsm_til_main_4: # stack map
	.quad 32, 24, 0 # frame size, ra offset, nslots
.Lsm_til_main_5: # stack map
	.quad 32, 24, 0 # frame size, ra offset, nslots
.Lsm_til_main_6: # stack map
	.quad 32, 24, 0 # frame size, ra offset, nslots
.Lsm_til_main_7: # stack map
	.quad 32, 24, 0 # frame size, ra offset, nslots
.Lsm_til_main_8: # stack map
	.quad 32, 24, 0 # frame size, ra offset, nslots
.Lsm_til_main_9: # stack map
	.quad 32, 24, 0 # frame size, ra offset, nslots
.Lsm_til_main_10: # stack map
	.quad 32, 24, 3 # frame size, ra offset, nslots
	.quad 0 # Trace
	.quad 8 # Trace
	.quad 16 # Trace
.Lsm_til_main_11: # stack map
	.quad 32, 24, 3 # frame size, ra offset, nslots
	.quad 0 # Trace
	.quad 8 # Trace
	.quad 16 # Trace
.Lsm_til_main_12: # stack map
	.quad 32, 24, 3 # frame size, ra offset, nslots
	.quad 0 # Trace
	.quad 8 # Trace
	.quad 16 # Trace
.Lsm_til_main_13: # stack map
	.quad 32, 24, 3 # frame size, ra offset, nslots
	.quad 0 # Trace
	.quad 8 # Trace
	.quad 16 # Trace
.Lsm_til_main_14: # stack map
	.quad 32, 24, 2 # frame size, ra offset, nslots
	.quad 8 # Trace
	.quad 16 # Trace
.Lsm_til_main_15: # stack map
	.quad 32, 24, 1 # frame size, ra offset, nslots
	.quad 8 # Trace
.Lsm_til_main_16: # stack map
	.quad 32, 24, 1 # frame size, ra offset, nslots
	.quad 8 # Trace
.Lsm_til_main_17: # stack map
	.quad 32, 24, 1 # frame size, ra offset, nslots
	.quad 8 # Trace
.Lsm_til_main_18: # stack map
	.quad 32, 24, 0 # frame size, ra offset, nslots
.Lsm_til_revAppend_621_flat_2354_0: # stack map
	.quad 8, 0, 0 # frame size, ra offset, nslots
.Lsm_til_map_1067_unc_2355_0: # stack map
	.quad 32, 24, 3 # frame size, ra offset, nslots
	.quad 0 # Trace
	.quad 8 # Trace
	.quad 16 # Trace
.Lsm_til_map_1067_unc_2355_1: # stack map
	.quad 32, 24, 1 # frame size, ra offset, nslots
	.quad 16 # Trace
.Lsm_til_map_1067_unc_2355_2: # stack map
	.quad 32, 24, 1 # frame size, ra offset, nslots
	.quad 16 # Trace
.Lsm_til_List_filter_1052_unc_2356_0: # stack map
	.quad 32, 24, 3 # frame size, ra offset, nslots
	.quad 0 # Trace
	.quad 8 # Trace
	.quad 16 # Trace
.Lsm_til_List_filter_1052_unc_2356_1: # stack map
	.quad 32, 24, 1 # frame size, ra offset, nslots
	.quad 8 # Trace
.Lsm_til_List_filter_1052_unc_2356_2: # stack map
	.quad 32, 24, 1 # frame size, ra offset, nslots
	.quad 8 # Trace
.Lsm_til_go_1083_flat_2358_0: # stack map
	.quad 8, 0, 0 # frame size, ra offset, nslots
.Lsm_til_List_concat_2357_0: # stack map
	.quad 32, 24, 2 # frame size, ra offset, nslots
	.quad 0 # Trace
	.quad 8 # Trace
.Lsm_til_List_concat_2357_1: # stack map
	.quad 32, 24, 1 # frame size, ra offset, nslots
	.quad 8 # Trace
.Lsm_til_member_1025_flat_2359_0: # stack map
	.quad 8, 0, 0 # frame size, ra offset, nslots
.Lsm_til_neighbours_2361_0: # stack map
	.quad 16, 8, 0 # frame size, ra offset, nslots
.Lsm_til_neighbours_2361_1: # stack map
	.quad 16, 8, 0 # frame size, ra offset, nslots
.Lsm_til_neighbours_2361_2: # stack map
	.quad 16, 8, 0 # frame size, ra offset, nslots
.Lsm_til_neighbours_2361_3: # stack map
	.quad 16, 8, 0 # frame size, ra offset, nslots
.Lsm_til_neighbours_2361_4: # stack map
	.quad 16, 8, 0 # frame size, ra offset, nslots
.Lsm_til_neighbours_2361_5: # stack map
	.quad 16, 8, 0 # frame size, ra offset, nslots
.Lsm_til_neighbours_2361_6: # stack map
	.quad 16, 8, 0 # frame size, ra offset, nslots
.Lsm_til_neighbours_2361_7: # stack map
	.quad 16, 8, 0 # frame size, ra offset, nslots
.Lsm_til_neighbours_2361_8: # stack map
	.quad 16, 8, 0 # frame size, ra offset, nslots
.Lsm_til_neighbours_2361_9: # stack map
	.quad 16, 8, 0 # frame size, ra offset, nslots
.Lsm_til_neighbours_2361_10: # stack map
	.quad 16, 8, 0 # frame size, ra offset, nslots
.Lsm_til_neighbours_2361_11: # stack map
	.quad 16, 8, 0 # frame size, ra offset, nslots
.Lsm_til_neighbours_2361_12: # stack map
	.quad 16, 8, 0 # frame size, ra offset, nslots
.Lsm_til_neighbours_2361_13: # stack map
	.quad 16, 8, 0 # frame size, ra offset, nslots
.Lsm_til_neighbours_2361_14: # stack map
	.quad 16, 8, 0 # frame size, ra offset, nslots
.Lsm_til_neighbours_2361_15: # stack map
	.quad 16, 8, 0 # frame size, ra offset, nslots
.Lsm_til_dedup_2363_0: # stack map
	.quad 32, 24, 2 # frame size, ra offset, nslots
	.quad 0 # Trace
	.quad 8 # Trace
.Lsm_til_dedup_2363_1: # stack map
	.quad 32, 24, 1 # frame size, ra offset, nslots
	.quad 0 # Trace
.Lsm_til_dedup_2363_2: # stack map
	.quad 32, 24, 1 # frame size, ra offset, nslots
	.quad 0 # Trace
.Lsm_til_anon_2370_0: # stack map
	.quad 8, 0, 0 # frame size, ra offset, nslots
.Lsm_til_anon_2366_0: # stack map
	.quad 32, 24, 0 # frame size, ra offset, nslots
.Lsm_til_anon_2366_1: # stack map
	.quad 32, 24, 1 # frame size, ra offset, nslots
	.quad 8 # Trace
.Lsm_til_anon_2366_2: # stack map
	.quad 32, 24, 1 # frame size, ra offset, nslots
	.quad 8 # Trace
.Lsm_til_anon_2366_3: # stack map
	.quad 32, 24, 1 # frame size, ra offset, nslots
	.quad 8 # Trace
.Lsm_til_anon_2366_4: # stack map
	.quad 32, 24, 1 # frame size, ra offset, nslots
	.quad 8 # Trace
.Lsm_til_anon_2366_5: # stack map
	.quad 32, 24, 1 # frame size, ra offset, nslots
	.quad 8 # Trace
.Lsm_til_anon_2366_6: # stack map
	.quad 32, 24, 1 # frame size, ra offset, nslots
	.quad 8 # Trace
.Lsm_til_anon_2366_7: # stack map
	.quad 32, 24, 1 # frame size, ra offset, nslots
	.quad 8 # Trace
.Lsm_til_anon_2366_8: # stack map
	.quad 32, 24, 1 # frame size, ra offset, nslots
	.quad 8 # Trace
.Lsm_til_anon_2366_9: # stack map
	.quad 32, 24, 1 # frame size, ra offset, nslots
	.quad 8 # Trace
.Lsm_til_anon_2366_10: # stack map
	.quad 32, 24, 1 # frame size, ra offset, nslots
	.quad 8 # Trace
.Lsm_til_anon_2366_11: # stack map
	.quad 32, 24, 1 # frame size, ra offset, nslots
	.quad 8 # Trace
.Lsm_til_anon_2366_12: # stack map
	.quad 32, 24, 1 # frame size, ra offset, nslots
	.quad 8 # Trace
.Lsm_til_anon_2366_13: # stack map
	.quad 32, 24, 1 # frame size, ra offset, nslots
	.quad 8 # Trace
.Lsm_til_anon_2366_14: # stack map
	.quad 32, 24, 1 # frame size, ra offset, nslots
	.quad 8 # Trace
.Lsm_til_anon_2366_15: # stack map
	.quad 32, 24, 1 # frame size, ra offset, nslots
	.quad 8 # Trace
.Lsm_til_anon_2366_16: # stack map
	.quad 32, 24, 1 # frame size, ra offset, nslots
	.quad 8 # Trace
.Lsm_til_anon_2366_17: # stack map
	.quad 32, 24, 1 # frame size, ra offset, nslots
	.quad 8 # Trace
.Lsm_til_anon_2366_18: # stack map
	.quad 32, 24, 0 # frame size, ra offset, nslots
.Lsm_til_anon_2366_19: # stack map
	.quad 32, 24, 0 # frame size, ra offset, nslots
.Lsm_til_anon_2382_0: # stack map
	.quad 8, 0, 0 # frame size, ra offset, nslots
.Lsm_til_isBirth_2378_0: # stack map
	.quad 48, 40, 1 # frame size, ra offset, nslots
	.quad 0 # Trace
.Lsm_til_isBirth_2378_1: # stack map
	.quad 48, 40, 1 # frame size, ra offset, nslots
	.quad 0 # Trace
.Lsm_til_isBirth_2378_2: # stack map
	.quad 48, 40, 1 # frame size, ra offset, nslots
	.quad 0 # Trace
.Lsm_til_isBirth_2378_3: # stack map
	.quad 48, 40, 1 # frame size, ra offset, nslots
	.quad 24 # Trace
.Lsm_til_isBirth_2378_4: # stack map
	.quad 48, 40, 1 # frame size, ra offset, nslots
	.quad 24 # Trace
.Lsm_til_isBirth_2378_5: # stack map
	.quad 48, 40, 1 # frame size, ra offset, nslots
	.quad 24 # Trace
.Lsm_til_isBirth_2378_6: # stack map
	.quad 48, 40, 1 # frame size, ra offset, nslots
	.quad 24 # Trace
.Lsm_til_isBirth_2378_7: # stack map
	.quad 48, 40, 1 # frame size, ra offset, nslots
	.quad 24 # Trace
.Lsm_til_isBirth_2378_8: # stack map
	.quad 48, 40, 1 # frame size, ra offset, nslots
	.quad 24 # Trace
.Lsm_til_isBirth_2378_9: # stack map
	.quad 48, 40, 1 # frame size, ra offset, nslots
	.quad 24 # Trace
.Lsm_til_isBirth_2378_10: # stack map
	.quad 48, 40, 1 # frame size, ra offset, nslots
	.quad 24 # Trace
.Lsm_til_isBirth_2378_11: # stack map
	.quad 48, 40, 1 # frame size, ra offset, nslots
	.quad 24 # Trace
.Lsm_til_isBirth_2378_12: # stack map
	.quad 48, 40, 1 # frame size, ra offset, nslots
	.quad 24 # Trace
.Lsm_til_isBirth_2378_13: # stack map
	.quad 48, 40, 1 # frame size, ra offset, nslots
	.quad 24 # Trace
.Lsm_til_isBirth_2378_14: # stack map
	.quad 48, 40, 1 # frame size, ra offset, nslots
	.quad 24 # Trace
.Lsm_til_isBirth_2378_15: # stack map
	.quad 48, 40, 1 # frame size, ra offset, nslots
	.quad 24 # Trace
.Lsm_til_isBirth_2378_16: # stack map
	.quad 48, 40, 1 # frame size, ra offset, nslots
	.quad 24 # Trace
.Lsm_til_isBirth_2378_17: # stack map
	.quad 48, 40, 1 # frame size, ra offset, nslots
	.quad 24 # Trace
.Lsm_til_isBirth_2378_18: # stack map
	.quad 48, 40, 1 # frame size, ra offset, nslots
	.quad 24 # Trace
.Lsm_til_isBirth_2378_19: # stack map
	.quad 48, 40, 1 # frame size, ra offset, nslots
	.quad 24 # Trace
.Lsm_til_isBirth_2378_20: # stack map
	.quad 48, 40, 0 # frame size, ra offset, nslots
.Lsm_til_isBirth_2378_21: # stack map
	.quad 48, 40, 0 # frame size, ra offset, nslots
.Lsm_til_go_1083_flat_2388_0: # stack map
	.quad 8, 0, 0 # frame size, ra offset, nslots
.Lsm_til_generations_954_flat_2364_0: # stack map
	.quad 48, 40, 1 # frame size, ra offset, nslots
	.quad 0 # Trace
.Lsm_til_generations_954_flat_2364_1: # stack map
	.quad 48, 40, 1 # frame size, ra offset, nslots
	.quad 0 # Trace
.Lsm_til_generations_954_flat_2364_2: # stack map
	.quad 48, 40, 2 # frame size, ra offset, nslots
	.quad 0 # Trace
	.quad 16 # Trace
.Lsm_til_generations_954_flat_2364_3: # stack map
	.quad 48, 40, 2 # frame size, ra offset, nslots
	.quad 0 # Trace
	.quad 16 # Trace
.Lsm_til_generations_954_flat_2364_4: # stack map
	.quad 48, 40, 2 # frame size, ra offset, nslots
	.quad 0 # Trace
	.quad 16 # Trace
.Lsm_til_generations_954_flat_2364_5: # stack map
	.quad 48, 40, 2 # frame size, ra offset, nslots
	.quad 0 # Trace
	.quad 16 # Trace
.Lsm_til_generations_954_flat_2364_6: # stack map
	.quad 48, 40, 2 # frame size, ra offset, nslots
	.quad 0 # Trace
	.quad 16 # Trace
.Lsm_til_generations_954_flat_2364_7: # stack map
	.quad 48, 40, 2 # frame size, ra offset, nslots
	.quad 0 # Trace
	.quad 16 # Trace
.Lsm_til_generations_954_flat_2364_8: # stack map
	.quad 48, 40, 1 # frame size, ra offset, nslots
	.quad 16 # Trace
.Lsm_til_generations_954_flat_2364_9: # stack map
	.quad 48, 40, 2 # frame size, ra offset, nslots
	.quad 16 # Trace
	.quad 24 # Trace
.Lsm_til_generations_954_flat_2364_10: # stack map
	.quad 48, 40, 1 # frame size, ra offset, nslots
	.quad 24 # Trace
.Lsm_til_generations_954_flat_2364_11: # stack map
	.quad 48, 40, 0 # frame size, ra offset, nslots
	.section .rodata
til_static_0:
	.quad 12 # string header
	.ascii " "

	.section .rodata
til_static_1:
	.quad 12 # string header
	.ascii "\n"

